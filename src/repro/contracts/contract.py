"""Contract aspects: DbC clauses checked at the moderation seams.

The framework composes independently written concerns around one
activation, so the hardest failures are *interference* failures: an
aspect silently breaks an invariant the component relied on (or vice
versa) and the symptom surfaces far from the cause. Lorenz &
Skotiniotis (*Extending Design by Contract for AOP*, PAPERS.md) argue
that advice is contract-bearing code whose violations must be detected
and *blamed* — it is not enough to know a postcondition failed; the
diagnosis must say whether the component, the caller, or an advice
body broke it.

The plane mirrors the fault-injection plane's shape
(:mod:`repro.faults`): a :class:`ContractRegistry` holds the declared
:class:`MethodContract` per method and is *installed* on a moderator
(``registry.install(moderator)``), which bumps the moderator's contract
epoch so every compiled :class:`~repro.core.plan.ActivationPlan` is
invalidated and recompiled with the contract snapshot attached. The
moderator then drives one :class:`ContractRunner` per activation
through four seams:

========================  ==============================================
seam                      what the runner does
========================  ==============================================
``begin`` (pre)           check ``require`` + entry invariants (failure
                          blames the **caller**), capture checkpoint C0
``checkpoint`` (per        compare observables against the previous
RESUMEd precondition)     snapshot; a change is attributed to that
                          concern (interference evidence)
``post_body`` (post,      check ``ensure``/``invariant`` against C0's
before postactions)       ``old`` state; failure with a pre-phase
                          mutation blames the **interfering aspect**,
                          failure without one blames the **component**
``checkpoint`` (per       re-check clauses that held at post-body; a
postaction)               clause that breaks after concern *k*'s
                          postaction blames **aspect k**
``finish`` (after wake)   surface the verdict: aspect blame feeds the
                          health tracker's quarantine, then the
                          violation raises with evidence attached
========================  ==============================================

Observable state is whatever the contract declares: a tuple of
component attribute names, or a callable capturing an arbitrary
wire-safe dict from the join point. Snapshots are compared by equality;
the last writer of a contract's *scope* is remembered across
activations, so a violation's evidence names the activation that last
mutated the state it found broken — the causal seed the slicer
(:mod:`repro.contracts.slicing`) walks backward from.

Contracts-off is free by construction: a moderator with no registry
installed takes none of these seams (the differential suite proves the
legacy path byte-for-byte), and methods without a declared contract
never allocate a runner.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.errors import ContractViolation
from repro.core.joinpoint import JoinPoint

__all__ = [
    "CONTRACT_KEY",
    "Clause",
    "ContractRegistry",
    "ContractRunner",
    "MethodContract",
    "Old",
]

#: join-point context key under which the moderator stashes the
#: activation's contract runner between the pre- and post-phases
CONTRACT_KEY = "__contract_runner__"

#: blame verdicts
BLAME_CALLER = "caller"
BLAME_COMPONENT = "component"


def _blame_aspect(concern: str) -> str:
    return f"aspect:{concern}"


def _wire_value(value: Any) -> Any:
    """Coerce one observable value into a wire-safe primitive."""
    if isinstance(value, (bool, int, float, str, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return [_wire_value(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _wire_value(val) for key, val in value.items()}
    return repr(value)


def _wire_state(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    return {key: _wire_value(value) for key, value in snapshot.items()}


class Old:
    """Entry-time observables, for ``ensure`` clauses (``old.total``)."""

    __slots__ = ("_snapshot",)

    def __init__(self, snapshot: Dict[str, Any]) -> None:
        object.__setattr__(self, "_snapshot", dict(snapshot))

    def __getattr__(self, name: str) -> Any:
        try:
            return self._snapshot[name]
        except KeyError:
            raise AttributeError(
                f"no observable {name!r} was captured at entry "
                f"(have {sorted(self._snapshot)})"
            ) from None

    def __getitem__(self, name: str) -> Any:
        return self._snapshot[name]

    def as_dict(self) -> Dict[str, Any]:
        return dict(self._snapshot)

    def __repr__(self) -> str:
        return f"Old({self._snapshot!r})"


class Clause:
    """One named contract clause.

    ``kind`` is ``"require"`` (predicate of the join point),
    ``"ensure"`` (predicate of the join point and the entry ``old``
    state) or ``"invariant"`` (predicate of the component). A predicate
    that *raises* counts as failed — a broken clause body must surface
    as a violation, never pass silently.
    """

    __slots__ = ("label", "kind", "predicate")

    def __init__(self, label: str, kind: str,
                 predicate: Callable[..., bool]) -> None:
        self.label = label
        self.kind = kind
        self.predicate = predicate

    def holds(self, joinpoint: JoinPoint, old: Optional[Old]) -> bool:
        try:
            if self.kind == "require":
                return bool(self.predicate(joinpoint))
            if self.kind == "ensure":
                return bool(self.predicate(joinpoint, old))
            return bool(self.predicate(joinpoint.component))
        except Exception:  # noqa: BLE001 - a raising clause is a failure
            return False

    def describe(self) -> str:
        return f"{self.kind}:{self.label}"

    def __repr__(self) -> str:
        return f"<Clause {self.describe()}>"


def _coerce_clauses(kind: str, entries: Iterable[Any]) -> Tuple[Clause, ...]:
    clauses: List[Clause] = []
    for index, entry in enumerate(entries):
        if isinstance(entry, Clause):
            clauses.append(entry)
            continue
        if isinstance(entry, tuple):
            label, predicate = entry
        else:
            predicate = entry
            label = getattr(predicate, "__name__", f"{kind}_{index}")
            if label == "<lambda>":
                label = f"{kind}_{index}"
        clauses.append(Clause(label, kind, predicate))
    return tuple(clauses)


class MethodContract:
    """The declared contract of one participating method."""

    __slots__ = ("method_id", "requires", "ensures", "invariants",
                 "scope", "_capture")

    def __init__(
        self,
        method_id: str,
        require: Iterable[Any] = (),
        ensure: Iterable[Any] = (),
        invariant: Iterable[Any] = (),
        observables: Any = (),
        scope: Optional[str] = None,
    ) -> None:
        self.method_id = method_id
        self.requires = _coerce_clauses("require", require)
        self.ensures = _coerce_clauses("ensure", ensure)
        self.invariants = _coerce_clauses("invariant", invariant)
        #: causal-memory scope: contracts sharing a scope share the
        #: "last writer" record (defaults to the method itself)
        self.scope = scope if scope is not None else method_id
        if callable(observables):
            self._capture = observables
        else:
            names = tuple(observables)

            def _capture(joinpoint: JoinPoint,
                         _names: Tuple[str, ...] = names) -> Dict[str, Any]:
                component = joinpoint.component
                return {
                    name: getattr(component, name, None) for name in _names
                }

            self._capture = _capture

    def capture(self, joinpoint: JoinPoint) -> Dict[str, Any]:
        """Snapshot the declared observables for one check point."""
        return dict(self._capture(joinpoint))

    def clause_labels(self) -> Dict[str, List[str]]:
        """Declared clauses by kind — plan ``explain()`` metadata."""
        return {
            "require": [clause.label for clause in self.requires],
            "ensure": [clause.label for clause in self.ensures],
            "invariant": [clause.label for clause in self.invariants],
        }

    def __repr__(self) -> str:
        return (
            f"<MethodContract {self.method_id!r} "
            f"require={len(self.requires)} ensure={len(self.ensures)} "
            f"invariant={len(self.invariants)} scope={self.scope!r}>"
        )


class ContractRegistry:
    """Declared contracts for one moderator, with causal memory.

    Mirrors :class:`repro.faults.FaultInjector`'s lifecycle: build,
    :meth:`declare` per method, :meth:`install` on a moderator.
    Installation assigns ``moderator.contracts``, whose property setter
    bumps the moderator's contract epoch — every compiled plan
    revalidates, so checks appear (or disappear) atomically with
    respect to the revision-key mechanism. Later :meth:`declare` calls
    on an installed registry bump the epoch again through
    :meth:`_touch`.

    ``node`` labels the evidence records this registry produces, so a
    violation that crosses the wire still names which process observed
    each checkpoint.
    """

    def __init__(self, node: str = "local") -> None:
        self.node = node
        self._by_method: Dict[str, MethodContract] = {}
        #: monotonic declaration epoch, folded into the moderator's
        #: composition key while installed
        self.epoch = 0
        self._lock = threading.Lock()
        #: scope -> (node, activation_id, wire-safe snapshot) of the
        #: last activation that mutated the scope's observables —
        #: cross-activation causal memory for blame evidence
        self._last_writers: Dict[str, Tuple[str, int, Dict[str, Any]]] = {}
        self._moderators: List[Any] = []

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def declare(
        self,
        method_id: str,
        require: Iterable[Any] = (),
        ensure: Iterable[Any] = (),
        invariant: Iterable[Any] = (),
        observables: Any = (),
        scope: Optional[str] = None,
    ) -> MethodContract:
        """Declare (or replace) the contract of ``method_id``.

        ``require`` / ``ensure`` / ``invariant`` are iterables of
        predicates, ``(label, predicate)`` tuples or :class:`Clause`
        objects. ``observables`` is a tuple of component attribute
        names (captured by ``getattr``) or a callable
        ``joinpoint -> dict``. ``scope`` groups methods that share
        state, so the last-writer causal memory spans all of them.
        """
        contract = MethodContract(
            method_id, require=require, ensure=ensure,
            invariant=invariant, observables=observables, scope=scope,
        )
        with self._lock:
            self._by_method[method_id] = contract
        self._touch()
        return contract

    def drop(self, method_id: str) -> Optional[MethodContract]:
        """Forget a method's contract (checks stop on the next plan)."""
        with self._lock:
            contract = self._by_method.pop(method_id, None)
        if contract is not None:
            self._touch()
        return contract

    def contract_for(self, method_id: str) -> Optional[MethodContract]:
        """The declared contract of ``method_id``, or ``None``."""
        return self._by_method.get(method_id)

    def methods(self) -> List[str]:
        with self._lock:
            return sorted(self._by_method)

    def _touch(self) -> None:
        self.epoch += 1
        for moderator in self._moderators:
            # Re-assign through the property so the moderator's own
            # contract epoch moves and compiled plans revalidate.
            moderator.contracts = self

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, moderator: Any) -> "ContractRegistry":
        """Arm this registry on ``moderator`` (``moderator.contracts``)."""
        if moderator not in self._moderators:
            self._moderators.append(moderator)
        moderator.contracts = self
        return self

    def uninstall(self, moderator: Any) -> None:
        if moderator in self._moderators:
            self._moderators.remove(moderator)
        moderator.contracts = None

    # ------------------------------------------------------------------
    # activation lifecycle (driven by the moderator)
    # ------------------------------------------------------------------
    def begin(self, method_id: str,
              joinpoint: JoinPoint) -> Optional["ContractRunner"]:
        """Start contract checking for one activation.

        Returns ``None`` when the method has no declared contract.
        Checks ``require`` clauses and entry invariants — a failure
        raises :class:`ContractViolation` blaming the **caller**
        before any aspect has run (nothing to compensate). On success
        the runner is stashed in the join point's context under
        :data:`CONTRACT_KEY` for the post-phase seams.
        """
        contract = self._by_method.get(method_id)
        if contract is None:
            return None
        runner = ContractRunner(contract, self, joinpoint)
        joinpoint.context[CONTRACT_KEY] = runner
        runner.check_entry(joinpoint)
        return runner

    def note_write(self, scope: str, activation_id: int,
                   snapshot: Dict[str, Any]) -> None:
        """Record an activation as the scope's last observable writer."""
        with self._lock:
            self._last_writers[scope] = (
                self.node, activation_id, _wire_state(snapshot)
            )

    def last_writer(
        self, scope: str
    ) -> Optional[Tuple[str, int, Dict[str, Any]]]:
        with self._lock:
            return self._last_writers.get(scope)


class ContractRunner:
    """Per-activation contract state machine (see module docstring).

    Created by :meth:`ContractRegistry.begin`; the moderator drives
    :meth:`start_round` / :meth:`checkpoint` / :meth:`post_body` /
    :meth:`finish` from its seams. Only the *first* violation is kept —
    later checks are skipped once a verdict exists, so evidence always
    describes the earliest observable break.
    """

    __slots__ = ("contract", "registry", "joinpoint", "entry_state",
                 "round_state", "_last_state", "evidence", "violation",
                 "_held", "_wrote")

    def __init__(self, contract: MethodContract,
                 registry: ContractRegistry,
                 joinpoint: JoinPoint) -> None:
        self.contract = contract
        self.registry = registry
        self.joinpoint = joinpoint
        #: observables at activation entry (first capture)
        self.entry_state: Dict[str, Any] = {}
        #: observables at the start of the *latest* evaluation round —
        #: the ``old`` state ensure clauses compare against (state may
        #: legitimately change while the activation is parked: other
        #: activations complete and wake it, so each round re-anchors)
        self.round_state: Dict[str, Any] = {}
        self._last_state: Dict[str, Any] = {}
        #: wire-safe checkpoint records (the violation's evidence)
        self.evidence: List[Dict[str, Any]] = []
        self.violation: Optional[ContractViolation] = None
        #: ensure/invariant clauses that held at the post-body check —
        #: the set re-verified after each postaction
        self._held: Tuple[Clause, ...] = ()
        self._wrote = False

    # ------------------------------------------------------------------
    # pre-activation seams
    # ------------------------------------------------------------------
    def check_entry(self, joinpoint: JoinPoint) -> None:
        """Require clauses + entry invariants; blames the caller."""
        self.entry_state = self.contract.capture(joinpoint)
        self.round_state = dict(self.entry_state)
        self._last_state = dict(self.entry_state)
        self.evidence.append({
            "seam": "entry", "concern": "", "node": self.registry.node,
            "activation_id": joinpoint.activation_id,
            "state": _wire_state(self.entry_state),
        })
        prior = self.registry.last_writer(self.contract.scope)
        if prior is not None:
            node, activation_id, snapshot = prior
            self.evidence.append({
                "seam": "prior_write", "concern": "", "node": node,
                "activation_id": activation_id, "state": snapshot,
                "scope": self.contract.scope,
            })
        for clause in self.contract.requires:
            if not clause.holds(joinpoint, None):
                raise self._violated(clause, BLAME_CALLER)
        for clause in self.contract.invariants:
            if not clause.holds(joinpoint, None):
                raise self._violated(clause, BLAME_CALLER,
                                     detail="invariant broken at entry")

    def start_round(self, joinpoint: JoinPoint) -> None:
        """Re-anchor at the top of one precondition evaluation round.

        A BLOCKed round's RESUMEd prefix is compensated before the
        activation parks, and foreign activations may mutate shared
        state while it waits — so interference attribution (and the
        ``old`` state) is always relative to the round that finally
        RESUMEd, not to a snapshot from before the park.
        """
        self.round_state = self.contract.capture(joinpoint)
        self._last_state = dict(self.round_state)

    def checkpoint(self, seam: str, concern: str,
                   joinpoint: JoinPoint) -> None:
        """Record one per-concern check point (pre or post phase).

        In the pre-phase (after each RESUME vote) a snapshot that
        differs from the previous check point is interference evidence
        against ``concern``. In the post-phase it re-verifies the
        clauses that held at post-body; a fresh failure blames
        ``concern`` directly.
        """
        state = self.contract.capture(joinpoint)
        if state != self._last_state:
            changed = sorted(
                key for key in set(state) | set(self._last_state)
                if state.get(key) != self._last_state.get(key)
            )
            self.evidence.append({
                "seam": seam, "concern": concern,
                "node": self.registry.node,
                "activation_id": joinpoint.activation_id,
                "state": _wire_state(state), "changed": changed,
            })
            self._last_state = state
        if seam == "postaction" and self.violation is None:
            old = Old(self.round_state)
            for clause in self._held:
                if not clause.holds(joinpoint, old):
                    self.violation = self._violated(
                        clause, _blame_aspect(concern),
                        detail=f"held at post-body, broken after "
                               f"postaction[{concern}]",
                    )
                    break

    # ------------------------------------------------------------------
    # post-activation seams
    # ------------------------------------------------------------------
    def post_body(self, joinpoint: JoinPoint) -> None:
        """The post-body check point (before any postaction runs)."""
        state = self.contract.capture(joinpoint)
        self._wrote = state != self.round_state
        self.evidence.append({
            "seam": "post_body", "concern": "",
            "node": self.registry.node,
            "activation_id": joinpoint.activation_id,
            "state": _wire_state(state),
        })
        self._last_state = state
        if joinpoint.exception is not None:
            # The body raised: the exception is the diagnostic; ensure
            # clauses describe normal returns only. Postaction-phase
            # invariant checks still run below via ``_held``.
            self._held = self.contract.invariants
            return
        old = Old(self.round_state)
        held: List[Clause] = []
        for clause in (*self.contract.ensures, *self.contract.invariants):
            if clause.holds(joinpoint, old):
                held.append(clause)
                continue
            if self.violation is None:
                self.violation = self._violated(
                    clause, self._post_body_blame(),
                )
        self._held = tuple(held)

    def _post_body_blame(self) -> str:
        """Who broke a clause that failed at the post-body check point.

        A pre-phase check point that saw the observables move names an
        interfering aspect — advice mutated state the component's
        contract ranges over, so the advice is blamed. With no
        interference on record, the component itself (its body just
        ran) carries the blame.
        """
        for record in self.evidence:
            if record["seam"] == "precondition" and record.get("changed"):
                return _blame_aspect(record["concern"])
        return BLAME_COMPONENT

    def finish(self) -> Optional[ContractViolation]:
        """Close the activation; returns the verdict (if any).

        Also commits the causal memory: an activation whose body moved
        the observables is remembered as the scope's last writer, so
        the *next* violation's evidence (and the slicer) can point at
        it.
        """
        if self._wrote:
            self.registry.note_write(
                self.contract.scope, self.joinpoint.activation_id,
                self._last_state,
            )
        return self.violation

    # ------------------------------------------------------------------
    def _violated(self, clause: Clause, blame: str,
                  detail: str = "") -> ContractViolation:
        return ContractViolation(
            self.contract.method_id, clause.label, clause.kind, blame,
            detail=detail, evidence=list(self.evidence),
            activation_id=self.joinpoint.activation_id,
        )
