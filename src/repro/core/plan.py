"""Compiled activation plans: the moderation chain as a first-class object.

The paper's moderator is an *interpreter*: every activation walks the
aspect bank, orders the chain, and dispatches each concern dynamically —
paying the lookup/sort/branch cost on every evaluation round. Composing
the concerns ahead of time into an executable artifact preserves the
modular model while removing the runtime composition tax (El-Hokayem et
al., *Modularizing Behavioral and Architectural Crosscutting Concerns*),
and makes the composed contract an inspectable value rather than an
emergent property of dispatch (Lorenz & Skotiniotis, *Extending Design
by Contract for AOP*; both in PAPERS.md).

An :class:`ActivationPlan` is compiled once per participating method and
cached under a composite *revision key*; every runtime mutation that
could change what a round observes bumps exactly one component of the
key, so plans invalidate precisely:

=============================  =======================================
mutation                        key component bumped
=============================  =======================================
``register/unregister/swap``    bank revision
``set_order``                   bank revision
``assign_lock_domain``          moderator domain epoch
quarantine flip / reinstate     health epoch
``set_policy`` / ``drop``       health epoch
injector install / uninstall    moderator injector epoch
ordering-policy swap            moderator ordering epoch
contract declare / install      moderator contract epoch
profiler install / refresh      moderator profile epoch
=============================  =======================================

A plan holds, per cell: the pre-bound ``evaluate_precondition`` /
``postaction`` / ``on_abort`` callables (no attribute chase per round),
the quarantine-policy snapshot (``degraded``), and the pre-resolved
fault-injection site callables. Plan-level it resolves the
``never_blocks`` fast-path flag, the lock-domain handle and the
method's wait queue. :meth:`ActivationPlan.explain` renders the whole
composed contract for diagrams (:mod:`repro.analysis.diagram`) and the
static linter (:mod:`repro.verify.lint`).

Plans are *immutable*: executors never mutate one, so a stale plan is
simply abandoned at the next key check. A torn compile (constituents
mutated mid-build) self-invalidates, because the key is read *before*
the constituents — the stored plan then fails its next validation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from .aspect import Aspect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .moderator import AspectModerator


class PlanCell:
    """One compiled cell of an activation plan.

    Carries everything one evaluation round needs for its concern,
    resolved at compile time: bound protocol callables, the quarantine
    snapshot, and the pre-resolved injector site hooks (``None`` when no
    injector is armed — the executor then skips the site entirely).
    """

    __slots__ = (
        "concern", "aspect", "pair", "evaluate", "postaction", "on_abort",
        "never_blocks", "degraded", "policy", "threshold",
        "fire_pre", "fire_post", "fire_abort", "injection_sites",
    )

    def __init__(self, concern: str, aspect: Aspect,
                 degraded: Optional[str],
                 policy: Optional[str], threshold: Optional[int],
                 fire_pre: Optional[Any], fire_post: Optional[Any],
                 fire_abort: Optional[Any],
                 injection_sites: Tuple[str, ...]) -> None:
        self.concern = concern
        self.aspect = aspect
        self.pair = (concern, aspect)
        self.evaluate = aspect.evaluate_precondition
        self.postaction = aspect.postaction
        self.on_abort = aspect.on_abort
        self.never_blocks = aspect.never_blocks
        self.degraded = degraded
        self.policy = policy
        self.threshold = threshold
        self.fire_pre = fire_pre
        self.fire_post = fire_post
        self.fire_abort = fire_abort
        self.injection_sites = injection_sites

    def describe(self) -> str:
        flags = []
        if self.never_blocks:
            flags.append("never_blocks")
        if self.degraded is not None:
            flags.append(f"degraded:{self.degraded}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return f"{self.concern}: {self.aspect.describe()}{suffix}"


class PlanSegment:
    """A maximal run of plan cells between two potential-BLOCK seams.

    The plan is split *before* every cell whose aspect may BLOCK
    (``never_blocks`` is false): those are exactly the points where an
    evaluation round can suspend, so they are the only places the two
    moderator runtimes may diverge in mechanism — the threaded runtime
    parks the calling thread on the method's condition queue, the
    continuation runtime (:mod:`repro.core.continuation`) heap-allocates
    the activation and releases its worker. Both execute the identical
    segment sequence; a wake re-runs from the segment boundary (the
    RESUMEd prefix having been compensated, the next round replays the
    whole chain — re-evaluation *is* the suffix semantics of Figure 11).

    Segments are derived metadata: executors dispatch over ``cells``
    directly, so segmentation cannot drift from execution — it is the
    same tuple, partitioned.
    """

    __slots__ = ("index", "start", "cells", "can_block")

    def __init__(self, index: int, start: int,
                 cells: Tuple["PlanCell", ...]) -> None:
        self.index = index
        #: position of the first cell within the plan's cell tuple
        self.start = start
        self.cells = cells
        #: whether this segment opens at a potential-BLOCK seam (its
        #: first cell may vote BLOCK); the leading segment of a
        #: never_blocks plan is the only unconditionally false case
        self.can_block = bool(cells) and not cells[0].never_blocks

    def describe(self) -> str:
        concerns = " -> ".join(cell.concern for cell in self.cells)
        seam = "BLOCK-seam" if self.can_block else "straight-line"
        return f"segment {self.index} [{seam}]: {concerns}"

    def __repr__(self) -> str:
        return (
            f"<PlanSegment {self.index} start={self.start} "
            f"cells={len(self.cells)} can_block={self.can_block}>"
        )


class ActivationPlan:
    """Immutable compiled moderation pipeline for one method.

    Produced by :func:`compile_plan` (via
    :meth:`repro.core.moderator.AspectModerator.plan_for`), executed by
    the moderator's plan executor, inspected via :meth:`explain`.
    """

    __slots__ = (
        "method_id", "cells", "pairs", "never_blocks", "has_degraded",
        "injector_armed", "fast_cells", "key", "domain", "_queue",
        "domain_name", "ordering_name", "compile_seconds", "contract",
        "profile", "_segments",
    )

    def __init__(self, method_id: str, cells: Tuple[PlanCell, ...],
                 key: Tuple[int, ...], domain: Any,
                 ordering_name: str, contract: Optional[Any] = None,
                 profile: Optional[Dict[str, Any]] = None) -> None:
        self.method_id = method_id
        self.cells = cells
        #: raw ordered (concern, aspect) pairs — the executor stashes
        #: this exact tuple on the join point between phases, so the
        #: post-activation side can recognize a full-plan chain by
        #: identity and take its own compiled path
        self.pairs: Tuple[Tuple[str, Aspect], ...] = tuple(
            cell.pair for cell in cells
        )
        self.never_blocks = all(cell.never_blocks for cell in cells)
        self.has_degraded = any(cell.degraded is not None for cell in cells)
        self.injector_armed = any(
            cell.fire_pre is not None for cell in cells
        )
        #: the method's declared contract snapshot
        #: (:class:`repro.contracts.MethodContract`), or ``None`` — plans
        #: of contract-bearing methods take the generic executors, whose
        #: checkpoint seams the contract runner hooks into
        self.contract = contract
        #: the clause profiler's compile-time decision report
        #: (``elided`` / ``memoized`` / ``reordered`` / ``order``), or
        #: ``None`` when no profiler was installed at compile time
        self.profile = profile
        #: whether the allocation-free prefix executor applies: no
        #: quarantined cell to skip, no injector site to visit, no
        #: contract check points to capture
        self.fast_cells = (not self.has_degraded and not self.injector_armed
                           and contract is None)
        self.key = key
        self.domain = domain
        #: resolved lazily — a never_blocks chain must not materialize a
        #: wait queue (the lock-free fast path's whole point), so the
        #: condition is only created when a locked path first needs it
        self._queue = None
        #: lazy :class:`PlanSegment` partition (see :attr:`segments`);
        #: never built on the hot path — executors walk ``cells``
        self._segments = None
        self.domain_name = domain.name
        self.ordering_name = ordering_name
        #: seconds the compile took; stamped by the moderator right
        #: after construction (0.0 for hand-built plans). Observability
        #: metadata only — never on the event bus, so compiled and
        #: interpreted runs keep byte-identical event streams.
        self.compile_seconds = 0.0

    @property
    def queue(self) -> Any:
        """The method's wait queue in its domain (created on first use).

        Racing initializers are benign: ``LockDomain.condition`` caches
        per key, so both resolve the identical Condition object.
        """
        queue = self._queue
        if queue is None:
            queue = self._queue = self.domain.condition(self.method_id)
        return queue

    @property
    def segments(self) -> Tuple[PlanSegment, ...]:
        """The plan partitioned at every potential-BLOCK seam (lazy).

        A new segment opens before each cell whose aspect may BLOCK;
        leading ``never_blocks`` cells form a straight-line segment 0.
        A ``never_blocks`` plan is therefore exactly one straight-line
        segment — the structural witness of the lock-free fast path.
        Racing initializers are benign (identical value, last wins).
        """
        segments = self._segments
        if segments is None:
            built: List[PlanSegment] = []
            run: List[PlanCell] = []
            start = 0
            for position, cell in enumerate(self.cells):
                if not cell.never_blocks and run:
                    built.append(
                        PlanSegment(len(built), start, tuple(run))
                    )
                    run = []
                    start = position
                run.append(cell)
            if run or not built:
                built.append(PlanSegment(len(built), start, tuple(run)))
            segments = self._segments = tuple(built)
        return segments

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def explain(self) -> Dict[str, Any]:
        """The composed contract as data: what this plan will do and why.

        Consumed by :func:`repro.analysis.diagram.plan_to_dot` (render)
        and :func:`repro.verify.lint.lint_plan` (static checks). The
        report is a plain dict so it can be serialized, diffed and
        asserted in tests without importing framework types.
        """
        (bank, domains, health, injector, ordering, contracts,
         profile_epoch) = self.key
        return {
            "method_id": self.method_id,
            "never_blocks": self.never_blocks,
            "fast_executor": self.fast_cells,
            "lock_domain": self.domain_name,
            "injector_armed": self.injector_armed,
            "compile_seconds": self.compile_seconds,
            "ordering": self.ordering_name,
            "contract": (
                self.contract.clause_labels()
                if self.contract is not None else None
            ),
            "revision_key": {
                "bank": bank,
                "domains": domains,
                "health": health,
                "injector": injector,
                "ordering": ordering,
                "contracts": contracts,
                "profile": profile_epoch,
            },
            "profile": self.profile,
            "cells": [
                {
                    "position": index,
                    "concern": cell.concern,
                    "aspect": cell.aspect.describe(),
                    "aspect_class": type(cell.aspect).__name__,
                    "never_blocks": cell.never_blocks,
                    "degraded": cell.degraded,
                    "policy": cell.policy,
                    "threshold": cell.threshold,
                    "injection_sites": list(cell.injection_sites),
                }
                for index, cell in enumerate(self.cells)
            ],
            "segments": [
                {
                    "index": segment.index,
                    "start": segment.start,
                    "can_block": segment.can_block,
                    "concerns": [cell.concern for cell in segment.cells],
                }
                for segment in self.segments
            ],
            "preactivation_order": [cell.concern for cell in self.cells],
            "postactivation_order": [
                cell.concern for cell in reversed(self.cells)
            ],
        }

    def format(self) -> str:
        """Human-readable rendering of :meth:`explain` (one plan)."""
        report = self.explain()
        key = report["revision_key"]
        lines = [
            f"ActivationPlan({self.method_id}) "
            f"[{'fast-path' if self.never_blocks else 'locked'}; "
            f"domain {self.domain_name!r}; "
            f"key bank={key['bank']} domains={key['domains']} "
            f"health={key['health']} injector={key['injector']} "
            f"ordering={key['ordering']} contracts={key['contracts']} "
            f"profile={key['profile']}]",
        ]
        if self.profile is not None:
            profile = self.profile
            notes = []
            if profile.get("reordered"):
                notes.append("reordered by profile")
            if profile.get("memoized"):
                notes.append(
                    "memoized: " + ", ".join(profile["memoized"])
                )
            if profile.get("elided"):
                notes.append("elided: " + ", ".join(profile["elided"]))
            if notes:
                lines.append("  profile: " + "; ".join(notes))
        if report["contract"] is not None:
            clauses = report["contract"]
            lines.append(
                "  contract: "
                + " ".join(
                    f"{kind}={labels}"
                    for kind, labels in clauses.items() if labels
                )
            )
        for position, cell in enumerate(self.cells, 1):
            lines.append(f"  {position}. {cell.describe()}")
        if self.cells:
            lines.append(
                "  postactivation: "
                + " -> ".join(report["postactivation_order"])
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<ActivationPlan {self.method_id!r} cells={len(self.cells)} "
            f"never_blocks={self.never_blocks} key={self.key}>"
        )


class PlanHandle:
    """Stable per-method handle onto the moderator's plan cache.

    Proxies and woven wrappers hold a handle instead of a bare wrapper
    closure: :meth:`current` revalidates the cached plan against the
    moderator's composite revision key (a few integer compares) and
    recompiles through the moderator only when some revision component
    moved. Handles are shared — one per (moderator, method) — so every
    wrapper of a method converges on the same compiled plan.
    """

    __slots__ = ("moderator", "method_id", "_plan")

    def __init__(self, moderator: "AspectModerator", method_id: str) -> None:
        self.moderator = moderator
        self.method_id = method_id
        self._plan: Optional[ActivationPlan] = None

    def current(self) -> ActivationPlan:
        """The currently valid plan, recompiled on revision change."""
        plan = self._plan
        if plan is not None and plan.key == self.moderator._composition_key():
            return plan
        plan = self.moderator.plan_for(self.method_id)
        self._plan = plan
        return plan

    def __repr__(self) -> str:
        return f"<PlanHandle {self.method_id!r}>"


def compile_plan(
    method_id: str,
    pairs: List[Tuple[str, Aspect]],
    key: Tuple[int, ...],
    domain: Any,
    health: Any,
    injector: Optional[Any],
    ordering_name: str,
    contract: Optional[Any] = None,
    profile: Optional[Dict[str, Any]] = None,
) -> ActivationPlan:
    """Compile one method's ordered chain into an :class:`ActivationPlan`.

    ``pairs`` must already be in effective composition order (the
    moderator applies its ordering policy — or the policy's ``compile``
    hook — before calling here). ``health`` supplies the per-cell
    quarantine snapshot, ``injector`` (when armed) the pre-resolved
    site callables via :meth:`repro.faults.injector.FaultInjector.resolve`,
    ``contract`` the method's declared
    :class:`~repro.contracts.MethodContract` (disables ``fast_cells`` so
    the generic executors' check-point seams run).
    """
    cells = []
    for concern, aspect in pairs:
        degraded = health.quarantine_policy(method_id, concern)
        policy, threshold = health.declared_policy(method_id, concern)
        if injector is not None:
            fire_pre = injector.resolve("precondition", method_id, concern)
            fire_post = injector.resolve("postaction", method_id, concern)
            fire_abort = injector.resolve("on_abort", method_id, concern)
            sites = tuple(
                spec.describe()
                for phase in ("precondition", "postaction", "on_abort")
                for spec in injector.site_specs(phase, method_id, concern)
            )
        else:
            fire_pre = fire_post = fire_abort = None
            sites = ()
        cells.append(PlanCell(
            concern, aspect, degraded, policy, threshold,
            fire_pre, fire_post, fire_abort, sites,
        ))
    return ActivationPlan(method_id, tuple(cells), key, domain,
                          ordering_name, contract, profile)
