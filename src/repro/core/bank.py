"""The aspect bank: a hierarchical two-dimensional aspect registry.

Paper, Section 5.1.2: "we introduce the concept of an aspect bank, which
provides a hierarchical two-dimensional composition of the system in terms
of aspects and components. [...] Method registerAspect() will simply
create an entry in a two dimensional array within the moderator object."

The paper indexes a fixed-size array by integer constants
(``aspectArray[OPEN][SYNC]``). The bank generalizes this to a mapping
keyed by ``(method_id, concern)`` with ordered concerns per method —
order matters because pre-activation evaluates concerns in composition
order and post-activation unwinds them in reverse (Section 5.3).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Tuple

from .aspect import Aspect
from .errors import RegistrationError, UnknownAspectError


class AspectBank:
    """Ordered two-dimensional registry of first-class aspect objects.

    The first dimension is the participating method, the second the
    concern (``"sync"``, ``"authenticate"``, ...). Iteration order of the
    concerns for a method is registration order unless rearranged via
    :meth:`set_order`.

    Thread safety: mutating operations and lookups are guarded by an
    internal lock; concern lists handed out are copies.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        # method_id -> concern -> aspect
        self._cells: Dict[str, Dict[str, Aspect]] = {}
        # method_id -> concern order (explicit composition order)
        self._order: Dict[str, List[str]] = {}
        # bumped on every mutation; caches (proxy wrappers, moderator
        # linkage maps) key on it to invalidate after (un)registration
        self._revision = 0

    @property
    def revision(self) -> int:
        """Monotonic counter incremented by every mutating operation.

        Read without the lock: an int attribute read is atomic in
        CPython, and every consumer (plan caches, proxy wrappers, the
        linkage map) only needs monotonicity — a stale read makes a
        cache revalidate one call later, never incorrectly.
        """
        return self._revision

    # ------------------------------------------------------------------
    # registration (paper Figure 9)
    # ------------------------------------------------------------------
    def register(self, method_id: str, concern: str, aspect: Aspect,
                 replace: bool = False) -> None:
        """Create an entry for ``aspect`` at cell ``(method_id, concern)``.

        Duplicate registration for the same cell raises
        :class:`RegistrationError` unless ``replace=True`` (runtime
        adaptability: swapping an aspect in place is how the framework
        supports dynamic reconfiguration).
        """
        if not isinstance(aspect, Aspect):
            raise RegistrationError(
                f"expected an Aspect for ({method_id!r}, {concern!r}), "
                f"got {type(aspect).__name__}"
            )
        with self._lock:
            row = self._cells.setdefault(method_id, {})
            if concern in row and not replace:
                raise RegistrationError(
                    f"({method_id!r}, {concern!r}) already registered; "
                    f"pass replace=True to swap"
                )
            fresh = concern not in row
            row[concern] = aspect
            if fresh:
                self._order.setdefault(method_id, []).append(concern)
            self._revision += 1

    def unregister(self, method_id: str, concern: str) -> Aspect:
        """Remove and return the aspect at ``(method_id, concern)``."""
        with self._lock:
            row = self._cells.get(method_id, {})
            if concern not in row:
                raise UnknownAspectError(method_id, concern)
            aspect = row.pop(concern)
            self._order[method_id].remove(concern)
            if not row:
                del self._cells[method_id]
                del self._order[method_id]
            self._revision += 1
            return aspect

    def swap(self, method_id: str, concern: str, aspect: Aspect) -> Aspect:
        """Atomically replace the aspect at a cell; returns the old one.

        The recovery half of runtime adaptability: quarantined or buggy
        aspects are swapped for repaired instances in place, keeping the
        cell's composition-order slot. The moderator resets the cell's
        fault history when the swap goes through ``register_aspect(...,
        replace=True)``; direct bank swaps leave health tracking to the
        caller. Raises :class:`UnknownAspectError` when the cell is
        empty — swapping is for occupied cells, registering is for new
        ones.
        """
        if not isinstance(aspect, Aspect):
            raise RegistrationError(
                f"expected an Aspect for ({method_id!r}, {concern!r}), "
                f"got {type(aspect).__name__}"
            )
        with self._lock:
            row = self._cells.get(method_id, {})
            if concern not in row:
                raise UnknownAspectError(method_id, concern)
            old = row[concern]
            row[concern] = aspect
            self._revision += 1
            return old

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup(self, method_id: str, concern: str) -> Aspect:
        """Return the registered aspect for the cell, or raise."""
        with self._lock:
            try:
                return self._cells[method_id][concern]
            except KeyError:
                raise UnknownAspectError(method_id, concern) from None

    def concerns_for(self, method_id: str) -> List[str]:
        """Concern labels registered for ``method_id``, in composition order."""
        with self._lock:
            return list(self._order.get(method_id, []))

    def aspects_for(self, method_id: str) -> List[Tuple[str, Aspect]]:
        """(concern, aspect) pairs for ``method_id`` in composition order."""
        with self._lock:
            row = self._cells.get(method_id, {})
            return [(concern, row[concern])
                    for concern in self._order.get(method_id, [])]

    def snapshot_for(
        self, method_id: str
    ) -> Tuple[int, List[Tuple[str, Aspect]]]:
        """Atomically read ``(revision, ordered pairs)`` for one method.

        Compile-time hook for the plan compiler: taking both under one
        lock acquisition rules out the torn read where the pairs belong
        to a newer revision than the one the plan is keyed under (the
        reverse tear — older pairs under a newer key — cannot produce a
        stale cache entry, because the key would already have moved on).
        """
        with self._lock:
            row = self._cells.get(method_id, {})
            pairs = [(concern, row[concern])
                     for concern in self._order.get(method_id, [])]
            return self._revision, pairs

    def methods(self) -> List[str]:
        """All participating methods with at least one registered aspect."""
        with self._lock:
            return list(self._cells)

    def has_method(self, method_id: str) -> bool:
        """O(1) membership: does any aspect guard ``method_id``?

        Lock-free — dict membership is atomic under the GIL, and the
        per-call participation probe (every dynamic-proxy attribute
        access) must not build a concern list or take a lock just to
        answer yes/no.
        """
        return method_id in self._cells

    def contains(self, method_id: str, concern: str) -> bool:
        with self._lock:
            return concern in self._cells.get(method_id, {})

    def __contains__(self, key: "Tuple[str, str]") -> bool:
        method_id, concern = key
        return self.contains(method_id, concern)

    def __len__(self) -> int:
        """Total number of occupied cells."""
        with self._lock:
            return sum(len(row) for row in self._cells.values())

    def __iter__(self) -> Iterator[Tuple[str, str, Aspect]]:
        """Iterate ``(method_id, concern, aspect)`` over a snapshot."""
        with self._lock:
            snapshot = [
                (method_id, concern, self._cells[method_id][concern])
                for method_id in self._cells
                for concern in self._order[method_id]
            ]
        return iter(snapshot)

    # ------------------------------------------------------------------
    # composition order (Section 5.3: auth before sync on the way in)
    # ------------------------------------------------------------------
    def set_order(self, method_id: str, concerns: List[str]) -> None:
        """Set an explicit composition order for ``method_id``.

        ``concerns`` must be a permutation of the registered concerns.
        """
        with self._lock:
            current = set(self._order.get(method_id, []))
            if set(concerns) != current or len(concerns) != len(current):
                raise RegistrationError(
                    f"order {concerns!r} is not a permutation of the "
                    f"registered concerns {sorted(current)!r} for "
                    f"{method_id!r}"
                )
            self._order[method_id] = list(concerns)
            self._revision += 1

    def grid(self) -> Dict[str, Dict[str, str]]:
        """Render the two-dimensional composition as nested dicts of names.

        This is the "hierarchical two-dimensional composition of the
        system in terms of aspects and components" made inspectable —
        useful for documentation, debugging and the FIG1 reproduction.
        """
        with self._lock:
            return {
                method_id: {
                    concern: self._cells[method_id][concern].describe()
                    for concern in self._order[method_id]
                }
                for method_id in self._cells
            }
