"""Exception hierarchy for the Aspect Moderator framework.

All framework errors derive from :class:`FrameworkError` so applications
can catch the whole family with one handler while still distinguishing
individual failure modes.
"""

from __future__ import annotations


class FrameworkError(Exception):
    """Base class for all Aspect Moderator framework errors."""


class MethodAborted(FrameworkError):
    """Raised when pre-activation returns ABORT for a participating method.

    Carries the method identifier and, when known, the concern whose
    precondition rejected the activation, so callers can react
    per-concern (e.g. re-authenticate vs. give up).
    """

    def __init__(self, method_id: str, concern: "str | None" = None,
                 reason: "str | None" = None) -> None:
        self.method_id = method_id
        self.concern = concern
        self.reason = reason
        detail = f"activation of {method_id!r} aborted"
        if concern is not None:
            detail += f" by concern {concern!r}"
        if reason:
            detail += f": {reason}"
        super().__init__(detail)


class AspectFault(FrameworkError):
    """An aspect raised out of a protocol phase — a contract violation.

    The moderation contract (paper Figures 11/18) expects ``precondition``,
    ``postaction`` and ``on_abort`` to *return*: RESUME/BLOCK/ABORT are the
    only sanctioned ways to influence an activation. An aspect that raises
    instead is wrapped in this error, which carries enough context
    (method, concern, phase) to drive quarantine policy and diagnostics.
    The original exception is available as ``original`` and as
    ``__cause__``.
    """

    def __init__(self, method_id: str, concern: str, phase: str,
                 original: BaseException) -> None:
        self.method_id = method_id
        self.concern = concern
        self.phase = phase
        self.original = original
        self.__cause__ = original
        super().__init__(
            f"aspect {concern!r} raised during {phase} of {method_id!r}: "
            f"{type(original).__name__}: {original}"
        )


class CompositionErrors(FrameworkError):
    """Several aspects faulted in one protocol phase (ExceptionGroup-style).

    The moderator never lets one faulty aspect abandon the rest of a
    reverse chain: every postaction / compensation still runs, and the
    faults collected along the way are aggregated here. ``exceptions``
    holds the individual :class:`AspectFault` instances in the order they
    occurred. (A hand-rolled group rather than :class:`ExceptionGroup`
    so the hierarchy works on Python 3.10.)
    """

    def __init__(self, faults: "tuple[BaseException, ...] | list") -> None:
        self.exceptions = tuple(faults)
        if self.exceptions:
            self.__cause__ = self.exceptions[0]
        detail = "; ".join(str(fault) for fault in self.exceptions)
        super().__init__(
            f"{len(self.exceptions)} aspect fault(s) during composition: "
            f"{detail}"
        )


class ContractViolation(FrameworkError):
    """A Design-by-Contract clause failed, with a blame verdict attached.

    Contract aspects (``repro.contracts``) check ``require`` clauses at
    the pre-activation seam and ``ensure``/``invariant`` clauses at the
    post-activation seams. When a clause fails, the runner replays the
    activation's checkpoint evidence to decide *who* broke the contract
    (Lorenz & Skotiniotis, *Extending Design by Contract for AOP*):

    * ``"caller"`` — a ``require`` clause (or an entry invariant) failed
      before any aspect ran: the activation was invalid on arrival;
    * ``"component"`` — an ``ensure`` clause failed at the post-body
      check point with no aspect having touched the observables;
    * ``"aspect:<concern>"`` — an interfering aspect mutated observable
      state between check points (pre-phase interference), or a clause
      that held at post-body broke right after that concern's
      postaction ran.

    ``evidence`` is a tuple of wire-safe checkpoint records — seam,
    concern, observable snapshot — so the verdict can be audited, sent
    across RPC (see :func:`repro.dist.message.error_reply`) and handed
    to the causal slicer (:mod:`repro.contracts.slicing`).
    """

    def __init__(self, method_id: str, clause: str, kind: str,
                 blame: str, detail: str = "",
                 evidence: "tuple | list" = (),
                 activation_id: int = 0) -> None:
        self.method_id = method_id
        self.clause = clause
        self.kind = kind
        self.blame = blame
        self.detail = detail
        self.evidence = tuple(evidence)
        self.activation_id = activation_id
        message = (
            f"contract {kind} {clause!r} violated on {method_id!r} "
            f"(blame: {blame})"
        )
        if detail:
            message += f": {detail}"
        super().__init__(message)

    @property
    def blamed_concern(self) -> "str | None":
        """The blamed aspect's concern, or None for caller/component."""
        if self.blame.startswith("aspect:"):
            return self.blame.split(":", 1)[1]
        return None

    def wire_payload(self) -> dict:
        """Wire-safe fields merged into an RPC error reply's payload."""
        return {
            "contract_method": self.method_id,
            "contract_clause": self.clause,
            "contract_kind": self.kind,
            "contract_blame": self.blame,
            "contract_activation": self.activation_id,
            "contract_evidence": [dict(record) for record in self.evidence],
        }


class RegistrationError(FrameworkError):
    """Raised on invalid aspect registration (e.g. duplicate or unknown kind)."""


class UnknownAspectError(FrameworkError, KeyError):
    """Raised when the factory or bank is asked for an unknown (method, concern)."""

    def __init__(self, method_id: str, concern: str) -> None:
        self.method_id = method_id
        self.concern = concern
        super().__init__(f"no aspect registered for ({method_id!r}, {concern!r})")


class NotParticipatingError(FrameworkError, AttributeError):
    """Raised when moderation is requested for a non-participating method."""


class WeavingError(FrameworkError):
    """Raised when weaving declarations are inconsistent (bad pointcut, etc.)."""


class ActivationTimeout(FrameworkError, TimeoutError):
    """Raised when a BLOCKed activation does not unblock within its deadline.

    The paper's wait loop can wait forever; a production framework must be
    able to bound that wait. The timeout is opt-in per proxy or per call.
    """

    def __init__(self, method_id: str, timeout: float) -> None:
        self.method_id = method_id
        self.timeout = timeout
        super().__init__(
            f"activation of {method_id!r} still blocked after {timeout:.3f}s"
        )


class AuthenticationError(FrameworkError):
    """Raised by authentication machinery on bad credentials or sessions."""


class AuthorizationError(FrameworkError):
    """Raised by authorization machinery when a principal lacks a permission."""


class NetworkError(FrameworkError):
    """Base error for the simulated distributed runtime."""


class DeadlineExceeded(NetworkError, TimeoutError):
    """The request's end-to-end deadline elapsed.

    Distinct from :class:`~repro.dist.rpc.RequestTimeout` (one attempt's
    reply did not arrive): the *logical call's* budget is spent, so no
    further attempt may be made — retry loops must re-raise instead of
    retrying. Servers raise it to reject already-expired requests
    without doing dead work; clients raise it when the budget runs out
    while waiting or between retries.
    """


class CircuitOpen(NetworkError):
    """A client-side circuit breaker is rejecting calls to a destination.

    Raised *before* any message is sent: the destination has timed out
    too many consecutive times, so the call fails fast instead of
    burning its full timeout against a node that is almost certainly
    down. The breaker half-opens after its reset timeout and probes.
    """

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        super().__init__(f"circuit open for node {node_id!r}")


class Overloaded(NetworkError):
    """A node shed the request at admission (bounded inbox full).

    Carries an optional ``retry_after`` hint, in seconds — the shedding
    node's suggestion of how long to back off before retrying. Retry
    loops honour it as a floor under their own backoff delay.
    """

    def __init__(self, detail: str = "",
                 retry_after: "float | None" = None) -> None:
        self.retry_after = retry_after
        message = detail or "node overloaded"
        if retry_after is not None:
            message += f" (retry after {retry_after:.3f}s)"
        super().__init__(message)


class FencedOut(Overloaded):
    """A request or journal append carried a stale fencing epoch.

    Minted by the naming service on every rebind (the binding version
    *is* the epoch), the fencing epoch rides armed requests and guards
    the durable journal (``repro.dist.recovery``). A zombie node that
    returns after being declared dead — or a client still dialing it
    with a stale binding — observes this rejection instead of
    corrupting the replacement's state.

    Subclasses :class:`Overloaded` deliberately: the failure is
    *transient from the caller's point of view* — re-resolving the name
    lands the retry on the current epoch holder — so existing
    ``RPC_TRANSIENT`` retry policies recover without modification.
    """

    def __init__(self, detail: str = "", stale_epoch: int = 0,
                 current_epoch: int = 0,
                 retry_after: "float | None" = None) -> None:
        self.stale_epoch = stale_epoch
        self.current_epoch = current_epoch
        message = detail or (
            f"fenced out: epoch {stale_epoch} superseded by "
            f"{current_epoch}"
        )
        super().__init__(message, retry_after=retry_after)

    def wire_payload(self) -> dict:
        """Wire-safe fields merged into an RPC error reply's payload."""
        return {
            "stale_epoch": self.stale_epoch,
            "current_epoch": self.current_epoch,
        }


class ClientClosed(NetworkError):
    """The RPC client was closed while (or before) a call was in flight.

    Callers blocked in ``call_node`` wake promptly with this error
    instead of burning their full timeout against a client that will
    never route them a reply.
    """


class NodeUnreachable(NetworkError):
    """Raised when a message cannot be delivered (partition or dead node)."""

    def __init__(self, node_id: str) -> None:
        self.node_id = node_id
        super().__init__(f"node {node_id!r} unreachable")


class NameNotFound(NetworkError, KeyError):
    """Raised by the naming service for unbound names."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"name {name!r} is not bound")


class SimulationError(FrameworkError):
    """Base error for the discrete-event simulation substrate."""


class ClockError(SimulationError):
    """Raised on attempts to move virtual time backwards."""
