"""Activation results and phases for the Aspect Moderator protocol.

The paper (Section 4.2) defines three possible outcomes of evaluating the
aspects attached to a participating method:

* the service may be invoked (``RESUME``),
* the caller may be forced to wait (``BLOCK``),
* or the activation may be aborted (``ABORT``).

``AspectResult`` is the Python rendering of the integer constants
(``RESUME`` / ``BLOCKED`` / ``ABORT`` / ``ERROR``) that appear throughout
the paper's Java listings (Figures 10, 11, 17).
"""

from __future__ import annotations

import enum


class AspectResult(enum.Enum):
    """Outcome of an aspect ``precondition`` evaluation.

    ``RESUME``
        All constraints hold; the participating method may execute.
    ``BLOCK``
        A synchronization constraint does not currently hold; the caller
        must wait on the method's wait queue and re-evaluate when notified
        (the ``while (result == BLOCKED) wait()`` loop of Figure 11).
    ``ABORT``
        The activation must not proceed, now or later (e.g. a failed
        authentication check, Figure 14's ``ABORT`` branch).
    """

    RESUME = "resume"
    BLOCK = "block"
    ABORT = "abort"

    def __bool__(self) -> bool:
        """Truthiness shortcut: only ``RESUME`` is truthy.

        Enables ``if aspect.precondition(jp): ...`` in simple guards.
        """
        return self is AspectResult.RESUME


#: Module-level aliases mirroring the paper's constant style
#: (``AspectModerator.RESUME`` etc. in Figure 11).
RESUME = AspectResult.RESUME
BLOCK = AspectResult.BLOCK
ABORT = AspectResult.ABORT


class Phase(enum.Enum):
    """The phase of the moderation protocol a join point is in.

    Participating methods are "guarded by a pre-activation and
    post-activation phase" (Section 4.2). ``ABORTED`` is the terminal
    phase of an activation rejected during pre-activation, and is used to
    drive compensating actions on aspects that had already voted RESUME.
    """

    PRE_ACTIVATION = "pre_activation"
    INVOCATION = "invocation"
    POST_ACTIVATION = "post_activation"
    ABORTED = "aborted"


def combine(results: "list[AspectResult]") -> AspectResult:
    """Combine the results of several aspect preconditions.

    The combined activation may proceed only if every aspect voted
    ``RESUME`` ("Only when both are true, then execution may proceed",
    Section 5.3). ``ABORT`` dominates ``BLOCK`` dominates ``RESUME``:
    an activation that can never succeed must not be parked on a wait
    queue.

    An empty result list combines to ``RESUME``: a participating method
    with no registered aspects behaves like a plain method.
    """
    combined = AspectResult.RESUME
    for result in results:
        if result is AspectResult.ABORT:
            return AspectResult.ABORT
        if result is AspectResult.BLOCK:
            combined = AspectResult.BLOCK
    return combined
