"""Aspect factories: the Factory Method pattern of the paper, Section 5.1.

"The Factory Method pattern can be used to create the required aspects for
the participating methods of the functionality class. All aspect objects
implement the AspectIF interface. The intent of the Factory Method pattern
is to define an interface for creating an aspect object, but let the
requestor decide which class to instantiate."

Participants (paper Figure 4):

* ``AspectFactoryIF``  -> :class:`AspectFactory` (the abstract interface),
* ``AspectFactory``    -> :class:`RegistryAspectFactory` (data-driven
  application factory replacing the paper's if/else ladders, Figure 6),
* ``ExtendedAspectFactory`` (Figure 15) -> :class:`CompositeFactory`,
  which chains factories so an extension can add new (method, concern)
  products without editing the base factory.
"""

from __future__ import annotations

import abc
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .aspect import Aspect
from .errors import RegistrationError, UnknownAspectError

#: A constructor invoked as ``builder(component)`` returning a new Aspect.
AspectBuilder = Callable[[Any], Aspect]


class AspectFactory(abc.ABC):
    """Application-independent creation interface (``AspectFactoryIF``).

    "It declares the Factory Method, which returns an object of type
    AspectIF by taking whatever arguments are needed to deduce the class
    to instantiate." Here those arguments are the participating method
    identifier, the concern label, and the requesting component (the
    paper passes the proxy; passing the functional component is
    equivalent and keeps aspects proxy-agnostic).
    """

    @abc.abstractmethod
    def create(self, method_id: str, concern: str, component: Any) -> Aspect:
        """Instantiate the aspect for ``(method_id, concern)``.

        Raises :class:`UnknownAspectError` when this factory has no
        product for the cell — composite factories rely on that signal to
        fall through to the next factory in the chain.
        """

    @abc.abstractmethod
    def products(self) -> List[Tuple[str, str]]:
        """The ``(method_id, concern)`` cells this factory can populate."""

    def can_create(self, method_id: str, concern: str) -> bool:
        return (method_id, concern) in self.products()


class RegistryAspectFactory(AspectFactory):
    """A data-driven factory: cells map to aspect builders.

    The paper's ``AspectFactory`` (Figure 6) is an if/else ladder over
    string pairs. A registry of builders expresses the same dispatch
    without code edits per product::

        factory = RegistryAspectFactory()
        factory.register("open", "sync", OpenSynchronizationAspect)
        factory.register("assign", "sync", AssignSynchronizationAspect)
        aspect = factory.create("open", "sync", ticket_server)

    Builders are called with the component; to share one aspect instance
    across methods (e.g. one buffer-sync object guarding both put and
    take), register with ``shared=True`` so the first creation is cached
    and reused.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._builders: Dict[Tuple[str, str], AspectBuilder] = {}
        self._shared: Dict[Tuple[str, str], bool] = {}
        # (method, concern, id(component)) -> cached instance for shared cells
        self._cache: Dict[Tuple[str, str, int], Aspect] = {}

    def register(self, method_id: str, concern: str, builder: AspectBuilder,
                 shared: bool = False, replace: bool = False) -> None:
        """Register ``builder`` as the product for ``(method_id, concern)``."""
        if not callable(builder):
            raise RegistrationError(
                f"builder for ({method_id!r}, {concern!r}) is not callable"
            )
        key = (method_id, concern)
        with self._lock:
            if key in self._builders and not replace:
                raise RegistrationError(
                    f"factory already builds ({method_id!r}, {concern!r})"
                )
            self._builders[key] = builder
            self._shared[key] = shared

    def register_shared(self, method_ids: Iterable[str], concern: str,
                        builder: AspectBuilder) -> None:
        """Register one shared builder under several methods.

        All listed methods receive the *same* aspect instance per
        component — the natural encoding of a synchronization constraint
        spanning multiple methods (producer/consumer counters).
        """
        instances: Dict[int, Aspect] = {}
        instance_lock = threading.Lock()

        def shared_builder(component: Any) -> Aspect:
            with instance_lock:
                key = id(component)
                if key not in instances:
                    instances[key] = builder(component)
                return instances[key]

        for method_id in method_ids:
            self.register(method_id, concern, shared_builder)

    def create(self, method_id: str, concern: str, component: Any) -> Aspect:
        key = (method_id, concern)
        with self._lock:
            builder = self._builders.get(key)
            if builder is None:
                raise UnknownAspectError(method_id, concern)
            if self._shared.get(key):
                cache_key = (method_id, concern, id(component))
                if cache_key not in self._cache:
                    self._cache[cache_key] = builder(component)
                return self._cache[cache_key]
        aspect = builder(component)
        if not isinstance(aspect, Aspect):
            raise RegistrationError(
                f"builder for ({method_id!r}, {concern!r}) returned "
                f"{type(aspect).__name__}, not an Aspect"
            )
        return aspect

    def products(self) -> List[Tuple[str, str]]:
        with self._lock:
            return list(self._builders)


class CompositeFactory(AspectFactory):
    """Chain of factories; later factories extend earlier ones.

    This is the framework rendering of ``ExtendedAspectFactory extends
    AspectFactory`` (paper Figure 15): adaptability by *adding* a factory
    that knows the new concern, leaving the original factory untouched.
    Creation tries factories in reverse addition order (most-derived
    first), falling through on :class:`UnknownAspectError`.
    """

    def __init__(self, factories: Optional[Iterable[AspectFactory]] = None) -> None:
        self._factories: List[AspectFactory] = list(factories or [])

    def extend(self, factory: AspectFactory) -> "CompositeFactory":
        """Add an extension factory. Returns self for chaining."""
        self._factories.append(factory)
        return self

    def create(self, method_id: str, concern: str, component: Any) -> Aspect:
        for factory in reversed(self._factories):
            try:
                return factory.create(method_id, concern, component)
            except UnknownAspectError:
                continue
        raise UnknownAspectError(method_id, concern)

    def products(self) -> List[Tuple[str, str]]:
        seen: List[Tuple[str, str]] = []
        for factory in self._factories:
            for cell in factory.products():
                if cell not in seen:
                    seen.append(cell)
        return seen


def factory_from_table(
    table: Dict[Tuple[str, str], AspectBuilder]
) -> RegistryAspectFactory:
    """Build a :class:`RegistryAspectFactory` from a literal dispatch table.

    Convenience for tests and examples::

        factory = factory_from_table({
            ("open", "sync"): OpenSync,
            ("assign", "sync"): AssignSync,
        })
    """
    factory = RegistryAspectFactory()
    for (method_id, concern), builder in table.items():
        factory.register(method_id, concern, builder)
    return factory
