"""Join-point event bus and sequence tracing.

The paper communicates its runtime protocol through UML sequence diagrams
(Figure 2: initialization; Figure 3: method invocation). To *reproduce*
those figures executably, the framework emits a structured event for every
protocol step; a :class:`Tracer` collects them and renders the same
message sequences the diagrams show.

Event kinds (one per arrow in the diagrams):

==================  ====================================================
kind                 meaning
==================  ====================================================
``create_aspect``    proxy asked the factory to create an aspect
``register_aspect``  aspect stored in the bank/moderator
``preactivation``    proxy delegated pre-activation to the moderator
``precondition``     moderator evaluated one aspect's precondition
``blocked``          activation parked on a wait queue
``unblocked``        activation woken for re-evaluation
``invoke``           proxy invoked the participating method
``postactivation``   proxy delegated post-activation to the moderator
``postaction``       moderator ran one aspect's postaction
``notify``           moderator notified wait queues
``abort``            activation aborted
``compensate``       on_abort compensation ran for an aspect
``lock_domain``      method (re)assigned to a lock domain (detail holds
                     the domain name; empty = back to its own stripe)
``aspect_fault``     an aspect raised out of a protocol phase (detail:
                     ``"<phase>: <exception type>"``)
``quarantine``       a (method, concern) cell hit its fault threshold
                     (detail holds the policy: fail_open/fail_closed)
``reinstate``        a quarantined cell was manually reinstated
``degraded_skip``    a fail-open quarantined aspect was skipped
``watchdog_stall``   the stall watchdog found activations parked past
                     their deadline (detail holds the summary)
``timeout``          a parked activation exhausted its timeout and is
                     about to raise ``ActivationTimeout``
==================  ====================================================
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

EventListener = Callable[["TraceEvent"], None]


@dataclass(frozen=True)
class TraceEvent:
    """One step of the moderation protocol."""

    kind: str
    method_id: str = ""
    concern: str = ""
    detail: str = ""
    activation_id: int = 0
    thread_name: str = field(
        default_factory=lambda: threading.current_thread().name
    )
    timestamp: float = field(default_factory=time.monotonic)
    #: seconds the step took (0.0 when the emitter didn't time it —
    #: timing is only measured when the bus has listeners, so the
    #: allocation-free fast path stays free when nobody is watching)
    duration: float = 0.0

    def format(self) -> str:
        """Render as one line of a textual sequence diagram."""
        parts = [self.kind, self.method_id]
        if self.concern:
            parts.append(f"[{self.concern}]")
        if self.detail:
            parts.append(f"-> {self.detail}")
        return " ".join(part for part in parts if part)


class EventBus:
    """Synchronous fan-out of protocol events to registered listeners.

    Emission with zero listeners is a few attribute lookups — the
    framework keeps the bus on the hot path without measurable cost when
    tracing is off (verified by ``benchmarks/bench_fig03_invocation.py``).

    The listener list is a **copy-on-write tuple**: ``emit`` reads it
    with one attribute load (no lock, no copy — rebinding a tuple is
    atomic under the GIL) and mutations build a fresh tuple under the
    subscription lock. A raising listener is **isolated**: its exception
    is swallowed (counted in :attr:`listener_errors`) instead of
    propagating into the moderation protocol and starving later
    listeners — observers must never be able to abort an activation.
    """

    def __init__(self) -> None:
        self._listeners: Tuple[EventListener, ...] = ()
        self._lock = threading.Lock()
        #: exceptions swallowed from raising listeners so far
        self.listener_errors = 0
        #: wall-clock anchor: (``time.time()``, ``time.monotonic()``)
        #: captured together once, so exporters can translate the
        #: monotonic event timestamps into cross-process-comparable
        #: wall-clock instants
        self.anchor: Tuple[float, float] = (time.time(), time.monotonic())

    def subscribe(self, listener: EventListener) -> Callable[[], None]:
        """Add ``listener``; returns an unsubscribe callable."""
        with self._lock:
            self._listeners = self._listeners + (listener,)

        def unsubscribe() -> None:
            with self._lock:
                listeners = list(self._listeners)
                if listener in listeners:
                    listeners.remove(listener)
                    self._listeners = tuple(listeners)

        return unsubscribe

    @property
    def has_listeners(self) -> bool:
        return bool(self._listeners)

    def to_wall(self, timestamp: float) -> float:
        """A monotonic event timestamp as a wall-clock instant."""
        wall, mono = self.anchor
        return timestamp - mono + wall

    def emit(self, kind: str, method_id: str = "", concern: str = "",
             detail: str = "", activation_id: int = 0,
             duration: float = 0.0) -> None:
        listeners = self._listeners
        if not listeners:
            return
        event = TraceEvent(
            kind=kind,
            method_id=method_id,
            concern=concern,
            detail=detail,
            activation_id=activation_id,
            duration=duration,
        )
        for listener in listeners:
            try:
                listener(event)
            except Exception:
                with self._lock:
                    self.listener_errors += 1


class Tracer:
    """Collects protocol events in order; regenerates Figures 2 and 3.

    Usage::

        tracer = Tracer()
        unsubscribe = moderator.events.subscribe(tracer)
        ... exercise the system ...
        print(tracer.render())

    Args:
        maxlen: optional bound on retained events. Unbounded by default
            (figure reproduction needs every arrow), but a tracer left
            subscribed to a long-running moderator grows without limit —
            soak tests and always-on diagnostics should cap it. When the
            ring is full each new event evicts the oldest;
            :attr:`dropped` counts the evictions, so consumers can tell
            a short trace from a truncated one.
    """

    def __init__(self, maxlen: Optional[int] = None) -> None:
        if maxlen is not None and maxlen < 1:
            raise ValueError("maxlen must be at least 1 (or None)")
        self.maxlen = maxlen
        self._lock = threading.Lock()
        self._events: Deque[TraceEvent] = deque(maxlen=maxlen)
        self._dropped = 0
        #: wall-clock anchor, captured once: see ``EventBus.anchor``
        self.anchor: Tuple[float, float] = (time.time(), time.monotonic())

    def __call__(self, event: TraceEvent) -> None:
        with self._lock:
            if self.maxlen is not None and \
                    len(self._events) == self.maxlen:
                self._dropped += 1
            self._events.append(event)

    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted from a full ring so far (0 when unbounded)."""
        with self._lock:
            return self._dropped

    def kinds(self) -> List[str]:
        """Sequence of event kinds in emission order (diagram arrows)."""
        return [event.kind for event in self.events]

    def for_activation(self, activation_id: int) -> List[TraceEvent]:
        return [
            event for event in self.events
            if event.activation_id == activation_id
        ]

    def for_method(self, method_id: str) -> List[TraceEvent]:
        return [
            event for event in self.events if event.method_id == method_id
        ]

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    def to_wall(self, timestamp: float) -> float:
        """A monotonic event timestamp as a wall-clock instant."""
        wall, mono = self.anchor
        return timestamp - mono + wall

    def clear(self) -> None:
        """Start a fresh trace: drop retained events and the drop count."""
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def render(self) -> str:
        """Textual sequence diagram: one line per protocol arrow."""
        return "\n".join(event.format() for event in self.events)

    def summary(self) -> Dict[str, int]:
        """Event-kind histogram; convenient for assertions and benches."""
        histogram: Dict[str, int] = {}
        for event in self.events:
            histogram[event.kind] = histogram.get(event.kind, 0) + 1
        return histogram
