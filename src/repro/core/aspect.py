"""Aspect abstractions: the ``AspectIF`` of the paper, in Python.

Every aspect object implements ``precondition()`` and ``postaction()``
(paper Figure 7: ``OpenSynchronizationAspect``). Aspects are first-class
values ("aspect objects are first class abstractions (values)",
Section 5.1.2): they can be stored in the aspect bank, passed around,
shared between methods, and swapped at runtime.

This module provides:

* :class:`Aspect` — the abstract base class (``AspectIF``),
* :class:`FunctionAspect` — adapts plain callables into aspects,
* :class:`StatefulAspect` — base class with a per-aspect lock for aspects
  that maintain mutable synchronization counters,
* :class:`NullAspect` — the do-nothing aspect (useful default / testing),
* :func:`as_aspect` — coercion helper used throughout the framework.
"""

from __future__ import annotations

import abc
import threading
from typing import Any, Callable, Optional, Tuple

from .joinpoint import JoinPoint
from .results import AspectResult

#: Signature of a precondition callable: JoinPoint -> AspectResult | bool | None
PreconditionFn = Callable[[JoinPoint], Any]
#: Signature of a postaction callable: JoinPoint -> None
PostactionFn = Callable[[JoinPoint], Any]


def _coerce_result(value: Any) -> AspectResult:
    """Map loose precondition return values onto :class:`AspectResult`.

    Accepts an ``AspectResult`` directly, a boolean (``True`` -> RESUME,
    ``False`` -> BLOCK, matching the paper's "if the shared object is not
    full then return true else return blocked"), or ``None`` (-> RESUME,
    for preconditions that only raise on failure).
    """
    if isinstance(value, AspectResult):
        return value
    if value is None or value is True:
        return AspectResult.RESUME
    if value is False:
        return AspectResult.BLOCK
    raise TypeError(
        f"precondition returned {value!r}; expected AspectResult, bool or None"
    )


class Aspect(abc.ABC):
    """Interface of the objects the aspect factory creates (``AspectIF``).

    Subclasses override :meth:`precondition` and/or :meth:`postaction`.
    The default precondition is RESUME and the default postaction is a
    no-op, so one-sided aspects (pure loggers, pure guards) only override
    what they need.
    """

    #: Concern label ("Sync", "Authenticate", ...) — informational; the
    #: authoritative binding is the bank registration.
    concern: str = "aspect"

    #: Contract flag: ``True`` promises that :meth:`precondition` never
    #: returns BLOCK *and* that :meth:`postaction` never enables another
    #: method's blocked precondition. Methods whose entire chain carries
    #: the promise moderate on a lock-free fast path (no wait queue, no
    #: domain lock). Observers (timing, audit), caches and pure guards
    #: (which may ABORT but never BLOCK) qualify; synchronization,
    #: scheduling and rate-limiting aspects do not.
    never_blocks: bool = False

    #: Quarantine policy applied when this aspect keeps *raising* out of
    #: protocol phases (a contract violation — see ``repro.core.health``):
    #: ``"fail_open"`` skips the degraded aspect (observers: audit,
    #: timing), ``"fail_closed"`` ABORTs activations instead of admitting
    #: them unguarded (guards: auth, sync), ``None`` (default) never
    #: quarantines — every fault propagates, the aspect stays in the
    #: chain. Overridable per registration via ``fault_policy=``.
    fault_policy: Optional[str] = None

    #: Faults tolerated before quarantine kicks in; ``None`` defers to
    #: the moderator's default threshold.
    fault_threshold: Optional[int] = None

    #: Optional shared lock-domain name. Aspects that mutate state shared
    #: across several methods *without their own lock* set this (or pass
    #: ``lock_domain=`` at registration) so every method they guard
    #: moderates under one lock, preserving the atomicity a single
    #: moderator-wide monitor used to give them. Aspects with their own
    #: lock (:class:`StatefulAspect`) don't need it.
    lock_domain: Optional[str] = None

    # -- profiler declarations (consumed by ``repro.obs.profile``) -----
    # All four default to the conservative "no" and are ignored unless a
    # ClauseProfiler is installed on the moderator, so undeclared aspects
    # and profiler-less deployments behave exactly as before.

    #: Concern labels this aspect's *precondition* commutes with: the
    #: composed outcome (votes, component state, compensation debt) is
    #: the same whichever of the two evaluates first. ``"*"`` (or a
    #: collection containing it) declares commutativity with any other
    #: aspect that declares back. Reordering is mutual: a profiler only
    #: swaps two adjacent cells when *each* names the other (or ``"*"``)
    #: — one-sided declarations reorder nothing.
    commutes_with: Tuple[str, ...] = ()

    #: ``True`` promises the precondition is a pure function of the join
    #: point and observable state — no side effects, so a cached RESUME
    #: may stand in for a re-evaluation and ``on_abort`` owes nothing
    #: for it. Only RESUME votes are ever memoized (a BLOCK must re-poll
    #: the condition it waits on; an ABORT may depend on per-call data).
    idempotent_precondition: bool = False

    #: Cache-key function for memoized preconditions: ``cache_key(jp)``
    #: returns a hashable key identifying the decision's inputs (the
    #: ouroboros pattern: the strategy owns its key). ``None`` disables
    #: memoization even when ``idempotent_precondition`` is declared. A
    #: *raising* key function follows the cell's quarantine policy:
    #: ``fail_closed`` cells propagate it as an :class:`AspectFault`,
    #: anything else bypasses the cache and evaluates normally.
    cache_key: Optional[Callable[[JoinPoint], Any]] = None

    #: ``True`` declares this aspect a pure observer: its precondition
    #: always RESUMEs without side effects and its postaction never
    #: affects any other activation's outcome. A profiler running with
    #: ``skip_analysis`` elides such cells from compiled plans entirely
    #: (the hot-path escape); requires ``never_blocks``.
    pure_observer: bool = False

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        """Evaluate this aspect's constraint before the method runs.

        Called during pre-activation (paper Figure 11). Must be free of
        side effects that cannot be compensated by :meth:`on_abort`,
        because a later aspect in the chain may still ABORT the
        activation.
        """
        return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        """Update aspect state after the method has run (post-activation)."""

    def on_abort(self, joinpoint: JoinPoint) -> None:
        """Compensate a RESUMEd precondition when a later aspect aborts.

        The paper's listings do not undo earlier preconditions on abort
        (its sync preconditions mutate counters before returning, Figure
        7) — a latent bug in the original design. The framework closes it:
        when aspect *k* of the chain aborts, ``on_abort`` is invoked on
        aspects ``0..k-1`` in reverse order.
        """

    def evaluate_precondition(self, joinpoint: JoinPoint) -> AspectResult:
        """Call :meth:`precondition` and normalize its result."""
        return _coerce_result(self.precondition(joinpoint))

    def describe(self) -> str:
        """Human-readable identity used in traces."""
        return f"{type(self).__name__}({self.concern})"


class NullAspect(Aspect):
    """An aspect with no constraints and no state. Always RESUMEs."""

    concern = "null"
    never_blocks = True


class FunctionAspect(Aspect):
    """Adapts plain callables into an :class:`Aspect`.

    Example::

        timing = FunctionAspect(
            concern="timing",
            precondition=lambda jp: jp.context.setdefault("t0", time.time()),
            postaction=lambda jp: print(time.time() - jp.context["t0"]),
        )
    """

    def __init__(
        self,
        concern: str = "function",
        precondition: Optional[PreconditionFn] = None,
        postaction: Optional[PostactionFn] = None,
        on_abort: Optional[PostactionFn] = None,
        never_blocks: bool = False,
        lock_domain: Optional[str] = None,
        fault_policy: Optional[str] = None,
        fault_threshold: Optional[int] = None,
        commutes_with: Tuple[str, ...] = (),
        idempotent_precondition: bool = False,
        cache_key: Optional[Callable[[JoinPoint], Any]] = None,
        pure_observer: bool = False,
    ) -> None:
        self.concern = concern
        self._precondition = precondition
        self._postaction = postaction
        self._on_abort = on_abort
        self.never_blocks = never_blocks
        self.lock_domain = lock_domain
        self.fault_policy = fault_policy
        self.fault_threshold = fault_threshold
        self.commutes_with = tuple(commutes_with)
        self.idempotent_precondition = idempotent_precondition
        if cache_key is not None:
            self.cache_key = cache_key
        self.pure_observer = pure_observer

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        if self._precondition is None:
            return AspectResult.RESUME
        return _coerce_result(self._precondition(joinpoint))

    def postaction(self, joinpoint: JoinPoint) -> None:
        if self._postaction is not None:
            self._postaction(joinpoint)

    def on_abort(self, joinpoint: JoinPoint) -> None:
        if self._on_abort is not None:
            self._on_abort(joinpoint)


class StatefulAspect(Aspect):
    """Base class for aspects with mutable state shared across threads.

    Provides ``self._lock``, an RLock guarding the aspect's counters. The
    moderator already serializes pre-activations per (method, concern)
    wait queue, but one aspect instance may guard *several* methods
    (e.g. one ``BoundedBufferSync`` guarding both ``put`` and ``take``),
    in which case its own lock is what keeps the counters consistent.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()

    def snapshot(self) -> dict:
        """Return a copy of the aspect's public state for inspection/tests."""
        with self._lock:
            return {
                key: value
                for key, value in vars(self).items()
                if not key.startswith("_")
            }


def as_aspect(obj: Any, concern: str = "function") -> Aspect:
    """Coerce ``obj`` into an :class:`Aspect`.

    Accepts an existing aspect (returned unchanged), a callable (treated
    as a precondition), or a ``(precondition, postaction)`` tuple of
    callables.
    """
    if isinstance(obj, Aspect):
        return obj
    if callable(obj):
        return FunctionAspect(concern=concern, precondition=obj)
    if isinstance(obj, tuple) and len(obj) == 2:
        pre, post = obj
        return FunctionAspect(concern=concern, precondition=pre, postaction=post)
    raise TypeError(f"cannot interpret {obj!r} as an aspect")
