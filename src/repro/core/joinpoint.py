"""Join points: reified invocations of participating methods.

The paper calls methods that are associated with aspect objects
*participating methods* (Section 4.2). A :class:`JoinPoint` reifies one
activation of one participating method, carrying everything an aspect's
``precondition`` / ``postaction`` may need: the target component, the
method identifier, the call arguments, the phase, and (after invocation)
the result or the exception.

Aspects in the paper receive the component via their constructor and the
method implicitly via registration; passing the join point explicitly is
the Python generalization that lets one aspect instance serve many methods
and components.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from .results import Phase

_joinpoint_ids = itertools.count(1)

class _Unset:
    """Sentinel distinguishing "no result yet" from "returned None".

    Copy/deepcopy return the singleton so identity checks survive the
    state cloning done by :mod:`repro.verify`.
    """

    def __copy__(self) -> "_Unset":
        return self

    def __deepcopy__(self, memo: dict) -> "_Unset":
        return self

    def __repr__(self) -> str:
        return "<unset>"


_UNSET = _Unset()


@dataclass
class JoinPoint:
    """A single activation of a participating method.

    Attributes:
        method_id: Name of the participating method (``"open"``,
            ``"assign"`` in the paper's trouble-ticketing example).
        component: The functional component the method belongs to.
        args: Positional arguments of the activation.
        kwargs: Keyword arguments of the activation.
        phase: Current :class:`~repro.core.results.Phase` of the protocol.
        caller: Optional identity of the calling principal/thread; used by
            authentication and scheduling aspects.
        context: Free-form per-activation scratch space; aspects may stash
            state here between precondition and postaction (e.g. a timing
            aspect stores its start timestamp).
    """

    method_id: str
    component: Any = None
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    phase: Phase = Phase.PRE_ACTIVATION
    caller: Optional[Any] = None
    context: Dict[str, Any] = field(default_factory=dict)
    activation_id: int = field(default_factory=lambda: next(_joinpoint_ids))
    thread_name: str = field(
        default_factory=lambda: threading.current_thread().name
    )
    created_at: float = field(default_factory=time.monotonic)

    _result: Any = field(default=_UNSET, repr=False)
    _exception: Optional[BaseException] = field(default=None, repr=False)

    @property
    def has_result(self) -> bool:
        """Whether the underlying method has produced a return value."""
        return self._result is not _UNSET

    @property
    def result(self) -> Any:
        """Return value of the participating method (post-activation only)."""
        if self._result is _UNSET:
            raise AttributeError(
                f"join point {self.method_id!r} has no result yet "
                f"(phase={self.phase.value})"
            )
        return self._result

    @result.setter
    def result(self, value: Any) -> None:
        self._result = value

    @property
    def exception(self) -> Optional[BaseException]:
        """Exception raised by the method body, if any."""
        return self._exception

    @exception.setter
    def exception(self, exc: Optional[BaseException]) -> None:
        self._exception = exc

    def replace_result(self, value: Any) -> None:
        """Substitute the activation's result (used by e.g. caching aspects)."""
        self._result = value

    def skip_invocation(self, result: Any = None) -> None:
        """Ask the proxy to skip the method body and use ``result`` instead.

        Framework extension beyond the paper (whose protocol is strictly
        pre/post): an aspect's ``precondition`` may satisfy the
        activation itself — e.g. a caching aspect serving a hit — while
        post-activation still runs normally. Only honoured when set
        during pre-activation.
        """
        self.context["__skip_invocation__"] = True
        self._result = result

    @property
    def invocation_skipped(self) -> bool:
        """Whether an aspect asked for the method body to be skipped."""
        return bool(self.context.get("__skip_invocation__"))

    def describe(self) -> str:
        """Short human-readable description used by tracing and errors."""
        component = type(self.component).__name__ if self.component else "?"
        return (
            f"{component}.{self.method_id}"
            f"(args={len(self.args)}, kwargs={len(self.kwargs)})"
            f"#{self.activation_id}"
        )
