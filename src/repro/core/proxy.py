"""Component proxies: guarded access to functional components.

Paper, Sections 4.1-4.2: "the proxy to the functional component is
responsible to evaluate each of [the] aspects that are associated with
each one of the services defined on the functional component. [...]
Before executing each [method] on the functional component, the proxy
object calls the moderator object to evaluate the aspect code that is
associated with that method" (Figure 10's guarded methods).

The paper writes one proxy subclass per component. The framework instead
provides a generic :class:`ComponentProxy` that intercepts attribute
access: participating methods (those with registered aspects, or those
explicitly declared) are wrapped in the pre-/post-activation bracket;
everything else passes straight through to the component. A hand-written
proxy in the paper's style remains possible — see
``repro.apps.ticketing.TicketServerProxy`` — and behaves identically.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterable, Optional, Set

from .errors import MethodAborted
from .joinpoint import JoinPoint
from .moderator import AspectModerator
from .results import AspectResult, Phase


class ComponentProxy:
    """Generic dynamic proxy guarding a component's participating methods.

    Args:
        component: the functional component (the sequential object).
        moderator: the aspect moderator coordinating this cluster.
        participating: explicit method names to guard. When ``None``,
            a method participates iff the moderator has aspects
            registered for it at call time (dynamic participation — new
            aspects take effect immediately).
        caller: default principal attached to join points issued through
            this proxy (overridable per call via :meth:`call`).
        timeout: optional default bound for BLOCKed activations.

    Behaviour on ABORT: :class:`MethodAborted` is raised (the paper's
    listings print "ABORT" and fall through — an error path a library
    cannot leave silent).
    """

    # Instance attributes that live on the proxy, not the component.
    _OWN = frozenset({
        "_component", "_moderator", "_participating", "_caller", "_timeout",
        "_wrappers", "_wrapper_revision",
    })

    def __init__(
        self,
        component: Any,
        moderator: AspectModerator,
        participating: Optional[Iterable[str]] = None,
        caller: Any = None,
        timeout: Optional[float] = None,
    ) -> None:
        self._component = component
        self._moderator = moderator
        self._participating: Optional[Set[str]] = (
            set(participating) if participating is not None else None
        )
        self._caller = caller
        self._timeout = timeout
        # guarded-wrapper cache, invalidated when the moderator's aspect
        # composition changes (registration_version) or the underlying
        # attribute is rebound on the component
        self._wrappers: dict = {}
        self._wrapper_revision = moderator.registration_version

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def component(self) -> Any:
        """The wrapped functional component."""
        return self._component

    @property
    def moderator(self) -> AspectModerator:
        """The moderator coordinating this proxy's activations."""
        return self._moderator

    def is_participating(self, method_id: str) -> bool:
        """Whether calls to ``method_id`` go through moderation."""
        if self._participating is not None:
            return method_id in self._participating
        return self._moderator.participates(method_id)

    # ------------------------------------------------------------------
    # interception
    # ------------------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # Only called for attributes not found on the proxy itself.
        target = getattr(self._component, name)
        if not callable(target) or not self.is_participating(name):
            return target
        revision = self._moderator.registration_version
        if revision != self._wrapper_revision:
            self._wrappers.clear()
            object.__setattr__(self, "_wrapper_revision", revision)
        cached = self._wrappers.get(name)
        # equality, not identity: getattr on the component yields a fresh
        # bound-method object per access, but equal ones are interchangeable
        if cached is not None and getattr(cached, "__wrapped__", None) == target:
            return cached
        wrapper = self._guard(name, target)
        self._wrappers[name] = wrapper
        return wrapper

    def __setattr__(self, name: str, value: Any) -> None:
        # The proxy owns only its _OWN slots; every other write belongs to
        # the component. Without this, ``proxy.attr = x`` would land on the
        # proxy and shadow the component's attribute on subsequent reads.
        if name in self._OWN:
            object.__setattr__(self, name, value)
        else:
            setattr(self._component, name, value)

    def __delattr__(self, name: str) -> None:
        if name in self._OWN:
            object.__delattr__(self, name)
        else:
            delattr(self._component, name)

    def _guard(self, method_id: str,
               target: Callable[..., Any]) -> Callable[..., Any]:
        """Wrap ``target`` in the pre-/post-activation bracket (Figure 10).

        Compiled-pipeline moderators hand out a stable
        :class:`~repro.core.plan.PlanHandle` per method; the wrapper
        captures the handle (never a plan) and revalidates per call —
        a few integer compares — so a cached wrapper sees a swapped or
        quarantined aspect on its very next invocation.
        """
        moderator = self._moderator
        component = self._component
        caller = self._caller
        timeout = self._timeout
        handle = (
            moderator.plan_handle(method_id)
            if moderator.compile_plans else None
        )

        @functools.wraps(target)
        def guarded(*args: Any, **kwargs: Any) -> Any:
            plan = handle.current() if handle is not None else None
            joinpoint = JoinPoint(
                method_id=method_id, component=component,
                args=args, kwargs=kwargs, caller=caller,
            )
            result = moderator.preactivation(
                method_id, joinpoint, timeout=timeout, plan=plan
            )
            if result is not AspectResult.RESUME:
                raise MethodAborted(
                    method_id,
                    concern=joinpoint.context.get("abort_concern"),
                )
            joinpoint.phase = Phase.INVOCATION
            try:
                if not joinpoint.invocation_skipped:
                    moderator.events.emit(
                        "invoke", method_id,
                        activation_id=joinpoint.activation_id,
                    )
                    joinpoint.result = target(*args, **kwargs)
            except BaseException as exc:
                joinpoint.exception = exc
                raise
            finally:
                moderator.postactivation(method_id, joinpoint, plan=plan)
            return joinpoint.result

        return guarded

    def call(self, method_id: str, *args: Any, caller: Any = None,
             timeout: Optional[float] = None, deadline: Any = None,
             **kwargs: Any) -> Any:
        """Invoke a participating method with per-call caller/timeout.

        Used by authentication-aware clients that must attach a principal
        to individual calls rather than to the proxy.

        ``deadline`` is an optional end-to-end budget — an absolute
        monotonic time, or any object with an ``expires_at`` attribute
        (e.g. :class:`repro.dist.resilience.Deadline`). It caps BLOCK
        parks at the remaining budget on top of (never instead of) the
        local ``timeout``, so a remote caller's budget bounds how long
        this activation may stay parked.
        """
        target = getattr(self._component, method_id)
        if not self.is_participating(method_id):
            # pass-through: no join point (or activation id) is allocated
            return target(*args, **kwargs)
        joinpoint = JoinPoint(
            method_id=method_id, component=self._component,
            args=args, kwargs=kwargs,
            caller=caller if caller is not None else self._caller,
        )
        effective_timeout = timeout if timeout is not None else self._timeout
        plan = (
            self._moderator.plan_handle(method_id).current()
            if self._moderator.compile_plans else None
        )
        result = self._moderator.preactivation(
            method_id, joinpoint, timeout=effective_timeout, plan=plan,
            deadline=deadline,
        )
        if result is not AspectResult.RESUME:
            raise MethodAborted(
                method_id, concern=joinpoint.context.get("abort_concern")
            )
        try:
            if not joinpoint.invocation_skipped:
                self._moderator.events.emit(
                    "invoke", method_id,
                    activation_id=joinpoint.activation_id,
                )
                joinpoint.result = target(*args, **kwargs)
        except BaseException as exc:
            joinpoint.exception = exc
            raise
        finally:
            self._moderator.postactivation(method_id, joinpoint, plan=plan)
        return joinpoint.result

    def __repr__(self) -> str:
        return (
            f"<ComponentProxy of {type(self._component).__name__} "
            f"participating={sorted(self._participating) if self._participating is not None else 'dynamic'}>"
        )


class GuardedMethod:
    """Descriptor form of the guarded-method pattern (paper Figure 10).

    For hand-written proxy classes in the paper's style::

        class TicketServerProxy(TicketServer):
            open = GuardedMethod("open")
            assign = GuardedMethod("assign")

            def __init__(self, moderator, ...):
                self.moderator = moderator

    The descriptor brackets ``super().method`` between pre- and
    post-activation using the instance's ``moderator`` attribute.
    """

    def __init__(self, method_id: str,
                 moderator_attr: str = "moderator") -> None:
        self.method_id = method_id
        self.moderator_attr = moderator_attr

    def __set_name__(self, owner: type, name: str) -> None:
        # Locate the undecorated implementation on the MRO above `owner`.
        self._owner = owner

    def __get__(self, instance: Any, owner: type) -> Callable[..., Any]:
        if instance is None:
            return self  # type: ignore[return-value]
        moderator: AspectModerator = getattr(instance, self.moderator_attr)
        target = getattr(super(self._owner, instance), self.method_id)
        handle = (
            moderator.plan_handle(self.method_id)
            if moderator.compile_plans else None
        )

        def guarded(*args: Any, **kwargs: Any) -> Any:
            plan = handle.current() if handle is not None else None
            joinpoint = JoinPoint(
                method_id=self.method_id, component=instance,
                args=args, kwargs=kwargs,
                caller=getattr(instance, "__caller__", None),
            )
            result = moderator.preactivation(self.method_id, joinpoint,
                                             plan=plan)
            if result is not AspectResult.RESUME:
                raise MethodAborted(
                    self.method_id,
                    concern=joinpoint.context.get("abort_concern"),
                )
            try:
                joinpoint.result = target(*args, **kwargs)
            except BaseException as exc:
                joinpoint.exception = exc
                raise
            finally:
                moderator.postactivation(self.method_id, joinpoint,
                                         plan=plan)
            return joinpoint.result

        functools.update_wrapper(guarded, target)
        return guarded
