"""The aspect moderator: coordinator of functional and aspectual behaviour.

Paper, Section 4.2 / 5.2: upon a message reception that involves a
participating method, the proxy delegates to the moderator, which

1. evaluates the *pre-activation* phase — calling ``precondition()`` of
   every required aspect in composition order; BLOCK parks the caller on
   the method's wait queue inside a re-evaluation loop (Figure 11's
   ``while (result == BLOCKED) wait()``), ABORT rejects the activation;
2. after the method executes, evaluates the *post-activation* phase —
   calling ``postaction()`` of the aspects in reverse order and notifying
   wait queues so blocked activations re-evaluate (Figure 11's
   ``notify()``).

Concurrency design
------------------

The paper synchronizes each phase on a *per-method* Java monitor. The
framework reproduces exactly that via **lock domains**
(:class:`~repro.concurrency.primitives.LockDomain`): every participating
method is assigned to a domain holding one lock and one condition queue
per method. Three regimes coexist:

* **striped (default)** — each method gets a private domain, so the
  precondition chains of unrelated methods (say ``open`` and ``assign``)
  evaluate concurrently. Within one method, rounds stay atomic: an
  activation observes and mutates aspect state atomically with respect
  to every other activation *of the same method*. Aspects whose state
  spans several methods must either carry their own lock
  (:class:`~repro.core.aspect.StatefulAspect` does) or opt into…
* **shared domains (opt-in)** — registering an aspect with a
  ``lock_domain`` (parameter or aspect attribute) places its method in
  that named domain. All methods of one domain moderate under a single
  lock, restoring the seed's moderator-wide monitor for exactly the
  group that needs it — e.g. paper-style sync aspects that mutate a
  shared counter in ``precondition()`` without any lock of their own.
* **lock-free fast path** — when every aspect in a method's chain
  declares ``never_blocks = True`` (timing, audit, caching, validation:
  aspects that may RESUME or ABORT but never BLOCK, and whose
  postactions never enable another method's blocked precondition), the
  moderator skips the condition machinery entirely: no domain lock is
  taken for either phase. Completions on the fast path still perform a
  wake when (and only when) some activation is parked anywhere on the
  moderator, so a mixed deployment cannot lose wakeups.

Post-activation uses a **two-phase wake**: postactions run under the
method's own domain lock, which is then *released* before any queue is
notified. Each target queue is notified under its own lock, so a
completion of ``open`` can wake waiters of ``assign`` across domains
without ever holding two domain locks at once — no lock-order cycles by
construction. A waiter cannot miss such a wake: it evaluates and parks
while continuously holding its own domain lock, which the notifier must
acquire, so the notification is always ordered after the park.

The functional method itself always runs *outside* every moderator lock
— only moderation is serialized, and only per domain.

Fix over the paper: the published listings mutate synchronization
counters inside ``precondition()`` but never undo them when a *later*
aspect in the chain blocks or aborts. The moderator closes that hole by
invoking ``on_abort()`` on already-RESUMEd aspects, in reverse order,
before waiting or aborting. A second repair: when a timeout expires
while an activation is parked, the chain is re-evaluated one final time
before :class:`ActivationTimeout` is raised, so a notification that
races the deadline is honoured rather than dropped.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.concurrency.primitives import LockDomain
from repro.obs.metrics import MetricsRegistry

from .aspect import Aspect
from .bank import AspectBank
from .errors import (
    ActivationTimeout,
    AspectFault,
    CompositionErrors,
    ContractViolation,
    MethodAborted,
    RegistrationError,
)
from .events import EventBus
from .health import FAIL_CLOSED, FAIL_OPEN, HealthTracker
from .joinpoint import JoinPoint
from .ordering import OrderingPolicy, registration_order
from .plan import ActivationPlan, PlanHandle, compile_plan
from .results import AspectResult, Phase

#: context key under which the RESUMEd chain is stashed between phases
CHAIN_KEY = "__moderation_chain__"

#: context key under which an activation's contract runner is stashed
#: between phases; must match ``repro.contracts.CONTRACT_KEY`` (the
#: literal is duplicated so the core never imports the contracts
#: package — contracts-off deployments pay no import, and no cycle)
CONTRACT_KEY = "__contract_runner__"

#: prefix of the private (per-method) lock-domain namespace; user-chosen
#: shared domain names never collide with it
_PRIVATE_DOMAIN_PREFIX = "~method:"


#: the moderation counters, in their historical declaration order
STAT_NAMES: Tuple[str, ...] = (
    "preactivations", "resumes", "blocks", "aborts", "waits", "wakeups",
    "postactivations", "notifications", "compensations", "fastpaths",
    "faults", "quarantines", "reinstatements", "degraded_skips",
    "plan_compiles", "contract_violations",
)


class ModerationStats:
    """Aggregate counters maintained by a moderator.

    Backed by a thread-striped :class:`~repro.obs.metrics.MetricsRegistry`
    rather than one global lock: :meth:`bump` touches only the calling
    thread's stripe, whose lock no other writer ever contends — so the
    lock-free ``never_blocks`` fast path no longer serializes every
    method's activations on a single cross-method lock (the last such
    point after PR 1 striped the moderation locks themselves).

    Counters remain readable as plain attributes (``stats.resumes``) and
    :meth:`as_dict` remains a *consistent* snapshot: the merge holds all
    stripe locks at once, so a multi-counter bump is never observed torn.
    """

    __slots__ = ("registry", "_block", "compile_seconds")

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = (
            registry if registry is not None else MetricsRegistry()
        )
        self._block = self.registry.counter_block(
            STAT_NAMES, prefix="repro_moderation_"
        )
        #: plan-compilation latency histogram (seconds). Recorded on the
        #: registry, *not* the event bus: compiled and interpreted runs
        #: must keep byte-identical event streams (the differential
        #: suite's contract), and only compiled runs compile.
        self.compile_seconds = self.registry.histogram(
            "repro_plan_compile_seconds",
            help="Activation-plan compilation latency in seconds",
        ).labels()

    def bump(self, *names: str, amount: int = 1) -> None:
        """Increment each named counter by ``amount``, as one atomic cut."""
        self._block.bump(*names, amount=amount)

    def __getattr__(self, name: str) -> int:
        if name in STAT_NAMES:
            return int(self._block.value(name))
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def as_dict(self) -> Dict[str, int]:
        """Consistent snapshot of every counter (all stripes, one cut)."""
        return self._block.as_dict()


class AspectModerator:
    """Evaluates and coordinates the aspects of participating methods.

    Mirrors the paper's ``AspectModerator`` class (Figure 12):
    ``registeraspect`` / ``preactivation`` / ``postactivation``, backed by
    the two-dimensional aspect bank.

    Args:
        bank: aspect registry; a fresh :class:`AspectBank` by default.
        ordering: composition-order policy applied to each activation.
        events: protocol event bus; a fresh :class:`EventBus` by default.
        default_timeout: optional bound, in seconds, on how long a
            BLOCKed activation may wait before :class:`ActivationTimeout`
            (``None`` reproduces the paper's unbounded wait).
        notify_scope: wakeup policy after post-activation — see below.
        fault_threshold: default number of aspect faults tolerated per
            (method, concern) cell before its quarantine policy (if any)
            kicks in; overridable per registration or per aspect.
        compile_plans: when True (the default), activations execute
            compiled :class:`~repro.core.plan.ActivationPlan` pipelines,
            cached under a composite revision key and recompiled only
            when a registration, ordering, lock-domain, quarantine or
            injector change invalidates them. ``False`` restores the
            paper's per-call interpreter — observably identical (the
            differential suite proves it), only slower; kept as the
            reference implementation.
    """

    def __init__(
        self,
        bank: Optional[AspectBank] = None,
        ordering: OrderingPolicy = registration_order,
        events: Optional[EventBus] = None,
        default_timeout: Optional[float] = None,
        notify_scope: str = "all",
        fault_threshold: int = 3,
        compile_plans: bool = True,
    ) -> None:
        if notify_scope not in ("all", "linked"):
            raise ValueError("notify_scope must be 'all' or 'linked'")
        self.bank = bank if bank is not None else AspectBank()
        self.events = events if events is not None else EventBus()
        #: epoch components of the composite plan-revision key; bumped
        #: under ``_lock`` by the property setters / mutators below.
        #: Bare reads are atomic ints — see :meth:`_composition_key`.
        self._domain_epoch = 0
        self._injector_epoch = 0
        self._ordering_epoch = 0
        self._contract_epoch = 0
        self._profile_epoch = 0
        #: installed clause profiler (``repro.obs.profile``), or ``None``
        #: — plans compile uninstrumented and the hot path pays nothing
        self._profiler = None
        #: compiled-plan cache: method_id -> ActivationPlan, plus the
        #: stable handles wrappers hold. Plain-dict reads are GIL-atomic;
        #: writes race benignly (equivalent plans, last one wins).
        self._plans: Dict[str, ActivationPlan] = {}
        self._plan_handles: Dict[str, PlanHandle] = {}
        self.compile_plans = compile_plans
        self.ordering = ordering
        self.default_timeout = default_timeout
        #: wakeup policy after post-activation: ``"all"`` notifies every
        #: method queue (the paper's conservative behaviour, absorbed by
        #: re-evaluation); ``"linked"`` notifies only methods sharing at
        #: least one aspect instance (or state holder, or lock domain)
        #: with the completed method — fewer spurious wakeups, same
        #: safety, measured in bench A-ABL.
        self.notify_scope = notify_scope
        self.stats = ModerationStats()
        #: per-(method, concern) fault accounting and quarantine state
        self.health = HealthTracker(default_threshold=fault_threshold)
        #: deterministic fault-injection hook (``repro.faults``); ``None``
        #: in production — the hot path pays one attribute read for it
        self.fault_injector = None
        #: contract registry (``repro.contracts``); ``None`` keeps every
        #: moderation path byte-for-byte the legacy one — the seams are
        #: single ``is not None`` checks, and compiled fast-path methods
        #: pay nothing at all (contract methods compile off fast_cells)
        self.contracts = None
        #: registry lock: guards the domain maps and the linkage cache,
        #: never held while moderating or notifying a foreign domain.
        self._lock = threading.RLock()
        self._domains: Dict[str, LockDomain] = {}
        #: explicit shared-domain assignments (method_id -> domain name);
        #: methods absent here use their private per-method domain
        self._method_domains: Dict[str, str] = {}
        self._links: Optional[Dict[str, set]] = None
        self._links_revision = -1
        #: number of activations currently inside the blocking slow path;
        #: fast-path completions consult it to decide whether a wake is
        #: needed at all (see :meth:`postactivation`)
        self._waiters = 0
        #: number of activations actually parked in ``Condition.wait``,
        #: and the wake epoch pairing with it: a completion bumps the
        #: epoch and reads the count atomically, a blocker re-checks the
        #: epoch atomically before parking — together they let
        #: :meth:`_wake` skip touching any domain lock when nothing is
        #: parked, without losing a wakeup
        self._parked = 0
        self._wake_epoch = 0
        self._waiter_guard = threading.Lock()
        #: activation_id -> (method_id, parked_since) for every waiter
        #: currently inside ``Condition.wait`` — the stall watchdog's
        #: window into the moderator (guarded by ``_waiter_guard``)
        self._parked_info: Dict[int, Tuple[str, float]] = {}
        #: attached continuation runtime
        #: (:class:`repro.core.continuation.ContinuationRuntime`), or
        #: ``None``. When attached, every site that notifies domain
        #: queues also routes the wake into the reactor's ready queue,
        #: so continuation-parked activations re-evaluate exactly when
        #: thread-parked ones would. One attribute read on wake paths;
        #: the moderation hot path itself never consults it.
        self._runtime = None

    # ------------------------------------------------------------------
    # revisioned collaborators (plan-key components)
    # ------------------------------------------------------------------
    @property
    def ordering(self) -> OrderingPolicy:
        """Composition-order policy; swapping it invalidates every plan."""
        return self._ordering

    @ordering.setter
    def ordering(self, policy: OrderingPolicy) -> None:
        self._ordering = policy
        # Unlocked bump: ordering swaps are control-plane operations; a
        # racing pair still moves the epoch past every compiled key.
        self._ordering_epoch += 1

    @property
    def fault_injector(self) -> Optional[Any]:
        """Installed fault injector (``repro.faults``), or ``None``.

        Assigning (what :meth:`FaultInjector.install` does) bumps the
        injector epoch: plans compiled without site hooks must not
        survive an injector arming, and vice versa.
        """
        return self._fault_injector

    @fault_injector.setter
    def fault_injector(self, injector: Optional[Any]) -> None:
        self._fault_injector = injector
        self._injector_epoch += 1

    @property
    def contracts(self) -> Optional[Any]:
        """Installed contract registry (``repro.contracts``), or ``None``.

        Assigning (what :meth:`ContractRegistry.install` does, and what
        the registry re-does on every :meth:`~ContractRegistry.declare`)
        bumps the contract epoch: plans compiled without check-point
        seams must not survive a contract arming, and vice versa.
        """
        return self._contracts

    @contracts.setter
    def contracts(self, registry: Optional[Any]) -> None:
        self._contracts = registry
        self._contract_epoch += 1

    @property
    def profiler(self) -> Optional[Any]:
        """Installed clause profiler (``repro.obs.profile``), or ``None``.

        Assigning (what :meth:`ClauseProfiler.install` does) bumps the
        profile epoch: plans compiled uninstrumented must not survive a
        profiler arming, and instrumented/optimized plans must not
        survive its removal.
        """
        return self._profiler

    @profiler.setter
    def profiler(self, profiler: Optional[Any]) -> None:
        self._profiler = profiler
        self._profile_epoch += 1

    def bump_profile_epoch(self) -> None:
        """Invalidate every plan against a refreshed clause profile.

        Called by :meth:`ClauseProfiler.refresh` after it folds live
        counters into a new decision snapshot — cached plans recompile
        (and re-optimize) on their next activation, through the same
        revision mechanism every other mutation family uses.
        """
        self._profile_epoch += 1

    # ------------------------------------------------------------------
    # plan compilation (interpreter -> compiled pipeline)
    # ------------------------------------------------------------------
    def _composition_key(self) -> Tuple[int, int, int, int, int, int, int]:
        """Composite revision key every compiled plan is cached under.

        One component per mutation family — bank registrations/ordering
        (``register``/``unregister``/``swap``/``set_order``), explicit
        lock-domain moves, quarantine transitions, injector arming,
        ordering-policy swaps, contract declarations/arming, and clause-
        profile refreshes — so each invalidates exactly by bumping its
        own counter. All seven are monotonic ints read without locks; a
        stale component only delays revalidation by one call.
        """
        return (
            self.bank.revision,
            self._domain_epoch,
            self.health.epoch,
            self._injector_epoch,
            self._ordering_epoch,
            self._contract_epoch,
            self._profile_epoch,
        )

    def plan_for(self, method_id: str) -> ActivationPlan:
        """The current compiled plan for ``method_id`` (cached).

        Revalidation is a dict probe plus an int-tuple compare; a plan
        is recompiled only when some component of the composition key
        moved. Usable regardless of :attr:`compile_plans` — compilation
        is pure, so introspection (``explain()``, diagrams, lint) works
        even on an interpreting moderator.
        """
        key = self._composition_key()
        plan = self._plans.get(method_id)
        if plan is not None and plan.key == key:
            return plan
        return self._compile_plan(method_id, key)

    def _compile_plan(self, method_id: str,
                      key: Tuple[int, ...]) -> ActivationPlan:
        """Compile and cache one method's plan under ``key``.

        The key is captured *before* the constituents are read: if a
        registration lands mid-compile, the stored plan's key no longer
        matches and the very next :meth:`plan_for` recompiles — a torn
        build can be executed for at most one round, the same staleness
        window the interpreter's unlocked bank/health reads always had.
        """
        started = time.monotonic()
        _revision, raw_pairs = self.bank.snapshot_for(method_id)
        policy = self._ordering
        resolve = getattr(policy, "compile", None)
        pairs = resolve(method_id, raw_pairs) if resolve is not None \
            else policy(method_id, raw_pairs)
        profiler = self._profiler
        profile_info = None
        if profiler is not None:
            # Profile feedback composes *after* the ordering policy: the
            # policy states intent, the profiler only permutes within
            # runs the aspects themselves declared commutative (and
            # elides declared-pure observers).
            pairs, profile_info = profiler.plan_pairs(method_id, pairs)
        registry = self._contracts
        plan = compile_plan(
            method_id, pairs, key, self._domain_for(method_id),
            self.health, self._fault_injector,
            getattr(policy, "__name__", type(policy).__name__),
            registry.contract_for(method_id)
            if registry is not None else None,
            profile=profile_info,
        )
        if profiler is not None:
            profiler.instrument(plan)
        plan.compile_seconds = time.monotonic() - started
        self._plans[method_id] = plan
        self.stats.bump("plan_compiles")
        self.stats.compile_seconds.observe(plan.compile_seconds)
        return plan

    def plan_handle(self, method_id: str) -> PlanHandle:
        """The stable :class:`PlanHandle` for ``method_id``.

        Proxies and woven wrappers cache this handle instead of a bare
        wrapper: the handle survives every recompile, so a cached
        wrapper picks up a swapped aspect on its very next call.
        """
        handle = self._plan_handles.get(method_id)
        if handle is None:
            with self._lock:
                handle = self._plan_handles.setdefault(
                    method_id, PlanHandle(self, method_id)
                )
        return handle

    def explain(self, method_id: Optional[str] = None) -> Any:
        """Compiled-contract report(s): one method's, or all methods'."""
        if method_id is not None:
            return self.plan_for(method_id).explain()
        return {
            method: self.plan_for(method).explain()
            for method in self.bank.methods()
        }

    # ------------------------------------------------------------------
    # runtime selection (threaded reference vs. continuation reactor)
    # ------------------------------------------------------------------
    def attach_runtime(self, runtime: Any) -> None:
        """Attach a continuation runtime; its parks join this moderator's.

        Called by :class:`repro.core.continuation.ContinuationRuntime`
        on construction. At most one runtime may be attached; threaded
        activations keep working unchanged alongside it (both park
        populations re-evaluate on every wake, and both appear in
        :meth:`parked_snapshot` / :meth:`queue_lengths`).
        """
        if self._runtime is not None and self._runtime is not runtime:
            raise RegistrationError(
                "a continuation runtime is already attached"
            )
        self._runtime = runtime

    def detach_runtime(self, runtime: Any) -> None:
        """Detach ``runtime`` (no-op when it is not the attached one)."""
        if self._runtime is runtime:
            self._runtime = None

    # ------------------------------------------------------------------
    # registration (paper Figure 9)
    # ------------------------------------------------------------------
    def register_aspect(self, method_id: str, concern: str, aspect: Aspect,
                        replace: bool = False,
                        lock_domain: Optional[str] = None,
                        fault_policy: Optional[str] = None,
                        fault_threshold: Optional[int] = None) -> None:
        """Store a first-class aspect object for future reference.

        ``lock_domain`` (or, when omitted, the aspect's own
        ``lock_domain`` attribute) places ``method_id`` into a named
        shared lock domain; methods of one domain moderate under a
        single lock, which is what paper-style aspects that mutate
        shared counters without their own lock require. Conflicting
        explicit domains for one method raise
        :class:`RegistrationError`.

        ``fault_policy`` / ``fault_threshold`` (falling back to the
        aspect's own attributes) declare how the cell degrades when the
        aspect keeps raising out of protocol phases: ``"fail_open"``
        skips it, ``"fail_closed"`` ABORTs activations, ``None`` (the
        default) propagates every fault without ever quarantining.
        Registration — including a ``replace=True`` swap — resets the
        cell's fault history.
        """
        domain_name = (
            lock_domain if lock_domain is not None
            else getattr(aspect, "lock_domain", None)
        )
        policy = (
            fault_policy if fault_policy is not None
            else getattr(aspect, "fault_policy", None)
        )
        threshold = (
            fault_threshold if fault_threshold is not None
            else getattr(aspect, "fault_threshold", None)
        )
        moved_from: Optional[LockDomain] = None
        with self._lock:
            if domain_name is not None:
                current = self._method_domains.get(method_id)
                if current is not None and current != domain_name:
                    raise RegistrationError(
                        f"{method_id!r} is already in lock domain "
                        f"{current!r}; cannot also join {domain_name!r}"
                    )
            self.bank.register(method_id, concern, aspect, replace=replace)
            self.health.set_policy(method_id, concern, policy, threshold)
            self._links = None
            if domain_name is not None and \
                    method_id not in self._method_domains:
                self._method_domains[method_id] = domain_name
                self._domain_epoch += 1
                moved_from = self._domains.get(
                    _PRIVATE_DOMAIN_PREFIX + method_id
                )
        if moved_from is not None:
            # Waiters parked in the old private domain re-evaluate and
            # re-park under the shared one.
            moved_from.notify_all(method_id)
            if self._runtime is not None:
                self._runtime.wake({method_id})
        self.events.emit("register_aspect", method_id, concern,
                         detail=aspect.describe())
        if domain_name is not None:
            self.events.emit("lock_domain", method_id, detail=domain_name)

    def unregister_aspect(self, method_id: str, concern: str) -> Aspect:
        """Remove an aspect; wakes blocked activations to re-evaluate."""
        aspect = self.bank.unregister(method_id, concern)
        self.health.drop(method_id, concern)
        with self._lock:
            self._links = None
        self.notify()
        return aspect

    def reinstate_aspect(self, method_id: str, concern: str) -> bool:
        """Manually lift a cell's quarantine (operator intervention).

        Clears the fault count so the aspect gets a fresh allowance of
        ``fault_threshold`` faults, emits a ``reinstate`` event, and
        wakes parked activations — a formerly fail-closed guard may now
        admit them. Returns whether the cell was actually quarantined.
        Swapping a repaired aspect in via ``register_aspect(...,
        replace=True)`` resets health implicitly and is the other
        recovery path.
        """
        was_quarantined = self.health.reinstate(method_id, concern)
        if was_quarantined:
            if self._profiler is not None:
                # Stale-profile hygiene: statistics gathered while the
                # cell was sick must not order the healed composition.
                self._profiler.reset_cell(method_id, concern)
            self.stats.bump("reinstatements")
            self.events.emit("reinstate", method_id, concern)
            self.notify()
        return was_quarantined

    def aspect_health(self) -> Dict[Tuple[str, str], Dict[str, Any]]:
        """Fault/quarantine records per (method, concern) with any faults."""
        return self.health.snapshot()

    def assign_lock_domain(self, lock_domain: Optional[str],
                           *method_ids: str) -> None:
        """Place ``method_ids`` into one shared lock domain.

        The explicit form of the ``lock_domain`` registration parameter:
        existing assignments are overwritten, and ``lock_domain=None``
        returns the methods to their private per-method domains (the
        striped default). Waiters parked under a previous domain are
        woken so they re-evaluate and re-park under the new one.
        """
        moved: List[Tuple[LockDomain, str]] = []
        with self._lock:
            for method_id in method_ids:
                old_name = self._method_domains.get(
                    method_id, _PRIVATE_DOMAIN_PREFIX + method_id
                )
                if lock_domain is None:
                    self._method_domains.pop(method_id, None)
                else:
                    self._method_domains[method_id] = lock_domain
                old = self._domains.get(old_name)
                if old is not None:
                    moved.append((old, method_id))
            self._domain_epoch += 1
            self._links = None
        for domain, method_id in moved:
            domain.notify_all(method_id)
        if moved and self._runtime is not None:
            self._runtime.wake({method_id for _, method_id in moved})
        for method_id in method_ids:
            self.events.emit("lock_domain", method_id,
                             detail=lock_domain or "")

    def lock_domain_of(self, method_id: str) -> str:
        """Name of the lock domain currently assigned to ``method_id``."""
        with self._lock:
            return self._method_domains.get(
                method_id, _PRIVATE_DOMAIN_PREFIX + method_id
            )

    @property
    def registration_version(self) -> int:
        """Monotonic epoch of the aspect composition.

        Proxies key their guarded-wrapper caches on this value. It is
        the sum of every plan-key component, so anything that
        invalidates a compiled plan — (un)registration (including
        direct bank mutation), lock-domain moves, quarantine
        transitions, injector arming, ordering swaps, contract
        declarations — also invalidates
        cached wrappers: a wrapper can never outlive the plan it was
        built against.
        """
        return (
            self.bank.revision + self._domain_epoch + self.health.epoch
            + self._injector_epoch + self._ordering_epoch
            + self._contract_epoch + self._profile_epoch
        )

    def participates(self, method_id: str) -> bool:
        """Whether calls to ``method_id`` must go through moderation.

        True when any aspect is registered for the method, or when an
        installed contract registry declares a contract on it — a
        contracted method with an empty aspect chain still needs the
        pre-/post-activation bracket for its entry and post-body check
        points.

        O(1) and lock-free: this probe runs on *every* attribute access
        of a dynamic proxy, participating or not, so it must not build a
        concern list (the previous implementation) or contend the bank
        lock just to answer yes/no.
        """
        if self.bank.has_method(method_id):
            return True
        contracts = self._contracts
        return (contracts is not None
                and contracts.contract_for(method_id) is not None)

    # ------------------------------------------------------------------
    # pre-activation (paper Figure 11 / 17)
    # ------------------------------------------------------------------
    def preactivation(
        self,
        method_id: str,
        joinpoint: Optional[JoinPoint] = None,
        timeout: Optional[float] = None,
        plan: Optional[ActivationPlan] = None,
        deadline: Any = None,
    ) -> AspectResult:
        """Evaluate the pre-activation phase for one activation.

        Returns ``RESUME`` when every aspect's precondition holds (the
        proxy must then invoke the method and later call
        :meth:`postactivation` exactly once with the same join point),
        or ``ABORT`` when some aspect rejected the activation. ``BLOCK``
        is never returned: blocking is handled internally by waiting on
        the method's queue and re-evaluating, as in the paper.

        Raises :class:`ActivationTimeout` when a timeout (argument or
        moderator default) elapses while blocked — but only after one
        final re-evaluation of the chain, so a notification racing the
        deadline admits the activation instead of being dropped.

        ``plan`` lets callers that already hold a validated
        :class:`~repro.core.plan.ActivationPlan` (proxies and woven
        wrappers, via their :class:`~repro.core.plan.PlanHandle`) skip
        the cache probe; without it — and with :attr:`compile_plans`
        on — the current plan is fetched here. With ``compile_plans``
        off the paper's per-call interpreter runs instead.

        ``deadline`` is an optional end-to-end budget: an absolute
        monotonic time, or any object exposing ``expires_at`` (e.g.
        :class:`repro.dist.resilience.Deadline`). When it is nearer
        than the timeout-derived bound, BLOCK parks stop at the budget
        instead — a remote caller that has already given up never keeps
        an activation parked here.
        """
        joinpoint = joinpoint or JoinPoint(method_id=method_id)
        joinpoint.phase = Phase.PRE_ACTIVATION
        effective_timeout = (
            timeout if timeout is not None else self.default_timeout
        )
        expires_at = (
            time.monotonic() + effective_timeout
            if effective_timeout is not None else None
        )
        budget = getattr(deadline, "expires_at", deadline)
        if budget is not None and (expires_at is None or budget < expires_at):
            expires_at = budget
            effective_timeout = max(0.0, budget - time.monotonic())
        deadline = expires_at
        self.events.emit("preactivation", method_id,
                         activation_id=joinpoint.activation_id)
        self.stats.bump("preactivations")

        if self._contracts is not None:
            # Entry check point: require clauses + entry invariants run
            # before any aspect — a failure blames the *caller* (the
            # activation was invalid on arrival; nothing to compensate).
            # Methods without a declared contract stash no runner and
            # pay nothing further.
            try:
                self._contracts.begin(method_id, joinpoint)
            except ContractViolation as violation:
                self._note_violation(violation, joinpoint)
                raise

        if self.compile_plans:
            if plan is None:
                plan = self.plan_for(method_id)
            if plan.never_blocks:
                # Lock-free fast path, compiled: the whole chain promised
                # never to BLOCK at compile time, and the plan is only
                # valid while that composition stands.
                outcome = self._run_round(method_id, joinpoint, plan)
                if outcome is not AspectResult.BLOCK:
                    if outcome is AspectResult.RESUME:
                        self.stats.bump("fastpaths")
                    return outcome
                # An aspect broke its never_blocks promise; fall through
                # to the locked path and moderate properly.
            return self._moderated_preactivation(
                method_id, joinpoint, deadline, effective_timeout
            )

        pairs = self.ordering(method_id, self.bank.aspects_for(method_id))
        if all(aspect.never_blocks for _, aspect in pairs):
            # Lock-free fast path: the chain has promised never to
            # BLOCK, so no wait queue — hence no lock — is needed.
            outcome = self._run_round(method_id, joinpoint)
            if outcome is not AspectResult.BLOCK:
                if outcome is AspectResult.RESUME:
                    self.stats.bump("fastpaths")
                return outcome
            # An aspect broke its never_blocks promise; fall through to
            # the locked path and moderate properly.
        return self._moderated_preactivation(
            method_id, joinpoint, deadline, effective_timeout
        )

    def _moderated_preactivation(
        self,
        method_id: str,
        joinpoint: JoinPoint,
        deadline: Optional[float],
        effective_timeout: Optional[float],
    ) -> AspectResult:
        """Figure 11's blocking evaluation loop, under the method's domain.

        Registers in the moderator-wide waiter count for the whole
        attempt (before the first evaluation round), which is what lets
        fast-path completions skip the wake when nothing can be parked:
        any waiter that could miss their state change is registered
        before it evaluates, so the completion either happens before the
        evaluation (and is seen) or after registration (and triggers the
        wake).
        """
        with self._waiter_guard:
            self._waiters += 1
        try:
            compiled = self.compile_plans
            timed_out = False
            while True:
                if compiled:
                    plan: Optional[ActivationPlan] = \
                        self.plan_for(method_id)
                    queue = plan.queue
                else:
                    plan = None
                    queue = self._queue_for(method_id)
                with queue:
                    # Same object a compiled plan resolves (LockDomain
                    # caches conditions per key), so one check covers
                    # both modes.
                    if self._queue_for(method_id) is not queue:
                        continue  # method changed domains; re-acquire
                    while True:
                        # Bare read is safe: a stale value only makes the
                        # pre-park re-check conservatively re-evaluate.
                        epoch = self._wake_epoch
                        if compiled:
                            # Revalidate per round, exactly as the
                            # interpreter re-reads the bank per round: a
                            # dict probe plus an int-tuple compare when
                            # nothing changed.
                            plan = self.plan_for(method_id)
                        outcome = self._run_round(method_id, joinpoint,
                                                  plan)
                        if outcome is not AspectResult.BLOCK:
                            return outcome
                        if timed_out:
                            self.events.emit(
                                "timeout", method_id,
                                detail=f"{effective_timeout}s",
                                activation_id=joinpoint.activation_id,
                            )
                            raise ActivationTimeout(
                                method_id, effective_timeout
                            )
                        with self._waiter_guard:
                            raced = self._wake_epoch != epoch
                            if not raced:
                                self._parked += 1
                                self._parked_info[
                                    joinpoint.activation_id
                                ] = (method_id, time.monotonic())
                        if raced:
                            # A completion landed while this round was
                            # evaluating (its wake may have skipped the
                            # not-yet-parked queue): re-evaluate against
                            # the post-postaction state instead of
                            # parking on a notification already sent.
                            continue
                        self.stats.bump("waits")
                        try:
                            if deadline is None:
                                queue.wait()
                            else:
                                remaining = deadline - time.monotonic()
                                if remaining <= 0 or not queue.wait(
                                    remaining
                                ):
                                    # Deadline passed while parked; loop
                                    # for one final round before giving
                                    # up — a notify may have raced the
                                    # timeout.
                                    timed_out = True
                                    continue
                        finally:
                            with self._waiter_guard:
                                self._parked -= 1
                                parked_info = self._parked_info.pop(
                                    joinpoint.activation_id, None
                                )
                        self.stats.bump("wakeups")
                        self.events.emit(
                            "unblocked", method_id,
                            activation_id=joinpoint.activation_id,
                            # park duration, for blocked-span accounting
                            duration=(
                                time.monotonic() - parked_info[1]
                                if parked_info is not None else 0.0
                            ),
                        )
                        if self._queue_for(method_id) is not queue:
                            break  # re-park under the new domain
        finally:
            with self._waiter_guard:
                self._waiters -= 1

    def _run_round(self, method_id: str, joinpoint: JoinPoint,
                   plan: Optional[ActivationPlan] = None) -> AspectResult:
        """One evaluation round, including compensation and bookkeeping.

        RESUME records the chain on the join point; ABORT and BLOCK
        compensate the RESUMEd prefix in reverse order first (aspects
        distinguish the transient ``block`` round from a final ``abort``
        via the compensation-reason context key). Compensation faults do
        not stop the unwind: every remaining aspect still compensates,
        and the collected faults raise afterwards (aggregated as
        :class:`CompositionErrors` when there are several).

        With a ``plan``, the round runs the compiled executor
        (:meth:`_evaluate_plan`); without one it interprets the bank
        directly (:meth:`_evaluate_chain`). Everything downstream —
        stash, stats, events, compensation — is shared, which is half of
        what keeps the two paths observably identical.
        """
        if plan is not None:
            outcome, resumed, failed_concern = self._evaluate_plan(
                plan, joinpoint
            )
        else:
            outcome, resumed, failed_concern = self._evaluate_chain(
                method_id, joinpoint
            )
        if outcome is AspectResult.RESUME:
            joinpoint.context[CHAIN_KEY] = resumed
            self.stats.bump("resumes")
            return outcome

        joinpoint.context["__compensation__"] = outcome.value
        faults = self._compensate(resumed, joinpoint)
        joinpoint.context.pop("__compensation__", None)

        if outcome is AspectResult.ABORT:
            self.stats.bump("aborts")
            joinpoint.phase = Phase.ABORTED
            joinpoint.context["abort_concern"] = failed_concern
            self.events.emit(
                "abort", method_id, failed_concern or "",
                activation_id=joinpoint.activation_id,
            )
            self._raise_faults(faults)
            return outcome

        self.stats.bump("blocks")
        self.events.emit(
            "blocked", method_id, failed_concern or "",
            activation_id=joinpoint.activation_id,
        )
        self._raise_faults(faults)
        return outcome

    def _evaluate_chain(
        self, method_id: str, joinpoint: JoinPoint
    ) -> Tuple[AspectResult, List[Tuple[str, Aspect]], Optional[str]]:
        """Run one round of precondition evaluation.

        Returns ``(outcome, resumed_pairs, failed_concern)`` where
        ``resumed_pairs`` are the aspects that voted RESUME before the
        chain stopped (all of them when outcome is RESUME).

        A *raising* precondition is a contract violation, not a vote:
        the RESUMEd prefix is compensated (so no reservation leaks) and
        the error propagates wrapped in :class:`AspectFault`. Quarantined
        cells are handled before their aspect runs — ``fail_open`` skips
        the aspect, ``fail_closed`` turns the round into an ABORT
        attributed to the degraded concern.
        """
        pairs = self.ordering(method_id, self.bank.aspects_for(method_id))
        resumed: List[Tuple[str, Aspect]] = []
        quarantine_active = self.health.active
        injector = self.fault_injector
        runner = (
            joinpoint.context.get(CONTRACT_KEY)
            if self._contracts is not None else None
        )
        if runner is not None:
            # Contract check points anchor to the round that finally
            # RESUMEs: parked rounds legitimately observe other
            # activations mutate shared state, so ``old`` re-captures
            # here, and per-concern interference is judged within-round.
            runner.start_round(joinpoint)
        # Per-aspect timing is measured only when someone is listening —
        # the same gate that keeps event construction off the hot path.
        timed = self.events.has_listeners
        for concern, aspect in pairs:
            if quarantine_active:
                policy = self.health.quarantine_policy(method_id, concern)
                if policy == FAIL_OPEN:
                    self.stats.bump("degraded_skips")
                    self.events.emit(
                        "degraded_skip", method_id, concern,
                        activation_id=joinpoint.activation_id,
                    )
                    continue
                if policy == FAIL_CLOSED:
                    return AspectResult.ABORT, resumed, concern
            began = time.monotonic() if timed else 0.0
            try:
                if injector is not None and injector.fire(
                        "precondition", method_id, concern):
                    continue  # injected no-op crash: aspect never ran
                result = aspect.evaluate_precondition(joinpoint)
            except Exception as exc:  # noqa: BLE001 - contract violation
                fault = AspectFault(method_id, concern, "precondition", exc)
                self._note_fault(method_id, concern, "precondition", exc,
                                 joinpoint)
                joinpoint.context["__compensation__"] = "fault"
                comp_faults = self._compensate(resumed, joinpoint)
                joinpoint.context.pop("__compensation__", None)
                self._raise_faults([fault, *comp_faults])
            self.events.emit(
                "precondition", method_id, concern, detail=result.value,
                activation_id=joinpoint.activation_id,
                duration=time.monotonic() - began if timed else 0.0,
            )
            if result is AspectResult.RESUME:
                resumed.append((concern, aspect))
                if runner is not None:
                    runner.checkpoint("precondition", concern, joinpoint)
                continue
            return result, resumed, concern
        return AspectResult.RESUME, resumed, None

    def _evaluate_plan(
        self, plan: ActivationPlan, joinpoint: JoinPoint
    ) -> Tuple[AspectResult, List[Tuple[str, Aspect]], Optional[str]]:
        """Compiled counterpart of :meth:`_evaluate_chain`.

        Two executors live here. The *fast* one runs when
        ``plan.fast_cells`` holds (no quarantined cell, no injector
        armed): each round is a bare walk over pre-bound callables, and
        a full RESUME returns ``plan.pairs`` itself — zero allocations,
        and an identity token post-activation recognizes to take its own
        compiled unwind. A partial prefix is a slice of ``plan.pairs``,
        not a rebuilt list of freshly looked-up aspects.

        The *generic* one handles degraded cells and armed injectors by
        mirroring the interpreter decision-for-decision — live
        quarantine reads, per-site injector visits (pre-bound as
        ``cell.fire_pre``, still visit-counted every call so chaos-test
        occurrence coordinates are untouched), skipped aspects excluded
        from the RESUMEd chain. The differential suite drives both
        executors against the interpreter across the whole fault space.
        """
        method_id = plan.method_id
        emit = self.events.emit
        activation_id = joinpoint.activation_id
        # Timing gates on listeners, exactly like event construction:
        # with nobody subscribed the fast executor below stays a bare
        # walk over pre-bound callables — no clock reads, no floats.
        timed = self.events.has_listeners
        if plan.fast_cells:
            index = 0
            for cell in plan.cells:
                began = time.monotonic() if timed else 0.0
                try:
                    result = cell.evaluate(joinpoint)
                except Exception as exc:  # noqa: BLE001 - contract violation
                    fault = AspectFault(
                        method_id, cell.concern, "precondition", exc
                    )
                    self._note_fault(method_id, cell.concern,
                                     "precondition", exc, joinpoint)
                    joinpoint.context["__compensation__"] = "fault"
                    comp_faults = self._compensate(
                        list(plan.pairs[:index]), joinpoint
                    )
                    joinpoint.context.pop("__compensation__", None)
                    self._raise_faults([fault, *comp_faults])
                emit(
                    "precondition", method_id, cell.concern,
                    detail=result.value, activation_id=activation_id,
                    duration=time.monotonic() - began if timed else 0.0,
                )
                if result is AspectResult.RESUME:
                    index += 1
                    continue
                return result, list(plan.pairs[:index]), cell.concern
            return AspectResult.RESUME, plan.pairs, None

        resumed: List[Tuple[str, Aspect]] = []
        quarantine_active = self.health.active
        runner = (
            joinpoint.context.get(CONTRACT_KEY)
            if self._contracts is not None else None
        )
        if runner is not None:
            # Same round anchor as the interpreter above — placement is
            # decision-for-decision identical, which is what keeps
            # contract verdicts equal compiled-vs-interpreted (the
            # differential suite holds them so).
            runner.start_round(joinpoint)
        for cell in plan.cells:
            concern = cell.concern
            if quarantine_active:
                # Live read, not the compiled ``cell.degraded`` snapshot:
                # a flip mid-round must act on later cells of this very
                # round, exactly as the interpreter's would.
                policy = self.health.quarantine_policy(method_id, concern)
                if policy == FAIL_OPEN:
                    self.stats.bump("degraded_skips")
                    emit(
                        "degraded_skip", method_id, concern,
                        activation_id=activation_id,
                    )
                    continue
                if policy == FAIL_CLOSED:
                    return AspectResult.ABORT, resumed, concern
            began = time.monotonic() if timed else 0.0
            try:
                if cell.fire_pre is not None and cell.fire_pre():
                    continue  # injected no-op crash: aspect never ran
                result = cell.evaluate(joinpoint)
            except Exception as exc:  # noqa: BLE001 - contract violation
                fault = AspectFault(method_id, concern, "precondition", exc)
                self._note_fault(method_id, concern, "precondition", exc,
                                 joinpoint)
                joinpoint.context["__compensation__"] = "fault"
                comp_faults = self._compensate(resumed, joinpoint)
                joinpoint.context.pop("__compensation__", None)
                self._raise_faults([fault, *comp_faults])
            emit(
                "precondition", method_id, concern, detail=result.value,
                activation_id=activation_id,
                duration=time.monotonic() - began if timed else 0.0,
            )
            if result is AspectResult.RESUME:
                resumed.append(cell.pair)
                if runner is not None:
                    runner.checkpoint("precondition", concern, joinpoint)
                continue
            return result, resumed, concern
        return AspectResult.RESUME, resumed, None

    def _compensate(self, resumed: List[Tuple[str, Aspect]],
                    joinpoint: JoinPoint) -> List[AspectFault]:
        """Unwind a RESUMEd prefix; never stops at a raising aspect.

        Returns the faults encountered so callers can surface them once
        the whole prefix has been compensated — a raising ``on_abort``
        must not abandon the compensations still owed to earlier aspects.
        """
        faults: List[AspectFault] = []
        injector = self.fault_injector
        for concern, aspect in reversed(resumed):
            try:
                if injector is not None and injector.fire(
                        "on_abort", joinpoint.method_id, concern):
                    continue
                aspect.on_abort(joinpoint)
            except Exception as exc:  # noqa: BLE001 - keep unwinding
                self._note_fault(joinpoint.method_id, concern, "on_abort",
                                 exc, joinpoint)
                faults.append(AspectFault(
                    joinpoint.method_id, concern, "on_abort", exc,
                ))
                continue
            self.stats.bump("compensations")
            self.events.emit(
                "compensate", joinpoint.method_id, concern,
                activation_id=joinpoint.activation_id,
            )
        return faults

    def _note_fault(self, method_id: str, concern: str, phase: str,
                    exc: BaseException, joinpoint: JoinPoint,
                    blame: Optional[str] = None) -> None:
        """Account one aspect fault; flip the cell to quarantined at N."""
        self.stats.bump("faults")
        self.events.emit(
            "aspect_fault", method_id, concern,
            detail=f"{phase}: {type(exc).__name__}",
            activation_id=joinpoint.activation_id,
        )
        if self.health.record_fault(method_id, concern, phase, exc,
                                    activation_id=joinpoint.activation_id,
                                    blame=blame):
            self.stats.bump("quarantines")
            self.events.emit(
                "quarantine", method_id, concern,
                detail=self.health.quarantine_policy(method_id, concern)
                or "",
            )

    def _note_violation(self, violation: ContractViolation,
                        joinpoint: JoinPoint) -> None:
        """Account one contract verdict; feed aspect blame to quarantine.

        Caller and component blame only count and surface (the violation
        itself propagates to the caller); ``aspect:<concern>`` blame is
        additionally an aspect *fault* of the blamed cell, so a
        repeatedly interfering aspect degrades under its registered
        policy exactly like a raising one — observers ``fail_open``,
        guards ``fail_closed``.
        """
        self.stats.bump("contract_violations")
        concern = violation.blamed_concern
        self.events.emit(
            "contract_violation", violation.method_id, concern or "",
            detail=f"{violation.kind}:{violation.clause}:{violation.blame}",
            activation_id=joinpoint.activation_id,
        )
        if concern is not None:
            self._note_fault(violation.method_id, concern, "contract",
                             violation, joinpoint, blame=violation.blame)

    def _finish_contract(self, runner: Any,
                         joinpoint: JoinPoint) -> None:
        """Close an activation's contract; raise its verdict (if any)."""
        joinpoint.context.pop(CONTRACT_KEY, None)
        violation = runner.finish()
        if violation is not None:
            self._note_violation(violation, joinpoint)
            raise violation

    @staticmethod
    def _raise_faults(faults: List[AspectFault]) -> None:
        """Raise collected faults: one directly, several as a group."""
        if not faults:
            return
        if len(faults) == 1:
            raise faults[0]
        raise CompositionErrors(faults)

    # ------------------------------------------------------------------
    # post-activation (paper Figure 11 / 18)
    # ------------------------------------------------------------------
    def postactivation(self, method_id: str,
                       joinpoint: Optional[JoinPoint] = None,
                       plan: Optional[ActivationPlan] = None) -> None:
        """Evaluate the post-activation phase for a RESUMEd activation.

        Runs ``postaction()`` of the activation's aspects in *reverse*
        composition order (Section 5.3: synchronization unwinds before
        authentication) under the method's domain lock, then — in a
        second phase, with no domain lock held — notifies wait queues so
        blocked activations re-evaluate their preconditions.

        Chains consisting solely of ``never_blocks`` aspects skip the
        lock, and skip the wake entirely unless some activation is
        parked on the moderator.

        Fault containment: a raising postaction does not stop the
        reverse unwind — the remaining postactions still run, the wake
        phase *always* happens (parked waiters must re-evaluate, never
        wedge behind a faulty aspect), and only then do the collected
        faults propagate (:class:`AspectFault`, aggregated as
        :class:`CompositionErrors` when several raised).
        """
        joinpoint = joinpoint or JoinPoint(method_id=method_id)
        joinpoint.phase = Phase.POST_ACTIVATION
        self.events.emit("postactivation", method_id,
                         activation_id=joinpoint.activation_id)

        runner = (
            joinpoint.context.get(CONTRACT_KEY)
            if self._contracts is not None else None
        )
        if runner is not None:
            # Post-body check point, before any postaction runs: ensure
            # and invariant clauses are judged against the body's own
            # effect; a clause a *postaction* later breaks is blamed on
            # that postaction's concern (per-postaction check points in
            # :meth:`_run_postactions`).
            runner.post_body(joinpoint)

        chain = joinpoint.context.pop(CHAIN_KEY, None)
        if self.compile_plans:
            if plan is None or plan.key != self._composition_key():
                # No plan handed in, or the composition changed while the
                # method body ran: fetch the current plan. A recorded
                # chain from the superseded plan then fails the identity
                # check below and unwinds through the interpreted path,
                # which reads injector and health state live — exactly
                # what the interpreter would do with that chain.
                plan = self.plan_for(method_id)
            if chain is None:
                # No recorded chain: unwind what the current composition
                # says, which is exactly what re-reading the bank would
                # yield (the plan was just validated against it).
                chain = plan.pairs
            if chain is plan.pairs and plan.fast_cells:
                # The pre-activation fast executor stashed the plan's own
                # pairs tuple — a full-chain RESUME under a composition
                # that has not changed since (identity implies the plan,
                # hence the key, is the same one). Unwind through the
                # pre-bound cells; no injector is armed, no cell is
                # degraded, or fast_cells would be off.
                self._compiled_postactivation(plan, joinpoint)
                return
            # Partial chain (stale stash, degraded cells, armed
            # injector): interpret the recorded chain exactly as the
            # reference path below does.
        elif chain is None:
            # Post-activation without a recorded chain: fall back to the
            # current bank contents (the paper's behaviour, which always
            # re-reads the array).
            chain = self.ordering(method_id, self.bank.aspects_for(method_id))
        chain = list(chain)

        if all(aspect.never_blocks for _, aspect in chain):
            self.stats.bump("postactivations")
            try:
                faults = self._run_postactions(method_id, chain, joinpoint)
            finally:
                if self._waiters:
                    # Someone is parked somewhere: wake conservatively, a
                    # spurious wakeup only costs a re-evaluation.
                    self._wake(method_id, joinpoint)
                else:
                    # Wake elided (nothing parked) — but the protocol's
                    # notify arrow still concluded this activation, so
                    # surface it to observers (span recorders close the
                    # activation on it). Observer-only: no stats bump,
                    # counters must not depend on who is subscribed, and
                    # with no listeners emit() is a single attribute
                    # check so the fast path stays allocation-free.
                    self.events.emit(
                        "notify", method_id, detail="elided",
                        activation_id=joinpoint.activation_id,
                    )
            self._raise_faults(faults)
            if runner is not None:
                self._finish_contract(runner, joinpoint)
            return

        queue = self._queue_for(method_id)
        try:
            with queue:
                self.stats.bump("postactivations")
                faults = self._run_postactions(method_id, chain, joinpoint)
        finally:
            # Phase two: wake target queues without holding the method's
            # domain lock, so cross-domain notification cannot deadlock.
            # Runs unconditionally — even if containment itself failed —
            # so a faulty aspect can never strand a parked waiter.
            self._wake(method_id, joinpoint)
        self._raise_faults(faults)
        if runner is not None:
            self._finish_contract(runner, joinpoint)

    def _compiled_postactivation(self, plan: ActivationPlan,
                                 joinpoint: JoinPoint) -> None:
        """Unwind a full-chain RESUME through its compiled plan.

        Same structure as the interpreted body of :meth:`postactivation`
        — never_blocks chains skip the lock and elide the wake when
        nothing is parked; locked chains wake unconditionally in phase
        two — but the unwind itself dispatches through the pre-bound
        ``cell.postaction`` callables.
        """
        method_id = plan.method_id
        if plan.never_blocks:
            self.stats.bump("postactivations")
            try:
                faults = self._run_plan_postactions(plan, joinpoint)
            finally:
                if self._waiters:
                    # Someone is parked somewhere: wake conservatively, a
                    # spurious wakeup only costs a re-evaluation.
                    self._wake(method_id, joinpoint)
                else:
                    # Elided wake: observer-only notify arrow, exactly
                    # as the interpreted never_blocks unwind emits it —
                    # the differential suite holds the two streams equal.
                    self.events.emit(
                        "notify", method_id, detail="elided",
                        activation_id=joinpoint.activation_id,
                    )
            self._raise_faults(faults)
            return

        queue = plan.queue
        try:
            with queue:
                self.stats.bump("postactivations")
                faults = self._run_plan_postactions(plan, joinpoint)
        finally:
            # Phase two: wake without holding the domain lock — see
            # :meth:`postactivation`; runs even if containment failed.
            self._wake(method_id, joinpoint)
        self._raise_faults(faults)

    def _run_plan_postactions(self, plan: ActivationPlan,
                              joinpoint: JoinPoint) -> List[AspectFault]:
        """Compiled reverse unwind; only valid when ``plan.fast_cells``.

        No injector sites are consulted — the plan could not have
        ``fast_cells`` with an injector armed, and an injector installed
        since invalidated the plan before this activation fetched it.
        """
        faults: List[AspectFault] = []
        method_id = plan.method_id
        emit = self.events.emit
        activation_id = joinpoint.activation_id
        timed = self.events.has_listeners
        for cell in reversed(plan.cells):
            began = time.monotonic() if timed else 0.0
            try:
                cell.postaction(joinpoint)
            except Exception as exc:  # noqa: BLE001 - keep unwinding
                self._note_fault(method_id, cell.concern, "postaction",
                                 exc, joinpoint)
                faults.append(AspectFault(
                    method_id, cell.concern, "postaction", exc,
                ))
                continue
            emit(
                "postaction", method_id, cell.concern,
                activation_id=activation_id,
                duration=time.monotonic() - began if timed else 0.0,
            )
        return faults

    def _run_postactions(self, method_id: str,
                         chain: List[Tuple[str, Aspect]],
                         joinpoint: JoinPoint) -> List[AspectFault]:
        """Reverse unwind; continues past raising aspects (faults returned)."""
        faults: List[AspectFault] = []
        injector = self.fault_injector
        runner = (
            joinpoint.context.get(CONTRACT_KEY)
            if self._contracts is not None else None
        )
        timed = self.events.has_listeners
        for concern, aspect in reversed(chain):
            began = time.monotonic() if timed else 0.0
            try:
                if injector is not None and injector.fire(
                        "postaction", method_id, concern):
                    continue
                aspect.postaction(joinpoint)
            except Exception as exc:  # noqa: BLE001 - keep unwinding
                self._note_fault(method_id, concern, "postaction", exc,
                                 joinpoint)
                faults.append(AspectFault(
                    method_id, concern, "postaction", exc,
                ))
                continue
            self.events.emit(
                "postaction", method_id, concern,
                activation_id=joinpoint.activation_id,
                duration=time.monotonic() - began if timed else 0.0,
            )
            if runner is not None:
                # Re-verify the clauses that held at post-body: one that
                # just broke is blamed on this concern's postaction.
                runner.checkpoint("postaction", concern, joinpoint)
        return faults

    # ------------------------------------------------------------------
    # whole-activation convenience
    # ------------------------------------------------------------------
    @contextmanager
    def activation(
        self,
        method_id: str,
        joinpoint: Optional[JoinPoint] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[JoinPoint]:
        """Context manager bracketing a participating-method body.

        Raises :class:`MethodAborted` when pre-activation aborts. When the
        body raises, the exception is recorded on the join point and
        post-activation still runs, so aspects can compensate (a sync
        aspect rolls its counters back instead of committing them).

        Example::

            with moderator.activation("open", jp):
                server.open(ticket)
        """
        joinpoint = joinpoint or JoinPoint(method_id=method_id)
        result = self.preactivation(method_id, joinpoint, timeout=timeout)
        if result is AspectResult.ABORT:
            raise MethodAborted(
                method_id, concern=joinpoint.context.get("abort_concern")
            )
        joinpoint.phase = Phase.INVOCATION
        try:
            yield joinpoint
        except BaseException as exc:
            joinpoint.exception = exc
            raise
        finally:
            self.postactivation(method_id, joinpoint)

    def moderate_call(self, method_id: str, func: Any, *args: Any,
                      component: Any = None, caller: Any = None,
                      timeout: Optional[float] = None, **kwargs: Any) -> Any:
        """Run ``func(*args, **kwargs)`` as a fully moderated activation."""
        joinpoint = JoinPoint(
            method_id=method_id, component=component,
            args=args, kwargs=kwargs, caller=caller,
        )
        with self.activation(method_id, joinpoint, timeout=timeout):
            if not joinpoint.invocation_skipped:
                self.events.emit("invoke", method_id,
                                 activation_id=joinpoint.activation_id)
                joinpoint.result = func(*args, **kwargs)
        return joinpoint.result

    # ------------------------------------------------------------------
    # lock-domain / wait-queue plumbing
    # ------------------------------------------------------------------
    def _domain_for(self, method_id: str) -> LockDomain:
        """The lock domain currently owning ``method_id``."""
        with self._lock:
            name = self._method_domains.get(
                method_id, _PRIVATE_DOMAIN_PREFIX + method_id
            )
            domain = self._domains.get(name)
            if domain is None:
                domain = LockDomain(name)
                self._domains[name] = domain
            return domain

    def _queue_for(self, method_id: str) -> threading.Condition:
        """The method's wait queue inside its current lock domain."""
        return self._domain_for(method_id).condition(method_id)

    def _all_domains(self) -> List[LockDomain]:
        with self._lock:
            return list(self._domains.values())

    def _wake(self, method_id: str,
              joinpoint: Optional[JoinPoint] = None) -> None:
        """Second phase of post-activation: notify target queues.

        Must be called while holding **no** domain lock; each target
        condition is notified under its own domain's lock, which orders
        the notification after any in-flight park on that queue.

        When nothing is parked anywhere the lock acquisitions are
        skipped entirely — otherwise every completion on one stripe
        would contend every *other* stripe's lock (held for the full
        length of a precondition round) just to notify an empty queue,
        re-coupling the domains the striping exists to separate. The
        elision is race-free via the wake epoch: the epoch bump and the
        parked-count read happen atomically here, and a blocker
        re-checks the epoch atomically before parking — so a completion
        either sees the waiter parked (and notifies, ordered by the
        waiter's domain lock) or forces it to re-evaluate against the
        post-postaction state.
        """
        with self._waiter_guard:
            self._wake_epoch += 1
            parked = self._parked
        runtime = self._runtime
        targets: Optional[set] = None
        if self.notify_scope == "linked" and (parked or runtime is not None):
            targets = self._linked_methods(method_id)
        if runtime is not None:
            # Continuation-parked activations take the same wake, under
            # the same scope policy. Ordered against continuation parks
            # by the epoch bump above (a continuation re-checks the
            # epoch before parking, exactly like a threaded blocker).
            runtime.wake(targets)
        if not parked:
            self.stats.bump("notifications")
            self.events.emit(
                "notify", method_id,
                activation_id=joinpoint.activation_id if joinpoint else 0,
            )
            return
        if self.notify_scope == "linked":
            own_domain = self._domain_for(method_id)
            for domain in self._all_domains():
                if domain is own_domain:
                    # Domain mates share the method's lock (and usually
                    # its state): always eligible.
                    domain.notify_all()
                    continue
                for key, _condition in domain.conditions():
                    if key in targets:
                        domain.notify_all(key)
        else:
            for domain in self._all_domains():
                domain.notify_all()
        self.stats.bump("notifications")
        self.events.emit(
            "notify", method_id,
            activation_id=joinpoint.activation_id if joinpoint else 0,
        )

    def _linked_methods(self, method_id: str) -> set:
        """Methods sharing at least one aspect instance with ``method_id``.

        The completing method itself is always included (its own waiters
        may now be eligible). The map is rebuilt lazily after any
        (un)registration — tracked via the bank revision, so direct bank
        mutations are caught too.
        """
        with self._lock:
            revision = self.bank.revision
            if self._links is None or self._links_revision != revision:
                links: Dict[str, set] = {}
                owners: Dict[int, set] = {}
                for owner_method, _concern, aspect in self.bank:
                    # linkage keys: the aspect itself plus any shared state
                    # holders it references (paper-style sibling aspects
                    # share a state object rather than being one instance)
                    keys = [id(aspect)]
                    for value in vars(aspect).values():
                        if hasattr(value, "__dict__") and not callable(value):
                            keys.append(id(value))
                    for key in keys:
                        owners.setdefault(key, set()).add(owner_method)
                for methods in owners.values():
                    for method in methods:
                        links.setdefault(method, set()).update(methods)
                self._links = links
                self._links_revision = revision
            linked = set(self._links.get(method_id, ()))
        linked.add(method_id)
        return linked

    def notify(self, method_id: Optional[str] = None) -> None:
        """Explicitly wake waiters (all methods, or one method's queue).

        External state changes that affect preconditions — e.g. an
        authentication session being granted by an out-of-band login —
        must call this so parked activations re-evaluate. Safe to call
        from any thread; no moderator lock may be held by the caller.
        """
        if method_id is None:
            for domain in self._all_domains():
                domain.notify_all()
        else:
            self._domain_for(method_id).notify_all(method_id)
        runtime = self._runtime
        if runtime is not None:
            # After the domain queues: a continuation parks while
            # holding its domain lock, so the notify above serializes
            # against any in-flight park and this scan cannot miss it.
            runtime.wake(None if method_id is None else {method_id})

    def parked_snapshot(self) -> Dict[int, Tuple[str, float]]:
        """Activations currently parked: id -> (method, parked_since).

        ``parked_since`` is a ``time.monotonic`` stamp. Consumed by the
        stall watchdog (:class:`repro.core.watchdog.ActivationWatchdog`)
        to turn silent hangs into diagnostics. With a continuation
        runtime attached, its parked continuations are merged in — a
        stalled activation surfaces identically whichever runtime parks
        it (activation ids are globally unique, so the union is
        collision-free).
        """
        with self._waiter_guard:
            snapshot = dict(self._parked_info)
        runtime = self._runtime
        if runtime is not None:
            snapshot.update(runtime.parked_snapshot())
        return snapshot

    def queue_lengths(self) -> Dict[str, int]:
        """Approximate number of activations parked per method queue.

        Counts threads inside ``Condition.wait`` plus, when a
        continuation runtime is attached, its parked continuations.
        """
        lengths: Dict[str, int] = {}
        for domain in self._all_domains():
            for method_id, count in domain.waiter_counts().items():
                lengths[method_id] = lengths.get(method_id, 0) + count
        runtime = self._runtime
        if runtime is not None:
            for method_id, _since in runtime.parked_snapshot().values():
                lengths[method_id] = lengths.get(method_id, 0) + 1
        return lengths

    def lock_domains(self) -> Dict[str, List[str]]:
        """Current domain layout: domain name -> method queues in it."""
        layout: Dict[str, List[str]] = {}
        for domain in self._all_domains():
            layout[domain.name] = [key for key, _ in domain.conditions()]
        return layout
