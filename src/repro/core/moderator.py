"""The aspect moderator: coordinator of functional and aspectual behaviour.

Paper, Section 4.2 / 5.2: upon a message reception that involves a
participating method, the proxy delegates to the moderator, which

1. evaluates the *pre-activation* phase — calling ``precondition()`` of
   every required aspect in composition order; BLOCK parks the caller on
   the method's wait queue inside a re-evaluation loop (Figure 11's
   ``while (result == BLOCKED) wait()``), ABORT rejects the activation;
2. after the method executes, evaluates the *post-activation* phase —
   calling ``postaction()`` of the aspects in reverse order and notifying
   wait queues so blocked activations re-evaluate (Figure 11's
   ``notify()``).

Concurrency design
------------------

The paper synchronizes each phase on per-method Java monitors. The
framework uses one lock per moderator shared by per-method
``threading.Condition`` queues:

* all precondition chains evaluate under the lock, so an activation
  observes and mutates aspect counters atomically with respect to every
  other activation moderated by this object (exactly the guarantee the
  paper's ``synchronized`` blocks provide);
* the participating method itself runs *outside* the lock — functional
  work proceeds concurrently; only moderation is serialized;
* post-activation re-acquires the lock, runs postactions, and notifies
  *all* method queues: a completing ``open`` may unblock waiters of
  ``assign`` (the paper hard-codes that cross-notification; notifying
  every queue generalizes it to arbitrary concern graphs at the cost of
  spurious wakeups, which the re-evaluation loop absorbs).

Fix over the paper: the published listings mutate synchronization
counters inside ``precondition()`` but never undo them when a *later*
aspect in the chain blocks or aborts. The moderator closes that hole by
invoking ``on_abort()`` on already-RESUMEd aspects, in reverse order,
before waiting or aborting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .aspect import Aspect
from .bank import AspectBank
from .errors import ActivationTimeout, MethodAborted
from .events import EventBus
from .joinpoint import JoinPoint
from .ordering import OrderingPolicy, registration_order
from .results import AspectResult, Phase

#: context key under which the RESUMEd chain is stashed between phases
CHAIN_KEY = "__moderation_chain__"


@dataclass
class ModerationStats:
    """Aggregate counters maintained by a moderator (under its lock)."""

    preactivations: int = 0
    resumes: int = 0
    blocks: int = 0
    aborts: int = 0
    waits: int = 0
    wakeups: int = 0
    postactivations: int = 0
    notifications: int = 0
    compensations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class AspectModerator:
    """Evaluates and coordinates the aspects of participating methods.

    Mirrors the paper's ``AspectModerator`` class (Figure 12):
    ``registeraspect`` / ``preactivation`` / ``postactivation``, backed by
    the two-dimensional aspect bank.

    Args:
        bank: aspect registry; a fresh :class:`AspectBank` by default.
        ordering: composition-order policy applied to each activation.
        events: protocol event bus; a fresh :class:`EventBus` by default.
        default_timeout: optional bound, in seconds, on how long a
            BLOCKed activation may wait before :class:`ActivationTimeout`
            (``None`` reproduces the paper's unbounded wait).
    """

    def __init__(
        self,
        bank: Optional[AspectBank] = None,
        ordering: OrderingPolicy = registration_order,
        events: Optional[EventBus] = None,
        default_timeout: Optional[float] = None,
        notify_scope: str = "all",
    ) -> None:
        if notify_scope not in ("all", "linked"):
            raise ValueError("notify_scope must be 'all' or 'linked'")
        self.bank = bank if bank is not None else AspectBank()
        self.events = events if events is not None else EventBus()
        self.ordering = ordering
        self.default_timeout = default_timeout
        #: wakeup policy after post-activation: ``"all"`` notifies every
        #: method queue (the paper's conservative behaviour, absorbed by
        #: re-evaluation); ``"linked"`` notifies only methods sharing at
        #: least one aspect instance with the completed method — fewer
        #: spurious wakeups, same safety, measured in bench A-ABL.
        self.notify_scope = notify_scope
        self.stats = ModerationStats()
        self._lock = threading.RLock()
        self._queues: Dict[str, threading.Condition] = {}
        self._links: Optional[Dict[str, set]] = None

    # ------------------------------------------------------------------
    # registration (paper Figure 9)
    # ------------------------------------------------------------------
    def register_aspect(self, method_id: str, concern: str, aspect: Aspect,
                        replace: bool = False) -> None:
        """Store a first-class aspect object for future reference."""
        self.bank.register(method_id, concern, aspect, replace=replace)
        with self._lock:
            self._links = None  # linkage map is stale
        self.events.emit("register_aspect", method_id, concern,
                         detail=aspect.describe())

    def unregister_aspect(self, method_id: str, concern: str) -> Aspect:
        """Remove an aspect; wakes blocked activations to re-evaluate."""
        aspect = self.bank.unregister(method_id, concern)
        with self._lock:
            self._links = None
            self._notify_all_queues()
        return aspect

    def participates(self, method_id: str) -> bool:
        """Whether any aspect is registered for ``method_id``."""
        return bool(self.bank.concerns_for(method_id))

    # ------------------------------------------------------------------
    # pre-activation (paper Figure 11 / 17)
    # ------------------------------------------------------------------
    def preactivation(
        self,
        method_id: str,
        joinpoint: Optional[JoinPoint] = None,
        timeout: Optional[float] = None,
    ) -> AspectResult:
        """Evaluate the pre-activation phase for one activation.

        Returns ``RESUME`` when every aspect's precondition holds (the
        proxy must then invoke the method and later call
        :meth:`postactivation` exactly once with the same join point),
        or ``ABORT`` when some aspect rejected the activation. ``BLOCK``
        is never returned: blocking is handled internally by waiting on
        the method's queue and re-evaluating, as in the paper.

        Raises :class:`ActivationTimeout` when a timeout (argument or
        moderator default) elapses while blocked.
        """
        joinpoint = joinpoint or JoinPoint(method_id=method_id)
        joinpoint.phase = Phase.PRE_ACTIVATION
        effective_timeout = (
            timeout if timeout is not None else self.default_timeout
        )
        deadline = (
            time.monotonic() + effective_timeout
            if effective_timeout is not None else None
        )
        self.events.emit("preactivation", method_id,
                         activation_id=joinpoint.activation_id)

        queue = self._queue_for(method_id)
        with queue:  # the shared moderator lock
            self.stats.preactivations += 1
            while True:
                outcome, resumed, failed_concern = self._evaluate_chain(
                    method_id, joinpoint
                )
                if outcome is AspectResult.RESUME:
                    joinpoint.context[CHAIN_KEY] = resumed
                    self.stats.resumes += 1
                    return AspectResult.RESUME

                # Undo side effects of the aspects that had already
                # voted RESUME in this round, in reverse order. Aspects
                # can distinguish a transient BLOCK round from a final
                # ABORT via the compensation-reason context key.
                joinpoint.context["__compensation__"] = outcome.value
                self._compensate(resumed, joinpoint)
                joinpoint.context.pop("__compensation__", None)

                if outcome is AspectResult.ABORT:
                    self.stats.aborts += 1
                    joinpoint.phase = Phase.ABORTED
                    joinpoint.context["abort_concern"] = failed_concern
                    self.events.emit(
                        "abort", method_id, failed_concern or "",
                        activation_id=joinpoint.activation_id,
                    )
                    return AspectResult.ABORT

                # BLOCK: park on this method's wait queue, then retry.
                self.stats.blocks += 1
                self.events.emit(
                    "blocked", method_id, failed_concern or "",
                    activation_id=joinpoint.activation_id,
                )
                self.stats.waits += 1
                if deadline is None:
                    queue.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not queue.wait(remaining):
                        raise ActivationTimeout(method_id, effective_timeout)
                self.stats.wakeups += 1
                self.events.emit(
                    "unblocked", method_id,
                    activation_id=joinpoint.activation_id,
                )

    def _evaluate_chain(
        self, method_id: str, joinpoint: JoinPoint
    ) -> Tuple[AspectResult, List[Tuple[str, Aspect]], Optional[str]]:
        """Run one round of precondition evaluation. Caller holds the lock.

        Returns ``(outcome, resumed_pairs, failed_concern)`` where
        ``resumed_pairs`` are the aspects that voted RESUME before the
        chain stopped (all of them when outcome is RESUME).
        """
        pairs = self.ordering(method_id, self.bank.aspects_for(method_id))
        resumed: List[Tuple[str, Aspect]] = []
        for concern, aspect in pairs:
            result = aspect.evaluate_precondition(joinpoint)
            self.events.emit(
                "precondition", method_id, concern, detail=result.value,
                activation_id=joinpoint.activation_id,
            )
            if result is AspectResult.RESUME:
                resumed.append((concern, aspect))
                continue
            return result, resumed, concern
        return AspectResult.RESUME, resumed, None

    def _compensate(self, resumed: List[Tuple[str, Aspect]],
                    joinpoint: JoinPoint) -> None:
        for concern, aspect in reversed(resumed):
            aspect.on_abort(joinpoint)
            self.stats.compensations += 1
            self.events.emit(
                "compensate", joinpoint.method_id, concern,
                activation_id=joinpoint.activation_id,
            )

    # ------------------------------------------------------------------
    # post-activation (paper Figure 11 / 18)
    # ------------------------------------------------------------------
    def postactivation(self, method_id: str,
                       joinpoint: Optional[JoinPoint] = None) -> None:
        """Evaluate the post-activation phase for a RESUMEd activation.

        Runs ``postaction()`` of the activation's aspects in *reverse*
        composition order (Section 5.3: synchronization unwinds before
        authentication) and notifies every wait queue so blocked
        activations re-evaluate their preconditions.
        """
        joinpoint = joinpoint or JoinPoint(method_id=method_id)
        joinpoint.phase = Phase.POST_ACTIVATION
        self.events.emit("postactivation", method_id,
                         activation_id=joinpoint.activation_id)

        chain = joinpoint.context.pop(CHAIN_KEY, None)
        if chain is None:
            # Post-activation without a recorded chain: fall back to the
            # current bank contents (the paper's behaviour, which always
            # re-reads the array).
            chain = self.ordering(method_id, self.bank.aspects_for(method_id))

        queue = self._queue_for(method_id)
        with queue:
            self.stats.postactivations += 1
            for concern, aspect in reversed(list(chain)):
                aspect.postaction(joinpoint)
                self.events.emit(
                    "postaction", method_id, concern,
                    activation_id=joinpoint.activation_id,
                )
            if self.notify_scope == "linked":
                self._notify_linked(method_id)
            else:
                self._notify_all_queues()
            self.stats.notifications += 1
            self.events.emit("notify", method_id,
                             activation_id=joinpoint.activation_id)

    # ------------------------------------------------------------------
    # whole-activation convenience
    # ------------------------------------------------------------------
    @contextmanager
    def activation(
        self,
        method_id: str,
        joinpoint: Optional[JoinPoint] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[JoinPoint]:
        """Context manager bracketing a participating-method body.

        Raises :class:`MethodAborted` when pre-activation aborts. When the
        body raises, the exception is recorded on the join point and
        post-activation still runs, so aspects can compensate (a sync
        aspect rolls its counters back instead of committing them).

        Example::

            with moderator.activation("open", jp):
                server.open(ticket)
        """
        joinpoint = joinpoint or JoinPoint(method_id=method_id)
        result = self.preactivation(method_id, joinpoint, timeout=timeout)
        if result is AspectResult.ABORT:
            raise MethodAborted(
                method_id, concern=joinpoint.context.get("abort_concern")
            )
        joinpoint.phase = Phase.INVOCATION
        try:
            yield joinpoint
        except BaseException as exc:
            joinpoint.exception = exc
            raise
        finally:
            self.postactivation(method_id, joinpoint)

    def moderate_call(self, method_id: str, func: Any, *args: Any,
                      component: Any = None, caller: Any = None,
                      timeout: Optional[float] = None, **kwargs: Any) -> Any:
        """Run ``func(*args, **kwargs)`` as a fully moderated activation."""
        joinpoint = JoinPoint(
            method_id=method_id, component=component,
            args=args, kwargs=kwargs, caller=caller,
        )
        with self.activation(method_id, joinpoint, timeout=timeout):
            if not joinpoint.invocation_skipped:
                self.events.emit("invoke", method_id,
                                 activation_id=joinpoint.activation_id)
                joinpoint.result = func(*args, **kwargs)
        return joinpoint.result

    # ------------------------------------------------------------------
    # wait-queue plumbing
    # ------------------------------------------------------------------
    def _queue_for(self, method_id: str) -> threading.Condition:
        """The per-method wait queue (conditions share the moderator lock)."""
        with self._lock:
            queue = self._queues.get(method_id)
            if queue is None:
                queue = threading.Condition(self._lock)
                self._queues[method_id] = queue
            return queue

    def _notify_all_queues(self) -> None:
        """Wake every parked activation for re-evaluation. Lock held."""
        for queue in self._queues.values():
            queue.notify_all()

    def _linked_methods(self, method_id: str) -> set:
        """Methods sharing at least one aspect instance with ``method_id``.

        The completing method itself is always included (its own waiters
        may now be eligible). The map is rebuilt lazily after any
        (un)registration. Lock held.
        """
        if self._links is None:
            links: Dict[str, set] = {}
            owners: Dict[int, set] = {}
            for owner_method, _concern, aspect in self.bank:
                # linkage keys: the aspect itself plus any shared state
                # holders it references (paper-style sibling aspects
                # share a state object rather than being one instance)
                keys = [id(aspect)]
                for value in vars(aspect).values():
                    if hasattr(value, "__dict__") and not callable(value):
                        keys.append(id(value))
                for key in keys:
                    owners.setdefault(key, set()).add(owner_method)
            for methods in owners.values():
                for method in methods:
                    links.setdefault(method, set()).update(methods)
            self._links = links
        linked = set(self._links.get(method_id, ()))
        linked.add(method_id)
        return linked

    def _notify_linked(self, method_id: str) -> None:
        """Wake only queues whose preconditions this completion can
        affect. Lock held."""
        for linked in self._linked_methods(method_id):
            queue = self._queues.get(linked)
            if queue is not None:
                queue.notify_all()

    def notify(self, method_id: Optional[str] = None) -> None:
        """Explicitly wake waiters (all methods, or one method's queue).

        External state changes that affect preconditions — e.g. an
        authentication session being granted by an out-of-band login —
        must call this so parked activations re-evaluate.
        """
        with self._lock:
            if method_id is None:
                self._notify_all_queues()
            else:
                self._queue_for(method_id).notify_all()

    def queue_lengths(self) -> Dict[str, int]:
        """Approximate number of threads parked per method queue."""
        with self._lock:
            return {
                method_id: len(queue._waiters)  # noqa: SLF001 - CPython detail
                for method_id, queue in self._queues.items()
            }
