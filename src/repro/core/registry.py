"""Cluster wiring: the paper's Figure 1 architecture as one object.

"A concurrent object is represented as a cluster of co-operating classes
that handle the creation of aspects as well as the interaction between
components and aspects" (Section 3). A :class:`Cluster` assembles and
owns the four cooperating parts — functional component, aspect factory,
aspect moderator (with its aspect bank), and component proxy — and runs
the initialization protocol of Figure 2.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .bank import AspectBank
from .events import EventBus, Tracer
from .factory import AspectFactory, CompositeFactory
from .moderator import AspectModerator
from .ordering import OrderingPolicy, registration_order
from .proxy import ComponentProxy


class Cluster:
    """A concurrent object: component + factory + moderator + proxy.

    Args:
        component: the functional component.
        factory: aspect factory for this cluster; wrapped in a
            :class:`CompositeFactory` so later extensions can stack.
        bindings: mapping of participating method -> concern labels to
            instantiate at initialization (paper Figure 5's constructor).
        ordering: concern composition-order policy for the moderator.
        default_timeout: optional BLOCK wait bound for the moderator.
        compile_plans: forwarded to the moderator — ``True`` (default)
            executes compiled activation plans, ``False`` the per-call
            interpreter.

    Example::

        cluster = Cluster(
            component=TicketStore(capacity=10),
            factory=ticketing_factory(),
            bindings={"open": ["sync"], "assign": ["sync"]},
        )
        cluster.proxy.open("ticket-1")
    """

    def __init__(
        self,
        component: Any,
        factory: Optional[AspectFactory] = None,
        bindings: Optional[Mapping[str, Iterable[str]]] = None,
        ordering: OrderingPolicy = registration_order,
        default_timeout: Optional[float] = None,
        notify_scope: str = "all",
        compile_plans: bool = True,
    ) -> None:
        self.component = component
        self.events = EventBus()
        self.bank = AspectBank()
        self.moderator = AspectModerator(
            bank=self.bank,
            ordering=ordering,
            events=self.events,
            default_timeout=default_timeout,
            notify_scope=notify_scope,
            compile_plans=compile_plans,
        )
        self.factory = CompositeFactory()
        if factory is not None:
            self.factory.extend(factory)
        self._bindings: Dict[str, List[str]] = {}
        if bindings:
            self.bind_all(bindings)
        self.proxy = ComponentProxy(component, self.moderator)

    # ------------------------------------------------------------------
    # initialization protocol (paper Figure 2)
    # ------------------------------------------------------------------
    def bind(self, method_id: str, concern: str) -> None:
        """Create and register the aspect for one (method, concern) cell."""
        aspect = self.factory.create(method_id, concern, self.component)
        self.events.emit(
            "create_aspect", method_id, concern, detail=aspect.describe()
        )
        self.moderator.register_aspect(method_id, concern, aspect,
                                       replace=True)
        self._bindings.setdefault(method_id, [])
        if concern not in self._bindings[method_id]:
            self._bindings[method_id].append(concern)

    def bind_all(self, bindings: Mapping[str, Iterable[str]]) -> None:
        """Run the full initialization phase for a binding table."""
        for method_id, concerns in bindings.items():
            for concern in concerns:
                self.bind(method_id, concern)

    # ------------------------------------------------------------------
    # adaptability (paper Section 5.3)
    # ------------------------------------------------------------------
    def extend(self, factory: AspectFactory,
               bindings: Mapping[str, Iterable[str]]) -> "Cluster":
        """Add a concern dimension at runtime.

        The extension factory is stacked onto the composite (most-derived
        first, as ``ExtendedAspectFactory`` overrides its parent), then
        the new cells are created and registered. Existing aspects,
        existing registrations, and the functional component are
        untouched — the adaptability property of Section 5.3.
        """
        self.factory.extend(factory)
        self.bind_all(bindings)
        return self

    def unbind(self, method_id: str, concern: str) -> None:
        """Remove one concern from one method at runtime."""
        self.moderator.unregister_aspect(method_id, concern)
        if concern in self._bindings.get(method_id, []):
            self._bindings[method_id].remove(concern)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def bindings(self) -> Dict[str, List[str]]:
        """Copy of the current (method -> concerns) binding table."""
        return {k: list(v) for k, v in self._bindings.items()}

    def trace(self) -> Tuple[Tracer, Any]:
        """Attach a tracer to this cluster's event bus.

        Returns ``(tracer, unsubscribe)``.
        """
        tracer = Tracer()
        unsubscribe = self.events.subscribe(tracer)
        return tracer, unsubscribe

    def plans(self) -> Dict[str, Any]:
        """Current compiled :class:`ActivationPlan` per bound method.

        Compilation is pure, so this works (and is useful — lint,
        diagrams) even when the cluster runs with ``compile_plans=False``.
        """
        return {
            method_id: self.moderator.plan_for(method_id)
            for method_id in self.bank.methods()
        }

    def explain_plans(self) -> Dict[str, Dict[str, Any]]:
        """``plan.explain()`` for every bound method — the composed
        contracts of the whole cluster as plain data."""
        return self.moderator.explain()

    def architecture(self) -> Dict[str, Any]:
        """Describe the cluster in the vocabulary of the paper's Figure 1."""
        return {
            "functional_component": type(self.component).__name__,
            "proxy": type(self.proxy).__name__,
            "aspect_moderator": type(self.moderator).__name__,
            "aspect_factory": [
                type(f).__name__ for f in self.factory._factories
            ],
            "aspect_bank": self.bank.grid(),
        }

    def __repr__(self) -> str:
        return (
            f"<Cluster component={type(self.component).__name__} "
            f"methods={sorted(self._bindings)}>"
        )
