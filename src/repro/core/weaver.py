"""Weaving: binding aspects to components without hand-written proxies.

The paper's integration point is source-level boilerplate: each component
gets a hand-written proxy whose guarded methods bracket ``super()`` calls
(Figure 10). Python lets the framework generate that bracket:

* :func:`participating` — method decorator marking a method as
  participating and optionally pre-declaring its concerns;
* :func:`moderated` — class decorator that rewrites the participating
  methods of a class in place so *instances are their own proxies*;
* :class:`ModeratedMeta` — metaclass variant of the same rewrite;
* :func:`weave` — instance-level weaving: given a component, a moderator,
  a factory and a pointcut, create and register aspects and return a
  :class:`~repro.core.proxy.ComponentProxy`.

All three integration styles funnel through the same moderator protocol,
so the choice is purely syntactic — one of the "open issues" the paper
poses ("Should we use an aspect language or a framework approach?") that
Python answers with: the framework approach *is* the language approach,
via decorators.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .errors import MethodAborted, WeavingError
from .factory import AspectFactory
from .joinpoint import JoinPoint
from .moderator import AspectModerator
from .pointcut import Pointcut
from .proxy import ComponentProxy
from .results import AspectResult, Phase

#: Attribute set by @participating on the function object.
PARTICIPATING_ATTR = "__participating_concerns__"
#: Attribute naming the moderator attribute on woven classes.
MODERATOR_ATTR = "__aspect_moderator_attr__"


def participating(
    *concerns: str,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Mark a method as participating (usable with or without concerns).

    Usage::

        class TicketServer:
            @participating("sync")
            def open(self, ticket): ...

    The mark is inert until the class is woven with :func:`moderated` /
    :class:`ModeratedMeta` or the instance is wrapped by :func:`weave`;
    the concerns listed are the cells the factory will be asked to
    populate at initialization time (paper Figure 5).
    """

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        setattr(func, PARTICIPATING_ATTR, list(concerns))
        return func

    # Support bare usage: @participating without parentheses.
    if len(concerns) == 1 and callable(concerns[0]):
        func = concerns[0]
        concerns = ()
        return decorate(func)  # type: ignore[arg-type]
    return decorate


def participating_methods(cls: type) -> Dict[str, List[str]]:
    """Map of participating method name -> declared concerns for ``cls``."""
    found: Dict[str, List[str]] = {}
    for name in dir(cls):
        attr = getattr(cls, name, None)
        if callable(attr) and hasattr(attr, PARTICIPATING_ATTR):
            found[name] = list(getattr(attr, PARTICIPATING_ATTR))
    return found


def _guarded(method_id: str, func: Callable[..., Any],
             moderator_attr: str) -> Callable[..., Any]:
    """Build the pre/post-activation bracket around an unbound method."""

    @functools.wraps(func)
    def guarded(self: Any, *args: Any, **kwargs: Any) -> Any:
        moderator: Optional[AspectModerator] = getattr(
            self, moderator_attr, None
        )
        if moderator is None:
            # Not yet wired to a moderator: behave as a plain method.
            return func(self, *args, **kwargs)
        plan = (
            moderator.plan_handle(method_id).current()
            if moderator.compile_plans else None
        )
        joinpoint = JoinPoint(
            method_id=method_id, component=self, args=args, kwargs=kwargs,
            caller=getattr(self, "__caller__", None),
        )
        result = moderator.preactivation(method_id, joinpoint, plan=plan)
        if result is not AspectResult.RESUME:
            raise MethodAborted(
                method_id, concern=joinpoint.context.get("abort_concern")
            )
        joinpoint.phase = Phase.INVOCATION
        try:
            if not joinpoint.invocation_skipped:
                moderator.events.emit(
                    "invoke", method_id,
                    activation_id=joinpoint.activation_id,
                )
                joinpoint.result = func(self, *args, **kwargs)
        except BaseException as exc:
            joinpoint.exception = exc
            raise
        finally:
            moderator.postactivation(method_id, joinpoint, plan=plan)
        return joinpoint.result

    setattr(guarded, "__woven__", True)
    setattr(guarded, PARTICIPATING_ATTR,
            list(getattr(func, PARTICIPATING_ATTR, [])))
    return guarded


def moderated(cls: Optional[type] = None, *,
              moderator_attr: str = "moderator") -> Any:
    """Class decorator weaving the pre/post-activation bracket in place.

    Every method marked :func:`participating` is replaced by a guarded
    wrapper that consults ``self.<moderator_attr>`` at call time.
    Instances without a moderator behave as plain objects, so woven
    classes remain usable (and testable) standalone.

    Usage::

        @moderated
        class TicketServer:
            @participating("sync")
            def open(self, ticket): ...
    """

    def apply(target: type) -> type:
        marked = participating_methods(target)
        if not marked:
            raise WeavingError(
                f"{target.__name__} has no @participating methods to weave"
            )
        for name in marked:
            func = target.__dict__.get(name)
            if func is None:
                # Inherited participating method: re-wrap the inherited one.
                func = getattr(target, name)
            if getattr(func, "__woven__", False):
                continue
            setattr(target, name, _guarded(name, func, moderator_attr))
        setattr(target, MODERATOR_ATTR, moderator_attr)
        return target

    if cls is not None:
        return apply(cls)
    return apply


class ModeratedMeta(type):
    """Metaclass variant of :func:`moderated`.

    Classes built with this metaclass weave their participating methods
    at class-creation time::

        class TicketServer(metaclass=ModeratedMeta):
            @participating("sync")
            def open(self, ticket): ...
    """

    def __new__(mcls, name: str, bases: Tuple[type, ...],
                namespace: Dict[str, Any], **kwargs: Any) -> type:
        moderator_attr = kwargs.pop("moderator_attr", "moderator")
        cls = super().__new__(mcls, name, bases, namespace, **kwargs)
        for attr_name, attr in list(namespace.items()):
            if callable(attr) and hasattr(attr, PARTICIPATING_ATTR) \
                    and not getattr(attr, "__woven__", False):
                setattr(cls, attr_name,
                        _guarded(attr_name, attr, moderator_attr))
        setattr(cls, MODERATOR_ATTR, moderator_attr)
        return cls


def weave(
    component: Any,
    moderator: AspectModerator,
    factory: Optional[AspectFactory] = None,
    pointcut: Optional[Pointcut] = None,
    concerns: Optional[Iterable[str]] = None,
    caller: Any = None,
) -> ComponentProxy:
    """Instance-level weaving: initialize a cluster and return its proxy.

    Reproduces the initialization phase (paper Figure 2) generically:

    1. determine the participating methods — those selected by
       ``pointcut``, or those marked with :func:`participating`;
    2. for each participating method and each concern, ask the factory to
       ``create`` the aspect and ``register`` it with the moderator;
    3. return a :class:`ComponentProxy` guarding exactly those methods.

    ``concerns`` overrides the per-method concern declarations (useful
    when weaving unannotated third-party classes with a pointcut).
    """
    if pointcut is not None:
        selected: Dict[str, List[str]] = {
            name: list(concerns or [])
            for name in pointcut.resolve(component)
        }
    else:
        selected = participating_methods(type(component))
        if concerns is not None:
            selected = {name: list(concerns) for name in selected}
    if not selected:
        raise WeavingError(
            f"nothing to weave on {type(component).__name__}: no pointcut "
            f"match and no @participating methods"
        )

    if factory is not None:
        for method_id, method_concerns in selected.items():
            for concern in method_concerns:
                aspect = factory.create(method_id, concern, component)
                moderator.events.emit(
                    "create_aspect", method_id, concern,
                    detail=aspect.describe(),
                )
                if not moderator.bank.contains(method_id, concern) or \
                        moderator.bank.lookup(method_id, concern) is not aspect:
                    moderator.register_aspect(
                        method_id, concern, aspect, replace=True
                    )

    return ComponentProxy(
        component, moderator, participating=selected, caller=caller
    )
