"""Stuck-activation watchdog: turn silent hangs into diagnostics.

A wedged moderation protocol — an activation parked forever because a
wakeup was lost or a guard aspect leaked its reservation — is the worst
failure mode the framework can have: nothing raises, nothing logs, a
thread just never returns. :class:`ActivationWatchdog` is the optional
monitor that bounds the silence: a daemon thread periodically snapshots
the moderator's parked waiters and, for any activation parked longer
than ``deadline`` seconds, emits a ``watchdog_stall`` protocol event and
invokes ``on_stall`` with a :class:`StallReport` carrying everything a
human (or a supervisor process) needs: method, lock domain, parked
activation ids and ages, queue lengths, and the moderator's counter
snapshot.

The watchdog only *observes* — it never wakes, aborts or otherwise
perturbs the protocol, so arming it cannot change program behaviour.
Each stalled activation is reported once per park episode (and again
every ``renotify`` seconds while it stays parked, so long-lived stalls
keep surfacing in logs).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .moderator import AspectModerator


@dataclass(frozen=True)
class StallReport:
    """Diagnostic snapshot of one method's stalled activations."""

    method_id: str
    domain: str
    #: (activation_id, seconds parked) for every stalled waiter, oldest
    #: first
    activations: Tuple[Tuple[int, float], ...]
    #: parked-thread counts per method queue at snapshot time
    queue_lengths: Dict[str, int] = field(default_factory=dict)
    #: moderator counter snapshot (``ModerationStats.as_dict``)
    stats: Dict[str, int] = field(default_factory=dict)
    #: activation_id -> (trace_id, span_id) for stalled activations a
    #: span recorder knows about — the cross-reference from a watchdog
    #: stall into the obs plane (and the causal slicer's target key)
    traces: Dict[int, Tuple[str, str]] = field(default_factory=dict)

    def format(self) -> str:
        """Render the dump as one human-readable block."""
        lines = [
            f"STALL method={self.method_id!r} domain={self.domain!r} "
            f"parked={len(self.activations)}",
        ]
        for activation_id, age in self.activations:
            line = f"  activation {activation_id} parked {age:.3f}s"
            trace = self.traces.get(activation_id)
            if trace is not None:
                line += f" trace={trace[0]} span={trace[1]}"
            lines.append(line)
        lines.append(f"  queues: {self.queue_lengths}")
        lines.append(
            "  chain state: "
            f"resumes={self.stats.get('resumes', 0)} "
            f"blocks={self.stats.get('blocks', 0)} "
            f"wakeups={self.stats.get('wakeups', 0)} "
            f"notifications={self.stats.get('notifications', 0)} "
            f"faults={self.stats.get('faults', 0)}"
        )
        return "\n".join(lines)


class ActivationWatchdog:
    """Monitor thread that reports activations parked past a deadline.

    Args:
        moderator: the moderator to observe.
        deadline: seconds an activation may stay parked before it is
            considered stalled.
        interval: polling period; defaults to ``deadline / 4`` (bounded
            below at 10 ms).
        on_stall: callback receiving each :class:`StallReport`; errors
            raised by the callback are swallowed (a diagnostic hook must
            never take the watchdog down).
        renotify: seconds between repeated reports for an activation
            that stays parked; defaults to ``deadline`` (0 disables
            re-reporting).
        recorder: optional span recorder (anything with a
            ``trace_of(activation_id)`` method, duck-typed so the core
            never imports the obs package); when given, each report's
            ``traces`` maps stalled activations to their
            ``(trace_id, span_id)`` for cross-referencing.

    Usable as a context manager::

        with ActivationWatchdog(moderator, deadline=2.0,
                                on_stall=print_report):
            run_workload()
    """

    def __init__(self, moderator: AspectModerator, deadline: float = 5.0,
                 interval: Optional[float] = None,
                 on_stall: Optional[Callable[[StallReport], None]] = None,
                 renotify: Optional[float] = None,
                 recorder: Optional[Any] = None) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.moderator = moderator
        self.deadline = deadline
        self.interval = (
            interval if interval is not None else max(deadline / 4, 0.01)
        )
        self.on_stall = on_stall
        self.renotify = renotify if renotify is not None else deadline
        self.recorder = recorder
        self.reports: List[StallReport] = []
        self._reported: Dict[int, float] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "ActivationWatchdog":
        if self._thread is not None and self._thread.is_alive():
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="activation-watchdog", daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, self.interval * 4))
            self._thread = None

    def __enter__(self) -> "ActivationWatchdog":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.scan()
            except Exception:  # noqa: BLE001 - observer must survive
                continue

    def scan(self, now: Optional[float] = None) -> List[StallReport]:
        """One sampling pass; returns the reports emitted this pass."""
        now = time.monotonic() if now is None else now
        parked = self.moderator.parked_snapshot()
        with self._lock:
            # Forget activations that unparked since the last pass.
            for activation_id in list(self._reported):
                if activation_id not in parked:
                    del self._reported[activation_id]
            stalled: Dict[str, List[Tuple[int, float]]] = {}
            for activation_id, (method_id, since) in parked.items():
                age = now - since
                if age < self.deadline:
                    continue
                last = self._reported.get(activation_id)
                if last is not None and (
                        self.renotify <= 0 or now - last < self.renotify):
                    continue
                self._reported[activation_id] = now
                stalled.setdefault(method_id, []).append(
                    (activation_id, age)
                )
        if not stalled:
            return []
        queue_lengths = self.moderator.queue_lengths()
        stats = self.moderator.stats.as_dict()
        emitted: List[StallReport] = []
        for method_id, activations in stalled.items():
            activations.sort(key=lambda pair: -pair[1])
            traces: Dict[int, Tuple[str, str]] = {}
            if self.recorder is not None:
                for activation_id, _age in activations:
                    try:
                        trace = self.recorder.trace_of(activation_id)
                    except Exception:  # noqa: BLE001 - observer only
                        trace = None
                    if trace is not None:
                        traces[activation_id] = trace
            report = StallReport(
                method_id=method_id,
                domain=self.moderator.lock_domain_of(method_id),
                activations=tuple(activations),
                queue_lengths=queue_lengths,
                stats=stats,
                traces=traces,
            )
            emitted.append(report)
            with self._lock:
                self.reports.append(report)
            # One event per stalled activation (not per method), so a
            # span recorder can annotate each stalled span and the
            # metrics plane counts stalls, not stall batches.
            for activation_id, age in activations:
                self.moderator.events.emit(
                    "watchdog_stall", method_id,
                    detail=f"parked {age:.3f}s > "
                           f"{self.deadline:.3f}s deadline "
                           f"({len(activations)} stalled on method)",
                    activation_id=activation_id,
                    duration=age,
                )
            if self.on_stall is not None:
                try:
                    self.on_stall(report)
                except Exception:  # noqa: BLE001 - hook must not kill us
                    pass
        return emitted
