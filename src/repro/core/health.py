"""Per-(method, concern) aspect health tracking and quarantine policy.

Lorenz & Skotiniotis (*Extending Design by Contract for AOP*, see
PAPERS.md) argue that aspect advice is contract-bearing code whose
violations must be detected and contained. The framework's containment
policy follows the invasive-pattern classification: an aspect that only
*observes* the activation (audit, timing) can safely be skipped when it
keeps faulting — ``fail_open`` — whereas an aspect that *guards* the
activation (authentication, synchronization) must fail the activation
rather than silently wave it through — ``fail_closed``.

:class:`HealthTracker` is the moderator-side bookkeeping: it counts
faults per bank cell and flips a cell to *quarantined* once the count
reaches the cell's threshold. The hot path pays one truthiness check on
:attr:`HealthTracker.active` per round — the tracker only grows state
after the first fault, so healthy systems never touch a dict here.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Quarantine policy for observer-style aspects: once degraded, the
#: aspect is skipped and the activation proceeds without it.
FAIL_OPEN = "fail_open"

#: Quarantine policy for guard-style aspects: once degraded, activations
#: of the method are ABORTed rather than admitted unguarded.
FAIL_CLOSED = "fail_closed"

_POLICIES = (FAIL_OPEN, FAIL_CLOSED)


@dataclass
class AspectHealth:
    """Health record of one bank cell.

    ``policy is None`` means the cell never quarantines: every fault
    still propagates to the caller (wrapped in ``AspectFault``), but the
    aspect is never taken out of the chain.
    """

    policy: Optional[str] = None
    threshold: int = 3
    faults: int = 0
    quarantined: bool = False
    last_fault: str = ""
    phases: Dict[str, int] = field(default_factory=dict)
    #: structured evidence of the most recent fault: exception type and
    #: message, protocol phase, activation id, and — when the fault was
    #: a contract violation — the blame verdict. ``last_fault`` keeps
    #: the legacy one-line form; this is the machine-readable record.
    last_fault_info: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "threshold": self.threshold,
            "faults": self.faults,
            "quarantined": self.quarantined,
            "last_fault": self.last_fault,
            "last_fault_info": dict(self.last_fault_info),
            "phases": dict(self.phases),
        }


class HealthTracker:
    """Fault accounting and quarantine state for a moderator's bank cells.

    Thread safety: all mutation happens under an internal leaf lock that
    is never held while calling aspect or listener code. ``active`` is a
    bare boolean read — stale reads are harmless (a racing reader merely
    checks, or skips checking, a quarantine map one round late).
    """

    def __init__(self, default_threshold: int = 3) -> None:
        if default_threshold < 1:
            raise ValueError("default_threshold must be at least 1")
        self.default_threshold = default_threshold
        self._lock = threading.Lock()
        self._cells: Dict[Tuple[str, str], AspectHealth] = {}
        self._policies: Dict[Tuple[str, str], Tuple[Optional[str], int]] = {}
        #: True as soon as any cell is quarantined; hot-path guard.
        self.active = False
        #: Monotonic counter bumped by every change that could alter
        #: what a compiled plan snapshots: a policy (re)declaration, a
        #: cell being dropped, a quarantine flip, a reinstatement.
        #: Activation plans fold it into their revision key, so
        #: quarantine transitions invalidate exactly the plans they
        #: affect. Bare reads are safe (int reads are atomic; a stale
        #: read merely revalidates one round late, like ``active``).
        self.epoch = 0

    # ------------------------------------------------------------------
    # policy registration
    # ------------------------------------------------------------------
    def set_policy(self, method_id: str, concern: str,
                   policy: Optional[str],
                   threshold: Optional[int] = None) -> None:
        """Declare the quarantine policy for a cell (registration time).

        Re-registering a cell resets its fault history: a freshly swapped
        aspect starts healthy.
        """
        if policy is not None and policy not in _POLICIES:
            raise ValueError(
                f"fault_policy must be one of {_POLICIES}, got {policy!r}"
            )
        key = (method_id, concern)
        with self._lock:
            self._policies[key] = (
                policy, threshold if threshold is not None
                else self.default_threshold,
            )
            self._cells.pop(key, None)
            self._refresh_active_locked()
            self.epoch += 1

    def drop(self, method_id: str, concern: str) -> None:
        """Forget a cell entirely (unregistration)."""
        key = (method_id, concern)
        with self._lock:
            self._policies.pop(key, None)
            self._cells.pop(key, None)
            self._refresh_active_locked()
            self.epoch += 1

    def declared_policy(
        self, method_id: str, concern: str
    ) -> Tuple[Optional[str], int]:
        """The declared (policy, threshold) of a cell — compile-time hook.

        Unlike :meth:`quarantine_policy` this reports the registration
        contract regardless of current quarantine state; activation-plan
        ``explain()`` reports use it to show how a cell *would* degrade.
        """
        with self._lock:
            return self._policies.get(
                (method_id, concern), (None, self.default_threshold)
            )

    # ------------------------------------------------------------------
    # fault accounting
    # ------------------------------------------------------------------
    def record_fault(self, method_id: str, concern: str, phase: str,
                     exc: BaseException, activation_id: int = 0,
                     blame: Optional[str] = None) -> bool:
        """Count one fault; return True when the cell just quarantined.

        ``activation_id`` and ``blame`` (a contract verdict such as
        ``"aspect:discount"``) flow into the cell's structured
        ``last_fault_info`` so diagnostics can tie the quarantine
        decision back to the activation — and the blame assignment —
        that caused it.
        """
        key = (method_id, concern)
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                policy, threshold = self._policies.get(
                    key, (None, self.default_threshold)
                )
                cell = AspectHealth(policy=policy, threshold=threshold)
                self._cells[key] = cell
            cell.faults += 1
            cell.phases[phase] = cell.phases.get(phase, 0) + 1
            cell.last_fault = f"{type(exc).__name__}: {exc}"
            cell.last_fault_info = {
                "exception": type(exc).__name__,
                "message": str(exc),
                "phase": phase,
                "activation_id": activation_id,
                "blame": blame,
            }
            if (cell.policy is not None and not cell.quarantined
                    and cell.faults >= cell.threshold):
                cell.quarantined = True
                self.active = True
                self.epoch += 1
                return True
            return False

    def quarantine_policy(self, method_id: str,
                          concern: str) -> Optional[str]:
        """The policy of a *quarantined* cell, or None when healthy."""
        with self._lock:
            cell = self._cells.get((method_id, concern))
            if cell is not None and cell.quarantined:
                return cell.policy
            return None

    def reinstate(self, method_id: str, concern: str) -> bool:
        """Clear a cell's quarantine and fault count; True if it was set."""
        with self._lock:
            cell = self._cells.get((method_id, concern))
            if cell is None:
                return False
            was = cell.quarantined
            cell.quarantined = False
            cell.faults = 0
            cell.phases.clear()
            self._refresh_active_locked()
            if was:
                self.epoch += 1
            return was

    def _refresh_active_locked(self) -> None:
        self.active = any(
            cell.quarantined for cell in self._cells.values()
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[Tuple[str, str], Dict[str, object]]:
        """Copy of every cell's health record (cells with faults only)."""
        with self._lock:
            return {
                key: cell.as_dict() for key, cell in self._cells.items()
            }

    def quarantined_cells(self) -> Dict[Tuple[str, str], str]:
        """Currently quarantined cells mapped to their policy."""
        with self._lock:
            return {
                key: cell.policy or ""
                for key, cell in self._cells.items() if cell.quarantined
            }
