"""Continuation moderator runtime: park activations, not threads.

The paper's moderation protocol (Figure 11) parks a BLOCKed caller on a
monitor — ``while (result == BLOCKED) wait()`` — and the threaded
runtime reproduces that literally: every blocked activation pins an OS
thread on a :class:`threading.Condition`, so a node can hold at most
thread-pool-size activations in flight. This module adds the second
runtime: an event-loop *reactor* in which BLOCK suspends the activation
as a heap-allocated :class:`ActivationContinuation` — the plan suffix to
re-run, the bound join point (whose context carries the re-anchored
contract runner), and the deadline — and a wake re-enqueues just that
suffix onto a small worker set. A parked continuation costs a few
hundred bytes of heap instead of a thread stack, which is what lets one
process hold ~10^6 parked activations (``benchmarks/bench_parked_scale``).

Equivalence contract
--------------------

The threaded runtime stays the reference implementation. This runtime
re-enters the *same* moderation machinery — :meth:`AspectModerator
._run_round` for every evaluation round, :meth:`~AspectModerator
.postactivation` for the unwind — so aspect semantics, compensation,
quarantine, fault injection and contract check points are shared code,
not a reimplementation. What this module owns is only the *suspension
mechanism*: where the threaded runtime calls ``Condition.wait``, the
reactor registers the continuation in a parked table and returns the
worker to the pool. The differential suite
(``tests/properties/test_continuation_differential.py``) holds the two
runtimes observably identical — outcomes, event streams, span shapes,
counters, contract verdicts — across all 228 fault-chaos schedules.

Park/wake race-freedom mirrors the threaded design point for point:

* the continuation registers in the moderator-wide ``_waiters`` count
  for its whole blocking attempt, so lock-free fast-path completions
  cannot elide the wake while a continuation could be parked;
* each evaluation round runs under the method's domain lock, and the
  continuation registers in the parked table *while still holding that
  lock* — so a notify (which must acquire the lock) is always ordered
  after the park, exactly like a ``Condition`` park;
* elided-lock completions are covered by the moderator's wake epoch:
  the continuation re-checks the epoch under ``_waiter_guard`` before
  parking and re-evaluates instead of parking when a completion raced
  its round (the same protocol the threaded blocker runs).

Contract ``old``-state re-anchoring across suspensions is inherited,
not re-implemented: the contract runner lives in ``joinpoint.context``
(it *is* part of the continuation's captured state), and
``ContractRunner.start_round`` re-captures observables at the top of
every evaluation round — including the round a wake re-runs — so
blame assignment sees exactly the rounds the threaded runtime would.

Deterministic mode
------------------

Pass ``engine=repro.sim.Engine(...)`` to bridge the reactor onto the
discrete-event simulator: dispatch becomes ``engine.call_after(0, ...)``,
deadline expiry becomes ``engine.call_at(expires_at, ...)``, and the
runtime clock is virtual time. No worker threads are started; the test
drives ``engine.run()`` and the whole park/wake/timeout lifecycle
replays identically for a given schedule. (Virtual-time mode expects
budgets via ``timeout=`` — a ``Deadline`` object's ``expires_at`` is a
wall-monotonic stamp and would be compared against virtual time.)
"""

from __future__ import annotations

import heapq
import threading
import time
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.concurrency.primitives import WaitQueue

from .errors import ActivationTimeout, ContractViolation, MethodAborted
from .joinpoint import JoinPoint
from .results import AspectResult, Phase

__all__ = ["ActivationContinuation", "CallFuture", "ContinuationRuntime"]

#: continuation lifecycle states (an explicit resumable state machine:
#: READY -> RUNNING -> {PARKED -> READY -> RUNNING ...} -> DONE)
READY = "ready"
RUNNING = "running"
PARKED = "parked"
DONE = "done"


class CallFuture:
    """Write-once completion token for a reactor-submitted activation.

    Deliberately leaner than :class:`repro.concurrency.primitives.Future`:
    a parked-at-scale workload holds one of these per activation, so it
    must not carry a private ``Lock``+``Condition`` pair (~that would be
    two kernel-backed objects per parked call). Completion transitions
    are serialized on one class-level lock — only completers and late
    waiter registrations touch it — and a blocking :meth:`result` call
    materializes an :class:`threading.Event` lazily, so the common
    fire-and-park case allocates none.
    """

    __slots__ = ("_done", "_value", "_exception", "_event", "_callbacks")

    _guard = threading.Lock()

    def __init__(self) -> None:
        self._done = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._event: Optional[threading.Event] = None
        self._callbacks: Optional[List[Callable[["CallFuture"], None]]] = None

    @property
    def done(self) -> bool:
        return self._done

    def _complete(self, value: Any,
                  exception: Optional[BaseException]) -> None:
        with CallFuture._guard:
            if self._done:
                raise RuntimeError("future already completed")
            self._value = value
            self._exception = exception
            self._done = True
            event = self._event
            callbacks = self._callbacks
            self._callbacks = None
        if event is not None:
            event.set()
        if callbacks:
            for callback in callbacks:
                callback(self)

    def set_result(self, value: Any) -> None:
        self._complete(value, None)

    def set_exception(self, exc: BaseException) -> None:
        self._complete(None, exc)

    def _wait(self, timeout: Optional[float]) -> None:
        if self._done:
            return
        with CallFuture._guard:
            if self._done:
                return
            if self._event is None:
                self._event = threading.Event()
            event = self._event
        if not event.wait(timeout):
            raise TimeoutError("activation not completed in time")

    def result(self, timeout: Optional[float] = None) -> Any:
        self._wait(timeout)
        if self._exception is not None:
            raise self._exception
        return self._value

    def exception(self,
                  timeout: Optional[float] = None) -> Optional[BaseException]:
        self._wait(timeout)
        return self._exception

    def add_callback(self, callback: Callable[["CallFuture"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        run_now = False
        with CallFuture._guard:
            if self._done:
                run_now = True
            else:
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(callback)
        if run_now:
            callback(self)


class ActivationContinuation:
    """The heap-allocated suspension of one moderated activation.

    Everything a wake needs to re-run the suffix: the join point (whose
    ``context`` carries the RESUMEd-chain stash and the contract
    runner), the body callable, and the resolved deadline. The threaded
    runtime keeps all of this in stack frames pinned by
    ``Condition.wait``; here it is this object, and the worker's stack
    unwinds completely while parked.
    """

    __slots__ = (
        "method_id", "joinpoint", "func", "args", "kwargs", "wrap",
        "future", "state", "started", "waiter_registered",
        "effective_timeout", "expires_at", "timed_out", "woken",
        "parked_since",
    )

    def __init__(self, method_id: str, joinpoint: JoinPoint,
                 func: Optional[Callable[..., Any]],
                 args: Tuple[Any, ...], kwargs: Dict[str, Any],
                 wrap: Optional[Callable[[], Any]]) -> None:
        self.method_id = method_id
        self.joinpoint = joinpoint
        self.func = func
        self.args = args
        self.kwargs = kwargs
        #: optional zero-arg context-manager factory applied around every
        #: segment run (the dist layer re-activates trace propagation and
        #: the serving context on whichever worker resumes the suffix)
        self.wrap = wrap
        self.future = CallFuture()
        self.state = READY
        #: entry segment (events, contract begin, deadline resolution)
        #: has run; resumptions re-enter at the evaluation-round segment
        self.started = False
        #: holding a slot in the moderator-wide ``_waiters`` count
        self.waiter_registered = False
        self.effective_timeout: Optional[float] = None
        self.expires_at: Optional[float] = None
        self.timed_out = False
        #: a wake (vs. a deadline expiry) re-enqueued this continuation;
        #: drives the ``wakeups`` counter and the ``unblocked`` event
        self.woken = False
        self.parked_since = 0.0


class ContinuationRuntime:
    """Event-loop moderator runtime: the reactor behind ``submit``.

    Args:
        moderator: the :class:`~repro.core.moderator.AspectModerator`
            whose methods this runtime executes; the runtime attaches
            itself so moderator wakes route into the ready queue.
        workers: size of the worker set that runs activation segments
            (ignored in engine mode). Throughput scales with runnable
            segments, not with parked count — 2 is plenty for pure
            coordination workloads.
        engine: optional :class:`repro.sim.Engine`; bridges dispatch and
            timers onto virtual time for deterministic tests.
        name: worker-thread name prefix.
    """

    def __init__(self, moderator: Any, workers: int = 2,
                 engine: Optional[Any] = None,
                 name: str = "reactor") -> None:
        self._moderator = moderator
        self._engine = engine
        self._lock = threading.Lock()
        #: activation_id -> parked continuation (the reactor's analogue
        #: of threads blocked in ``Condition.wait``)
        self._parked: Dict[int, ActivationContinuation] = {}
        self._closed = False
        self.submitted = 0
        self.completed = 0
        self.parked_peak = 0
        #: deadline timer state (threaded mode): heap of
        #: (expires_at, activation_id), serviced by a lazy daemon thread
        self._timer_heap: List[Tuple[float, int]] = []
        self._timer_cond = threading.Condition(threading.Lock())
        self._timer_thread: Optional[threading.Thread] = None
        self._threads: List[threading.Thread] = []
        if engine is None:
            self._ready: Optional[WaitQueue] = WaitQueue()
            for index in range(workers):
                thread = threading.Thread(
                    target=self._worker_loop, name=f"{name}-{index}",
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        else:
            self._ready = None
        moderator.attach_runtime(self)

    # ------------------------------------------------------------------
    # clock / dispatch plumbing (threaded vs. engine-bridged)
    # ------------------------------------------------------------------
    def _now(self) -> float:
        engine = self._engine
        return engine.now if engine is not None else time.monotonic()

    def _dispatch(self, continuation: ActivationContinuation) -> None:
        continuation.state = READY
        if self._engine is not None:
            self._engine.call_after(
                0.0, lambda: self._run(continuation),
                label=f"segment {continuation.method_id}",
            )
        else:
            self._ready.put(continuation)

    def _worker_loop(self) -> None:
        while True:
            try:
                continuation = self._ready.get()
            except WaitQueue.Closed:
                return
            if continuation is None:
                return
            self._run(continuation)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, method_id: str,
               func: Optional[Callable[..., Any]] = None, *args: Any,
               component: Any = None, caller: Any = None,
               timeout: Optional[float] = None, deadline: Any = None,
               wrap: Optional[Callable[[], Any]] = None,
               **kwargs: Any) -> CallFuture:
        """Run ``func(*args, **kwargs)`` as a fully moderated activation.

        The reactor analogue of :meth:`AspectModerator.moderate_call` /
        :meth:`ComponentProxy.call`: returns immediately with a
        :class:`CallFuture` that completes with the body's result, or
        with the same exception the threaded bracket would raise
        (:class:`MethodAborted`, :class:`ActivationTimeout`, aspect
        faults, contract violations, body exceptions).

        ``wrap`` is a zero-arg factory of a context manager entered
        around *every* segment run — thread-local ambience (trace
        propagation, serving context) must be re-established on
        whichever worker resumes a suffix.
        """
        if self._closed:
            raise RuntimeError("runtime is closed")
        joinpoint = JoinPoint(
            method_id=method_id, component=component,
            args=args, kwargs=kwargs, caller=caller,
        )
        continuation = ActivationContinuation(
            method_id, joinpoint, func, args, kwargs, wrap,
        )
        now = self._now()
        moderator = self._moderator
        effective_timeout = (
            timeout if timeout is not None else moderator.default_timeout
        )
        expires_at = (
            now + effective_timeout if effective_timeout is not None
            else None
        )
        budget = getattr(deadline, "expires_at", deadline)
        if budget is not None and (expires_at is None or budget < expires_at):
            expires_at = budget
            effective_timeout = max(0.0, budget - now)
        continuation.effective_timeout = effective_timeout
        continuation.expires_at = expires_at
        self.submitted += 1
        self._dispatch(continuation)
        return continuation.future

    # ------------------------------------------------------------------
    # the state machine: one call per runnable segment
    # ------------------------------------------------------------------
    def _run(self, continuation: ActivationContinuation) -> None:
        continuation.state = RUNNING
        wrap = continuation.wrap
        context = wrap() if wrap is not None else nullcontext()
        with context:
            self._advance(continuation)

    def _advance(self, continuation: ActivationContinuation) -> None:
        """Advance a continuation until it parks or completes.

        Structured exactly like the threaded bracket — entry segment,
        Figure-11 evaluation loop, invoke, post-activation — except that
        where the threaded loop would ``Condition.wait`` this method
        registers the continuation as parked and *returns*, releasing
        the worker. A wake or deadline expiry re-enters here and the
        loop resumes at the next evaluation round (the parked "suffix":
        compensation already rolled the RESUMEd prefix back, so a fresh
        round re-runs the whole chain, exactly as a woken thread does).
        """
        moderator = self._moderator
        joinpoint = continuation.joinpoint
        method_id = continuation.method_id
        try:
            if continuation.woken:
                # Resumed by a wake: mirror the threaded post-wait
                # bookkeeping (a deadline expiry, like a timed-out
                # ``Condition.wait``, bumps and emits neither).
                continuation.woken = False
                moderator.stats.bump("wakeups")
                moderator.events.emit(
                    "unblocked", method_id,
                    activation_id=joinpoint.activation_id,
                    duration=self._now() - continuation.parked_since,
                )
            if not continuation.started:
                outcome = self._entry_segment(continuation)
                if outcome is None:
                    return  # parked during the first blocking attempt
            else:
                outcome = self._round_segments(continuation)
                if outcome is None:
                    return  # parked again
            self._release_waiter(continuation)
            if outcome is AspectResult.ABORT:
                raise MethodAborted(
                    method_id,
                    concern=joinpoint.context.get("abort_concern"),
                )
            # ---- invoke segment (outside every moderator lock) ----
            plan = (
                moderator.plan_for(method_id)
                if moderator.compile_plans else None
            )
            joinpoint.phase = Phase.INVOCATION
            try:
                if not joinpoint.invocation_skipped:
                    moderator.events.emit(
                        "invoke", method_id,
                        activation_id=joinpoint.activation_id,
                    )
                    if continuation.func is not None:
                        joinpoint.result = continuation.func(
                            *continuation.args, **continuation.kwargs
                        )
            except BaseException as exc:
                joinpoint.exception = exc
                raise
            finally:
                moderator.postactivation(method_id, joinpoint, plan=plan)
        except BaseException as exc:  # noqa: BLE001 - routed to future
            self._finish(continuation, None, exc)
            return
        self._finish(continuation, joinpoint.result, None)

    def _entry_segment(
        self, continuation: ActivationContinuation
    ) -> Optional[AspectResult]:
        """The pre-activation entry: run-once events, contract, fast path.

        Mirrors :meth:`AspectModerator.preactivation` decision for
        decision (the differential suite holds the streams equal).
        Returns the pre-activation outcome, or ``None`` if the
        continuation parked.
        """
        moderator = self._moderator
        joinpoint = continuation.joinpoint
        method_id = continuation.method_id
        continuation.started = True
        joinpoint.phase = Phase.PRE_ACTIVATION
        moderator.events.emit(
            "preactivation", method_id,
            activation_id=joinpoint.activation_id,
        )
        moderator.stats.bump("preactivations")
        if moderator._contracts is not None:
            try:
                moderator._contracts.begin(method_id, joinpoint)
            except ContractViolation as violation:
                moderator._note_violation(violation, joinpoint)
                raise
        if moderator.compile_plans:
            plan = moderator.plan_for(method_id)
            if plan.never_blocks:
                outcome = moderator._run_round(method_id, joinpoint, plan)
                if outcome is not AspectResult.BLOCK:
                    if outcome is AspectResult.RESUME:
                        moderator.stats.bump("fastpaths")
                    return outcome
        else:
            pairs = moderator.ordering(
                method_id, moderator.bank.aspects_for(method_id)
            )
            if all(aspect.never_blocks for _, aspect in pairs):
                outcome = moderator._run_round(method_id, joinpoint)
                if outcome is not AspectResult.BLOCK:
                    if outcome is AspectResult.RESUME:
                        moderator.stats.bump("fastpaths")
                    return outcome
        # Register in the moderator-wide waiter count for the whole
        # blocking attempt — fast-path completions consult it to elide
        # their wake, and a parked continuation must keep it nonzero.
        with moderator._waiter_guard:
            moderator._waiters += 1
        continuation.waiter_registered = True
        return self._round_segments(continuation)

    def _round_segments(
        self, continuation: ActivationContinuation
    ) -> Optional[AspectResult]:
        """Figure 11's evaluation loop with parks instead of waits.

        One call runs as many evaluation rounds as stay runnable (raced
        epochs, domain moves, expired deadlines) and returns the final
        outcome — or registers the continuation parked and returns
        ``None``, releasing the worker. The round itself is
        :meth:`AspectModerator._run_round`, under the method's domain
        lock: aspect state stays atomic w.r.t. threaded activations of
        the same method.
        """
        moderator = self._moderator
        joinpoint = continuation.joinpoint
        method_id = continuation.method_id
        compiled = moderator.compile_plans
        while True:
            if compiled:
                plan = moderator.plan_for(method_id)
                queue = plan.queue
            else:
                plan = None
                queue = moderator._queue_for(method_id)
            with queue:
                if moderator._queue_for(method_id) is not queue:
                    continue  # method changed domains; re-acquire
                while True:
                    epoch = moderator._wake_epoch
                    if compiled:
                        plan = moderator.plan_for(method_id)
                    outcome = moderator._run_round(method_id, joinpoint,
                                                   plan)
                    if outcome is not AspectResult.BLOCK:
                        return outcome
                    if continuation.timed_out:
                        moderator.events.emit(
                            "timeout", method_id,
                            detail=f"{continuation.effective_timeout}s",
                            activation_id=joinpoint.activation_id,
                        )
                        raise ActivationTimeout(
                            method_id, continuation.effective_timeout
                        )
                    with moderator._waiter_guard:
                        raced = moderator._wake_epoch != epoch
                        if not raced:
                            # Park: registered under the domain lock, so
                            # any notify (which must take this lock) is
                            # ordered after the registration — a
                            # continuation cannot miss its wake, exactly
                            # like a ``Condition`` park.
                            with self._lock:
                                continuation.state = PARKED
                                continuation.parked_since = self._now()
                                self._parked[
                                    joinpoint.activation_id
                                ] = continuation
                                if len(self._parked) > self.parked_peak:
                                    self.parked_peak = len(self._parked)
                    if raced:
                        # A completion landed while this round was
                        # evaluating: re-evaluate against the
                        # post-postaction state instead of parking on a
                        # notification already sent.
                        continue
                    moderator.stats.bump("waits")
                    break
            # Parked (domain lock released). Deadline bookkeeping mirrors
            # the threaded ``remaining <= 0 or not queue.wait(remaining)``:
            # an already-expired budget re-claims the continuation for
            # one final round; a live one arms a timer and the worker is
            # released with no stack frame left behind.
            expires_at = continuation.expires_at
            if expires_at is not None:
                remaining = expires_at - self._now()
                if remaining <= 0:
                    if self._reclaim(continuation):
                        continuation.timed_out = True
                        continue
                    return None  # a wake got there first; it owns the run
                self._schedule_expiry(continuation)
            return None

    def _reclaim(self, continuation: ActivationContinuation) -> bool:
        """Atomically take a just-parked continuation back, if still ours."""
        with self._lock:
            if self._parked.pop(
                continuation.joinpoint.activation_id, None
            ) is None:
                return False
            continuation.state = RUNNING
            return True

    def _release_waiter(self, continuation: ActivationContinuation) -> None:
        if continuation.waiter_registered:
            continuation.waiter_registered = False
            with self._moderator._waiter_guard:
                self._moderator._waiters -= 1

    def _finish(self, continuation: ActivationContinuation,
                value: Any, exc: Optional[BaseException]) -> None:
        self._release_waiter(continuation)
        continuation.state = DONE
        self.completed += 1
        if exc is not None:
            continuation.future.set_exception(exc)
        else:
            continuation.future.set_result(value)

    # ------------------------------------------------------------------
    # wake routing (called by the moderator's notify sites)
    # ------------------------------------------------------------------
    def wake(self, targets: Optional[Set[str]] = None) -> None:
        """Re-enqueue parked continuations (all, or of target methods).

        The reactor counterpart of ``LockDomain.notify_all``: the
        moderator calls it from every site that notifies domain queues
        (two-phase post-activation wake, explicit ``notify``, domain
        moves). Spurious wakes are safe — a re-enqueued continuation
        just re-evaluates its round and re-parks.
        """
        with self._lock:
            if not self._parked:
                return
            if targets is None:
                woken = list(self._parked.values())
                self._parked.clear()
            else:
                woken = [
                    continuation
                    for continuation in self._parked.values()
                    if continuation.method_id in targets
                ]
                for continuation in woken:
                    del self._parked[continuation.joinpoint.activation_id]
            for continuation in woken:
                continuation.woken = True
        for continuation in woken:
            self._dispatch(continuation)

    # ------------------------------------------------------------------
    # deadline expiry
    # ------------------------------------------------------------------
    def _schedule_expiry(self, continuation: ActivationContinuation) -> None:
        activation_id = continuation.joinpoint.activation_id
        expires_at = continuation.expires_at
        if self._engine is not None:
            self._engine.call_at(
                expires_at, lambda: self._expire(activation_id),
                label=f"deadline {continuation.method_id}",
            )
            return
        with self._timer_cond:
            heapq.heappush(self._timer_heap, (expires_at, activation_id))
            if self._timer_thread is None:
                self._timer_thread = threading.Thread(
                    target=self._timer_loop, name="reactor-timer",
                    daemon=True,
                )
                self._timer_thread.start()
            self._timer_cond.notify()

    def _timer_loop(self) -> None:
        while True:
            with self._timer_cond:
                if self._closed:
                    return
                if not self._timer_heap:
                    self._timer_cond.wait()
                    continue
                expires_at, activation_id = self._timer_heap[0]
                delay = expires_at - time.monotonic()
                if delay > 0:
                    self._timer_cond.wait(delay)
                    continue
                heapq.heappop(self._timer_heap)
            self._expire(activation_id)

    def _expire(self, activation_id: int) -> None:
        """Deadline fired: re-enqueue for the final round, if still parked.

        Idempotent against wakes — whoever pops the parked entry owns
        the next run; a stale timer for a woken (or completed)
        activation is a no-op.
        """
        with self._lock:
            continuation = self._parked.pop(activation_id, None)
            if continuation is None:
                return
            continuation.timed_out = True
        self._dispatch(continuation)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def parked_snapshot(self) -> Dict[int, Tuple[str, float]]:
        """Parked continuations: id -> (method, parked_since).

        Same shape as :meth:`AspectModerator.parked_snapshot`, which
        merges this in — the stall watchdog sees continuation-parked
        activations exactly like thread-parked ones.
        """
        with self._lock:
            return {
                activation_id: (
                    continuation.method_id, continuation.parked_since
                )
                for activation_id, continuation in self._parked.items()
            }

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    def close(self) -> None:
        """Stop workers and the timer; parked continuations are dropped."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        with self._timer_cond:
            self._timer_cond.notify_all()
        if self._ready is not None:
            for _ in self._threads:
                self._ready.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
        if self._moderator is not None:
            self._moderator.detach_runtime(self)

    def __enter__(self) -> "ContinuationRuntime":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<ContinuationRuntime parked={len(self._parked)} "
            f"submitted={self.submitted} completed={self.completed} "
            f"{'engine' if self._engine is not None else 'threaded'}>"
        )
