"""Pointcuts: declarative selection of participating methods.

The paper registers aspects method-by-method by string identifier. A
pointcut generalizes that to *sets* of join points selected by name,
glob, regex, or arbitrary predicate, with boolean combinators — the
minimal quantification mechanism that turns per-method registration into
"apply this concern to every mutating service of the component".

Pointcuts are pure predicates over ``(method_id, component)``; binding a
pointcut to an aspect happens in :func:`repro.core.weaver.weave` or in
:class:`repro.core.registry.Cluster`.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Any, Callable, Iterable, List, Tuple  # noqa: F401 - Iterable/Tuple used in annotations


class Pointcut:
    """A predicate over join-point designators.

    Combinators::

        opens = named("open") | named("assign")
        writes = matching("set_*") & ~named("set_password")
    """

    def __init__(self, predicate: Callable[[str, Any], bool],
                 description: str = "pointcut") -> None:
        self._predicate = predicate
        self.description = description

    def matches(self, method_id: str, component: Any = None) -> bool:
        """Whether the designated join point is selected."""
        return bool(self._predicate(method_id, component))

    __call__ = matches

    def __and__(self, other: "Pointcut") -> "Pointcut":
        return Pointcut(
            lambda method_id, component: (
                self.matches(method_id, component)
                and other.matches(method_id, component)
            ),
            description=f"({self.description} & {other.description})",
        )

    def __or__(self, other: "Pointcut") -> "Pointcut":
        return Pointcut(
            lambda method_id, component: (
                self.matches(method_id, component)
                or other.matches(method_id, component)
            ),
            description=f"({self.description} | {other.description})",
        )

    def __invert__(self) -> "Pointcut":
        return Pointcut(
            lambda method_id, component: not self.matches(method_id, component),
            description=f"~{self.description}",
        )

    def select(self, component: Any,
               candidates: "Iterable[str] | None" = None) -> List[str]:
        """All public callable attributes of ``component`` this selects."""
        if candidates is None:
            candidates = [
                name for name in dir(component)
                if not name.startswith("_")
                and callable(getattr(component, name, None))
            ]
        return [
            name for name in candidates if self.matches(name, component)
        ]

    def resolve(self, component: Any,
                candidates: "Iterable[str] | None" = None) -> "Tuple[str, ...]":
        """Compile-time resolution: the selection frozen as a tuple.

        :meth:`select` answers "what matches right now"; ``resolve``
        commits that answer for callers that bake the selection into a
        longer-lived artifact — :func:`repro.core.weaver.weave` resolves
        the participating set once and builds the proxy (whose methods'
        activation plans are compiled) from it, rather than re-running
        predicate code per integration step.
        """
        return tuple(self.select(component, candidates))

    def __repr__(self) -> str:
        return f"Pointcut({self.description})"


def named(*method_ids: str) -> Pointcut:
    """Select join points by exact method name(s)."""
    names = frozenset(method_ids)
    return Pointcut(
        lambda method_id, _component: method_id in names,
        description=f"named{sorted(names)}",
    )


def matching(pattern: str) -> Pointcut:
    """Select join points by shell-style glob on the method name."""
    return Pointcut(
        lambda method_id, _component: fnmatch.fnmatchcase(method_id, pattern),
        description=f"matching({pattern!r})",
    )


def regex(pattern: str) -> Pointcut:
    """Select join points whose method name fully matches ``pattern``."""
    compiled = re.compile(pattern)
    return Pointcut(
        lambda method_id, _component: compiled.fullmatch(method_id) is not None,
        description=f"regex({pattern!r})",
    )


def predicate(fn: Callable[[str, Any], bool],
              description: str = "predicate") -> Pointcut:
    """Select join points by an arbitrary ``(method_id, component)`` test."""
    return Pointcut(fn, description=description)


def on_type(cls: type) -> Pointcut:
    """Select join points on components of (a subclass of) ``cls``."""
    return Pointcut(
        lambda _method_id, component: isinstance(component, cls),
        description=f"on_type({cls.__name__})",
    )


def all_public() -> Pointcut:
    """Select every public method."""
    return Pointcut(
        lambda method_id, _component: not method_id.startswith("_"),
        description="all_public",
    )


def none() -> Pointcut:
    """The empty pointcut."""
    return Pointcut(lambda _m, _c: False, description="none")
