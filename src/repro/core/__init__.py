"""Core of the Aspect Moderator framework (the paper's contribution).

Public surface re-exported here mirrors the class diagram of the paper's
Figure 12: aspects (``AspectIF``), the factory (``AspectFactoryIF``), the
moderator (``AspectModeratorIF``), the component proxy, plus the Python
weaving layer (decorators, pointcuts) and the protocol event bus.
"""

from .aspect import (
    Aspect,
    FunctionAspect,
    NullAspect,
    StatefulAspect,
    as_aspect,
)
from .bank import AspectBank
from .errors import (
    ActivationTimeout,
    AspectFault,
    AuthenticationError,
    AuthorizationError,
    CompositionErrors,
    ContractViolation,
    FrameworkError,
    MethodAborted,
    NameNotFound,
    NetworkError,
    NodeUnreachable,
    NotParticipatingError,
    RegistrationError,
    UnknownAspectError,
    WeavingError,
)
from .events import EventBus, TraceEvent, Tracer
from .health import FAIL_CLOSED, FAIL_OPEN, AspectHealth, HealthTracker
from .factory import (
    AspectFactory,
    CompositeFactory,
    RegistryAspectFactory,
    factory_from_table,
)
from .continuation import (
    ActivationContinuation,
    CallFuture,
    ContinuationRuntime,
)
from .joinpoint import JoinPoint
from .moderator import AspectModerator, ModerationStats
from .plan import ActivationPlan, PlanCell, PlanHandle, PlanSegment
from .ordering import (
    ExplicitOrder,
    PriorityOrder,
    guards_first,
    registration_order,
)
from .pointcut import (
    Pointcut,
    all_public,
    matching,
    named,
    on_type,
    predicate,
    regex,
)
from .proxy import ComponentProxy, GuardedMethod
from .registry import Cluster
from .results import ABORT, BLOCK, RESUME, AspectResult, Phase, combine
from .watchdog import ActivationWatchdog, StallReport
from .weaver import (
    ModeratedMeta,
    moderated,
    participating,
    participating_methods,
    weave,
)

__all__ = [
    "ABORT",
    "ActivationContinuation",
    "ActivationPlan",
    "ActivationTimeout",
    "ActivationWatchdog",
    "Aspect",
    "AspectBank",
    "AspectFactory",
    "AspectFault",
    "AspectHealth",
    "AspectModerator",
    "AspectResult",
    "AuthenticationError",
    "AuthorizationError",
    "BLOCK",
    "CallFuture",
    "Cluster",
    "ComponentProxy",
    "CompositeFactory",
    "CompositionErrors",
    "ContinuationRuntime",
    "ContractViolation",
    "EventBus",
    "ExplicitOrder",
    "FAIL_CLOSED",
    "FAIL_OPEN",
    "FrameworkError",
    "HealthTracker",
    "FunctionAspect",
    "GuardedMethod",
    "JoinPoint",
    "MethodAborted",
    "ModeratedMeta",
    "ModerationStats",
    "NameNotFound",
    "NetworkError",
    "NodeUnreachable",
    "NotParticipatingError",
    "NullAspect",
    "Phase",
    "PlanCell",
    "PlanHandle",
    "PlanSegment",
    "Pointcut",
    "PriorityOrder",
    "RESUME",
    "RegistrationError",
    "RegistryAspectFactory",
    "StallReport",
    "StatefulAspect",
    "TraceEvent",
    "Tracer",
    "UnknownAspectError",
    "WeavingError",
    "all_public",
    "as_aspect",
    "combine",
    "factory_from_table",
    "guards_first",
    "matching",
    "moderated",
    "named",
    "on_type",
    "participating",
    "participating_methods",
    "predicate",
    "regex",
    "registration_order",
    "weave",
]
