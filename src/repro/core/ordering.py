"""Concern composition ordering policies.

The paper fixes one ordering by construction (Section 5.3): the extended
proxy evaluates *authentication then synchronization* on the way into a
method, and unwinds *synchronization then authentication* on the way out.
That stack discipline — post-activation in exact reverse order of
pre-activation — is the framework invariant; *which* order the concerns
stack in is a policy.

Policies are callables mapping ``(method_id, pairs)`` to a reordered list
of ``(concern, aspect)`` pairs. The moderator applies the policy on every
activation, so swapping the policy at runtime re-composes the system
without touching components or aspects.

Compile-time resolution
-----------------------

A compiled-pipeline moderator (``compile_plans=True``) does *not* call
the policy per activation: it resolves the order once per plan compile
and the compiled plan replays it until some revision-key component moves
(assigning ``moderator.ordering`` is itself such a component). A policy
that is a pure function of ``(method_id, pairs)`` — everything in this
module — needs nothing extra. A policy whose answer depends on anything
else (time of day, a feature flag, internal mutable state) must expose a
``compile(method_id, pairs)`` hook returning the order to *freeze into
the plan*; the moderator prefers the hook when present. A policy that
genuinely must re-order per call has no compile-time meaning — run the
moderator with ``compile_plans=False`` instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .aspect import Aspect
from .errors import RegistrationError

Pairs = List[Tuple[str, Aspect]]
OrderingPolicy = Callable[[str, Pairs], Pairs]


def registration_order(method_id: str, pairs: Pairs) -> Pairs:
    """Default policy: evaluate concerns in bank registration order."""
    return pairs


class PriorityOrder:
    """Order concerns by explicit numeric priority (lower runs first).

    Unlisted concerns keep registration order after all listed ones —
    extensions can therefore prepend themselves (the paper's
    authentication-before-synchronization) by claiming a lower priority
    than any existing concern.
    """

    def __init__(self, priorities: Dict[str, int],
                 default: int = 1_000_000) -> None:
        self._priorities = dict(priorities)
        self._default = default

    def __call__(self, method_id: str, pairs: Pairs) -> Pairs:
        indexed = list(enumerate(pairs))
        indexed.sort(
            key=lambda item: (
                self._priorities.get(item[1][0], self._default),
                item[0],
            )
        )
        return [pair for _index, pair in indexed]

    def compile(self, method_id: str, pairs: Pairs) -> Pairs:
        """Compile-time hook: priorities are fixed, so resolve == call."""
        return self(method_id, pairs)


class ExplicitOrder:
    """Order concerns by an explicit per-method (or global) list.

    Concerns absent from the list raise — an explicit order is a complete
    contract, and silently appending unknown concerns would defeat the
    purpose of declaring one.
    """

    def __init__(self, order: Sequence[str],
                 per_method: "Dict[str, Sequence[str]] | None" = None) -> None:
        self._order = list(order)
        self._per_method = {
            key: list(value) for key, value in (per_method or {}).items()
        }

    def __call__(self, method_id: str, pairs: Pairs) -> Pairs:
        order = self._per_method.get(method_id, self._order)
        position = {concern: index for index, concern in enumerate(order)}
        missing = [concern for concern, _ in pairs if concern not in position]
        if missing:
            raise RegistrationError(
                f"explicit order for {method_id!r} does not mention "
                f"concerns {missing!r}"
            )
        return sorted(pairs, key=lambda pair: position[pair[0]])

    def compile(self, method_id: str, pairs: Pairs) -> Pairs:
        """Compile-time hook: the declared order is static by contract."""
        return self(method_id, pairs)


def guards_first(method_id: str, pairs: Pairs) -> Pairs:
    """Heuristic policy: observers, then access control, then the rest.

    Encodes the paper's Section 5.3 composition (authentication wraps
    synchronization) for any concern that self-identifies as a guard via
    an ``is_guard`` attribute or a conventional concern label. Pure
    *observer* concerns (audit, timing — ``is_observer`` or a
    conventional label) run before even the guards, so an activation a
    guard rejects is still observed (its ``on_abort`` compensation fires
    on the observers).
    """
    guard_labels = {"authenticate", "authorization", "authorize", "auth",
                    "security"}
    observer_labels = {"audit", "timing", "trace", "metrics"}

    def is_observer(pair: Tuple[str, Aspect]) -> bool:
        concern, aspect = pair
        return bool(getattr(aspect, "is_observer", False)) or (
            concern.lower() in observer_labels
        )

    def is_guard(pair: Tuple[str, Aspect]) -> bool:
        concern, aspect = pair
        return bool(getattr(aspect, "is_guard", False)) or (
            concern.lower() in guard_labels
        )

    observers = [pair for pair in pairs if is_observer(pair)]
    guards = [
        pair for pair in pairs
        if is_guard(pair) and pair not in observers
    ]
    others = [
        pair for pair in pairs
        if pair not in observers and pair not in guards
    ]
    return observers + guards + others
