"""Fault plans: named sites, deterministic schedules, plan-space helpers.

A *site* is where a fault can strike, identified by
``(phase, method_id, concern)``:

========================  =============================================
phase                      meaning
========================  =============================================
``"precondition"``         before concern's precondition on a method
``"postaction"``           before concern's postaction (reverse unwind)
``"on_abort"``             before concern's compensation
``"delivery"``             before a network delivery; ``method_id``
                           holds the destination endpoint, concern is
                           empty
``"crash"``                a fail-stop process crash at a serving
                           checkpoint; ``method_id`` holds the node id,
                           ``concern`` the crash point (one of
                           :data:`CRASH_POINTS`)
========================  =============================================

``occurrence`` selects the k-th visit (1-based) to that site across the
run, so "the second time the sync precondition of ``open`` runs" is a
stable, replayable coordinate even under thread nondeterminism of
everything else.

Actions: ``"raise"`` throws :class:`InjectedFault` out of the site,
``"delay"`` sleeps ``arg`` seconds inside it (widening race windows),
``"skip"`` silently suppresses the site — the aspect (or delivery)
simply never happens, a no-op crash.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

PHASES = ("precondition", "postaction", "on_abort", "delivery", "crash")
ACTIONS = ("raise", "delay", "skip")

#: where inside one request's serving sequence a node crash can strike
#: (``docs/recovery.md``): before the servant runs, after the effect is
#: applied but before it is journaled, after the journal append but
#: before the reply is sent, and after the reply went out.
CRASH_POINTS = ("serve", "applied", "journaled", "replied")

#: site coordinate: (phase, method_id, concern)
Site = Tuple[str, str, str]


class InjectedFault(RuntimeError):
    """The exception a ``"raise"`` fault throws out of its site.

    Deliberately *not* a FrameworkError: injected faults model arbitrary
    third-party aspect bugs, and the containment layer must not get to
    special-case them.
    """

    def __init__(self, spec: "FaultSpec") -> None:
        self.spec = spec
        super().__init__(
            f"injected fault at {spec.phase} of "
            f"({spec.method_id!r}, {spec.concern!r}) "
            f"occurrence {spec.occurrence}"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault at one named site."""

    phase: str
    method_id: str
    concern: str = ""
    occurrence: int = 1
    action: str = "raise"
    #: delay seconds for ``"delay"`` actions; ignored otherwise
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}")
        if self.action not in ACTIONS:
            raise ValueError(f"action must be one of {ACTIONS}")
        if self.occurrence < 1:
            raise ValueError("occurrence is 1-based")
        if self.arg < 0:
            raise ValueError("arg must be non-negative")

    @property
    def site(self) -> Site:
        return (self.phase, self.method_id, self.concern)

    def describe(self) -> str:
        extra = f" +{self.arg:.3f}s" if self.action == "delay" else ""
        return (
            f"{self.action}{extra}@{self.phase}"
            f"({self.method_id},{self.concern})#{self.occurrence}"
        )


class FaultPlan:
    """An immutable, deterministic schedule of faults.

    Lookup is O(1) per site visit: specs are indexed by
    ``(site, occurrence)``. Two specs may not claim the same slot — a
    plan is a function from site visits to actions, not a lottery.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._slots: Dict[Tuple[Site, int], FaultSpec] = {}
        for spec in self.specs:
            slot = (spec.site, spec.occurrence)
            if slot in self._slots:
                raise ValueError(
                    f"duplicate fault slot {spec.describe()}"
                )
            self._slots[slot] = spec

    def match(self, phase: str, method_id: str, concern: str,
              occurrence: int) -> "FaultSpec | None":
        """The spec claiming this visit, or None."""
        return self._slots.get(((phase, method_id, concern), occurrence))

    def specs_at(self, site: Site) -> List[FaultSpec]:
        """Every spec targeting one site, across all occurrences.

        Plan compilers use this to report a site's armed faults in
        ``ActivationPlan.explain()`` without replaying visit counters.
        """
        return [spec for spec in self.specs if spec.site == site]

    def __len__(self) -> int:
        return len(self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __or__(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two plans (disjoint slots required)."""
        return FaultPlan(self.specs + other.specs)

    def describe(self) -> str:
        if not self.specs:
            return "<empty plan>"
        return " + ".join(spec.describe() for spec in self.specs)

    def __repr__(self) -> str:
        return f"<FaultPlan {self.describe()}>"

    # ------------------------------------------------------------------
    # deterministic sampling
    # ------------------------------------------------------------------
    @classmethod
    def seeded(cls, seed: int, sites: Sequence[Site], faults: int = 1,
               occurrences: Sequence[int] = (1, 2, 3),
               actions: Sequence[str] = ("raise", "skip"),
               delay: float = 0.005) -> "FaultPlan":
        """Sample a plan of ``faults`` specs from the site space.

        Same seed, same sites — same plan, every run, every machine:
        the sampler is a pure function of its arguments.
        """
        rng = random.Random(seed)
        slots = [
            (site, occurrence)
            for site in sites for occurrence in occurrences
        ]
        if faults > len(slots):
            raise ValueError(
                f"cannot place {faults} faults in {len(slots)} slots"
            )
        chosen = rng.sample(slots, faults)
        specs = []
        for (phase, method_id, concern), occurrence in chosen:
            action = rng.choice(list(actions))
            specs.append(FaultSpec(
                phase=phase, method_id=method_id, concern=concern,
                occurrence=occurrence, action=action,
                arg=delay if action == "delay" else 0.0,
            ))
        return cls(specs)


def protocol_sites(method_id: str, concerns: Sequence[str],
                   phases: Sequence[str] = (
                       "precondition", "postaction", "on_abort",
                   )) -> List[Site]:
    """Enumerate the protocol fault sites of one method's chain."""
    return [
        (phase, method_id, concern)
        for concern in concerns for phase in phases
    ]


def delivery_sites(endpoints: Sequence[str]) -> List[Site]:
    """Enumerate the network delivery fault sites of some endpoints.

    A delivery site is keyed by destination endpoint only (the
    ``method_id`` coordinate carries the endpoint; ``concern`` is
    empty) — see :meth:`FaultInjector.deliver`.
    """
    return [("delivery", endpoint, "") for endpoint in endpoints]


def crash_sites(node_ids: Sequence[str],
                points: Sequence[str] = CRASH_POINTS) -> List[Site]:
    """Enumerate the crash fault sites of some nodes.

    A crash site is keyed by node id (the ``method_id`` coordinate) and
    crash point (the ``concern`` coordinate) — see
    :meth:`FaultInjector.crash_due`. The crash-chaos suite sweeps the
    product of these sites against the message-loss space.
    """
    return [
        ("crash", node_id, point)
        for node_id in node_ids for point in points
    ]


def single_loss_plans(endpoints: Sequence[str],
                      occurrences: Sequence[int] = (1,),
                      ) -> List[FaultPlan]:
    """Every plan losing exactly one message to one endpoint.

    The chaos suite's message-loss space: for each endpoint and each
    k in ``occurrences``, one plan that silently drops (``"skip"``)
    the k-th delivery to that endpoint. Covers lost requests (node
    endpoints) and lost replies (client endpoints) alike.
    """
    return single_fault_plans(
        delivery_sites(endpoints), actions=("skip",),
        occurrences=occurrences,
    )


def single_fault_plans(sites: Sequence[Site],
                       actions: Sequence[str] = ("raise",),
                       occurrences: Sequence[int] = (1,),
                       delay: float = 0.005) -> List[FaultPlan]:
    """Every one-fault plan over the given sites — the full space."""
    plans = []
    for (phase, method_id, concern), occurrence, action in \
            itertools.product(sites, occurrences, actions):
        plans.append(FaultPlan([FaultSpec(
            phase=phase, method_id=method_id, concern=concern,
            occurrence=occurrence, action=action,
            arg=delay if action == "delay" else 0.0,
        )]))
    return plans


def double_fault_plans(sites: Sequence[Site],
                       actions: Sequence[str] = ("raise",),
                       occurrences: Sequence[int] = (1,),
                       delay: float = 0.005) -> List[FaultPlan]:
    """Every two-fault plan (unordered pairs of distinct *slots*).

    Pairs whose specs claim the same (site, occurrence) slot with
    different actions are not valid plans and are skipped.
    """
    singles = single_fault_plans(sites, actions, occurrences, delay)
    plans = []
    for first, second in itertools.combinations(singles, 2):
        try:
            plans.append(first | second)
        except ValueError:
            continue
    return plans
