"""Deterministic fault injection for the moderation protocol.

The containment guarantees of :mod:`repro.core.moderator` (exception-safe
unwind, quarantine, wake-always) are only as good as the failure
schedules they survive. This package makes those schedules *first class
and reproducible*:

* :class:`FaultSpec` names one fault site — the k-th precondition of
  concern X on method Y, the k-th postaction, the k-th compensation, the
  k-th network delivery to an endpoint — plus the action to take there
  (raise, delay, or a silent no-op "crash").
* :class:`FaultPlan` is an immutable set of specs; helpers enumerate the
  whole single- and double-fault plan space for a given site list, and
  ``FaultPlan.seeded`` samples it deterministically.
* :class:`FaultInjector` executes a plan: installed on a moderator (or a
  ``repro.dist.Network``) it counts visits per site and fires exactly
  the planned faults, every run, in the same places.

With no injector installed the hot path pays a single ``is None``
attribute check — measured in ``benchmarks/bench_faults.py``.
"""

from .plan import (
    CRASH_POINTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    crash_sites,
    delivery_sites,
    double_fault_plans,
    protocol_sites,
    single_fault_plans,
    single_loss_plans,
)
from .injector import FaultInjector

__all__ = [
    "CRASH_POINTS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "crash_sites",
    "delivery_sites",
    "double_fault_plans",
    "protocol_sites",
    "single_fault_plans",
    "single_loss_plans",
]
