"""The fault injector: executes a :class:`FaultPlan` against live code.

One injector instance can be installed on any number of moderators and
networks at once; all of them share the injector's per-site visit
counters, so a plan's coordinates span the whole system under test.

Thread safety: visit counting happens under a leaf lock; the fault
itself (raise / sleep / skip) executes outside it, so injection never
serializes the code paths it perturbs beyond one counter increment.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Callable, List, Optional, Tuple

from .plan import FaultPlan, FaultSpec, InjectedFault


class FaultInjector:
    """Counts site visits and fires the faults a plan assigns to them.

    Protocol sites are driven by the moderator calling :meth:`fire`;
    network delivery sites by ``Network`` calling :meth:`deliver`.
    ``fired`` records every spec that actually triggered, in order — the
    assertion surface for chaos tests ("this schedule fully executed").

    Args:
        plan: the fault schedule; an empty plan makes the injector a
            pure site-visit counter.
        sleep: clock hook for ``"delay"`` actions (injectable for
            virtual-time tests).
    """

    def __init__(self, plan: Optional[FaultPlan] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._sleep = sleep
        self._lock = threading.Lock()
        self._visits: dict = {}
        self.fired: List[FaultSpec] = []

    # ------------------------------------------------------------------
    # installation
    # ------------------------------------------------------------------
    def install(self, *targets: object) -> "FaultInjector":
        """Attach to moderators and/or networks (``fault_injector`` hook)."""
        for target in targets:
            if not hasattr(target, "fault_injector"):
                raise TypeError(
                    f"{type(target).__name__} has no fault_injector hook"
                )
            target.fault_injector = self
        return self

    @staticmethod
    def uninstall(*targets: object) -> None:
        for target in targets:
            target.fault_injector = None

    # ------------------------------------------------------------------
    # site visits
    # ------------------------------------------------------------------
    def _visit(self, phase: str, method_id: str,
               concern: str) -> Optional[FaultSpec]:
        key = (phase, method_id, concern)
        with self._lock:
            occurrence = self._visits.get(key, 0) + 1
            self._visits[key] = occurrence
            spec = self.plan.match(phase, method_id, concern, occurrence)
            if spec is not None:
                self.fired.append(spec)
            return spec

    def fire(self, phase: str, method_id: str, concern: str = "") -> bool:
        """Moderator hook: perform any planned fault at this site visit.

        Returns True when the site must be *skipped* (no-op crash), False
        to proceed normally; raises :class:`InjectedFault` for ``raise``
        actions. ``delay`` sleeps here and then proceeds.
        """
        spec = self._visit(phase, method_id, concern)
        if spec is None:
            return False
        if spec.action == "delay":
            self._sleep(spec.arg)
            return False
        if spec.action == "skip":
            return True
        raise InjectedFault(spec)

    def resolve(self, phase: str, method_id: str,
                concern: str = "") -> Callable[[], bool]:
        """Pre-resolve one site: a zero-arg form of :meth:`fire`.

        Compile-time hook for activation plans: the site coordinates are
        bound once at plan-compile time, so the hot loop pays a bare
        call instead of rebuilding the coordinate per round. Semantics
        are exactly :meth:`fire` — the site is still visit-counted on
        every call, so chaos-test occurrence coordinates stay stable.
        """
        return functools.partial(self.fire, phase, method_id, concern)

    def site_specs(self, phase: str, method_id: str,
                   concern: str = "") -> List[FaultSpec]:
        """Every planned spec targeting one site (any occurrence)."""
        return self.plan.specs_at((phase, method_id, concern))

    def crash_due(self, node_id: str, point: str) -> Optional[FaultSpec]:
        """Node hook: the planned crash for this serving checkpoint.

        Visit-counted like every other site, so "crash ``n1`` the
        second time an effect has just been applied" is a stable
        schedule coordinate. The node applies the crash itself
        (discarding volatile state and stopping its serve loops) —
        only the node knows how to die.
        """
        return self._visit("crash", node_id, point)

    def deliver(self, dest: str) -> Optional[FaultSpec]:
        """Network hook: the planned fault for this delivery, if any.

        The network applies the action itself (``skip`` drops the
        message, ``delay`` widens its latency, ``raise`` surfaces to the
        sender), because only the network knows how to do each one.
        """
        return self._visit("delivery", dest, "")

    # ------------------------------------------------------------------
    # introspection / reuse
    # ------------------------------------------------------------------
    def visits(self, phase: str, method_id: str, concern: str = "") -> int:
        """How many times a site has been visited so far."""
        with self._lock:
            return self._visits.get((phase, method_id, concern), 0)

    def all_fired(self) -> bool:
        """Whether every spec in the plan triggered at least once."""
        with self._lock:
            fired = set(id(spec) for spec in self.fired)
        return all(id(spec) in fired for spec in self.plan.specs) \
            if self.plan.specs else True

    def fired_summary(self) -> List[str]:
        with self._lock:
            return [spec.describe() for spec in self.fired]

    def reset(self, plan: Optional[FaultPlan] = None) -> "FaultInjector":
        """Clear counters (and optionally swap the plan) for a new run."""
        with self._lock:
            self._visits.clear()
            self.fired.clear()
            if plan is not None:
                self.plan = plan
        return self
