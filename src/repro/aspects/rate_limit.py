"""Throughput-regulation aspects: token bucket and concurrency window.

The paper lists "throughput" among the interaction concerns (Section 2).
Two standard regulators:

* :class:`TokenBucketAspect` — sustained-rate limiting with bursts. A
  depleted bucket either ABORTs the activation (load shedding, the
  default) or BLOCKs it. Note on BLOCK: moderator wait queues are woken
  by post-activations (and explicit :meth:`AspectModerator.notify`), so a
  blocked caller on an otherwise idle system re-evaluates only when other
  traffic completes — callers needing timed wakeups should pass a
  pre-activation timeout or use abort mode and retry.
* :class:`ConcurrencyWindowAspect` — bounds in-flight activations across
  the methods it is registered on (a semaphore with observability).
"""

from __future__ import annotations

import time
from typing import Callable, Dict

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


class TokenBucket:
    """Plain token bucket (no threading — callers hold their own lock)."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self.tokens = burst
        self._refilled_at = clock()

    def refill(self) -> None:
        now = self._clock()
        elapsed = now - self._refilled_at
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
            self._refilled_at = now

    def try_take(self, amount: float = 1.0) -> bool:
        self.refill()
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def give_back(self, amount: float = 1.0) -> None:
        self.tokens = min(self.burst, self.tokens + amount)


class TokenBucketAspect(StatefulAspect):
    """Admit at most ``rate`` activations/second with bursts of ``burst``."""

    concern = "ratelimit"
    # Admission control is stateful (tokens are *consumed*), so the
    # precondition is deliberately NOT idempotent — a cached RESUME
    # would admit without paying a token. It does commute with the
    # concurrency window (mutual): both regulators fully compensate a
    # RESUME via ``on_abort`` when the other vetoes, so evaluation
    # order only changes transient counter attribution, never the
    # composed vote or the steady-state token/occupancy level.
    commutes_with = ("window",)

    def __init__(self, rate: float, burst: float = 1.0,
                 mode: str = "abort",
                 clock: Callable[[], float] = time.monotonic) -> None:
        super().__init__()
        if mode not in ("abort", "block"):
            raise ValueError("mode must be 'abort' or 'block'")
        self.bucket = TokenBucket(rate, burst, clock)
        self.mode = mode
        self.admitted = 0
        self.rejected = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self.bucket.try_take():
                self.admitted += 1
                joinpoint.context["ratelimit_token"] = True
                return AspectResult.RESUME
            self.rejected += 1
            if self.mode == "block":
                return AspectResult.BLOCK
            return AspectResult.ABORT

    def on_abort(self, joinpoint: JoinPoint) -> None:
        # A token consumed for an activation a later aspect killed is
        # returned — the work never happened.
        with self._lock:
            if joinpoint.context.pop("ratelimit_token", False):
                self.bucket.give_back()
                self.admitted -= 1


class ConcurrencyWindowAspect(StatefulAspect):
    """Bound concurrent in-flight activations; expose occupancy stats."""

    concern = "window"
    commutes_with = ("ratelimit",)  # mutual — see TokenBucketAspect

    def __init__(self, limit: int, mode: str = "block") -> None:
        super().__init__()
        if limit <= 0:
            raise ValueError("limit must be positive")
        if mode not in ("abort", "block"):
            raise ValueError("mode must be 'abort' or 'block'")
        self.limit = limit
        self.mode = mode
        self.in_flight = 0
        self.peak = 0
        self.rejected = 0
        self.per_method: Dict[str, int] = {}

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self.in_flight >= self.limit:
                self.rejected += 1
                return (
                    AspectResult.BLOCK if self.mode == "block"
                    else AspectResult.ABORT
                )
            self.in_flight += 1
            self.peak = max(self.peak, self.in_flight)
            method = joinpoint.method_id
            self.per_method[method] = self.per_method.get(method, 0) + 1
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            self.in_flight -= 1

    on_abort = postaction
