"""Caching aspect: memoization through the skip-invocation extension.

Demonstrates the framework extension the paper's strict pre/post protocol
lacks: an aspect that *satisfies* the activation itself. On a cache hit
the precondition calls :meth:`JoinPoint.skip_invocation`, the proxy skips
the method body, and post-activation proceeds normally (so stacked
synchronization aspects stay balanced).

Only deterministic, side-effect-free methods should be cached; that is a
property of the binding (which cells you register this aspect into), not
of the aspect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


def default_key(joinpoint: JoinPoint) -> Hashable:
    """Cache key: method plus hashable args/kwargs."""
    return (
        joinpoint.method_id,
        joinpoint.args,
        tuple(sorted(joinpoint.kwargs.items())),
    )


class CachingAspect(StatefulAspect):
    """LRU memoization of participating-method results."""

    concern = "cache"
    never_blocks = True
    # NOT ``idempotent_precondition``: the precondition's entire payload
    # is the ``skip_invocation`` side effect — memoizing its RESUME
    # would skip the lookup and silently disable the cache. It does
    # commute with the pure argument checks (mutual declarations on
    # ValidationAspect/TypeContractAspect): a hit for arguments that
    # pass validation yields the same outcome in either order, and a
    # veto aborts the activation before any body runs either way.
    commutes_with = ("validate", "typecheck")

    def __init__(self, max_entries: int = 128, key=default_key) -> None:
        super().__init__()
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._key = key
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        try:
            key = self._key(joinpoint)
            hash(key)
        except TypeError:
            # Unhashable arguments: bypass the cache for this call.
            return AspectResult.RESUME
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                joinpoint.skip_invocation(self._entries[key])
            else:
                self.misses += 1
                joinpoint.context["cache_key"] = key
        return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        key = joinpoint.context.pop("cache_key", None)
        if key is None or joinpoint.exception is not None \
                or not joinpoint.has_result:
            return
        with self._lock:
            self._entries[key] = joinpoint.result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate(self, method_id: Optional[str] = None) -> int:
        """Drop cached entries (all, or those of one method). Returns count."""
        with self._lock:
            if method_id is None:
                count = len(self._entries)
                self._entries.clear()
                return count
            doomed = [
                key for key in self._entries
                if isinstance(key, tuple) and key and key[0] == method_id
            ]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0
