"""Scheduling aspects: admission order as a separated concern (paper §1).

The moderator's BLOCK/notify loop re-evaluates *all* parked activations
on every post-activation; which of them then RESUMEs is pure aspect
logic. Scheduling aspects exploit this: they admit waiting activations
in FIFO, LIFO or priority order, with a configurable concurrency level —
turning a scheduling policy into a pluggable, reusable object instead of
code tangled into the component.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


class _QueueSchedulingAspect(StatefulAspect):
    """Shared machinery: a wait list plus an in-flight counter.

    Subclasses define :meth:`_pick` — which waiting activation id may be
    admitted next.
    """

    concern = "schedule"

    def __init__(self, concurrency: int = 1) -> None:
        super().__init__()
        if concurrency <= 0:
            raise ValueError("concurrency must be positive")
        self.concurrency = concurrency
        self.in_flight = 0
        self.admitted = 0
        self._waiting: List[int] = []  # activation ids in arrival order

    def _pick(self) -> Optional[int]:
        raise NotImplementedError

    def _priority_of(self, joinpoint: JoinPoint) -> Any:
        return None  # overridden by priority scheduling

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        activation = joinpoint.activation_id
        with self._lock:
            if activation not in self._waiting \
                    and not joinpoint.context.get("sched_admitted"):
                self._waiting.append(activation)
                self._register(joinpoint)
            if self.in_flight < self.concurrency \
                    and self._pick() == activation:
                self._waiting.remove(activation)
                self._unregister(joinpoint)
                self.in_flight += 1
                self.admitted += 1
                joinpoint.context["sched_admitted"] = True
                return AspectResult.RESUME
            return AspectResult.BLOCK

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if joinpoint.context.pop("sched_admitted", False):
                self.in_flight -= 1

    def on_abort(self, joinpoint: JoinPoint) -> None:
        activation = joinpoint.activation_id
        with self._lock:
            if joinpoint.context.pop("sched_admitted", False):
                self.in_flight -= 1
                self.admitted -= 1
            elif activation in self._waiting:
                self._waiting.remove(activation)
                self._unregister(joinpoint)

    # Hooks for subclasses that track metadata per waiting activation.
    def _register(self, joinpoint: JoinPoint) -> None:
        pass

    def _unregister(self, joinpoint: JoinPoint) -> None:
        pass

    @property
    def queue_length(self) -> int:
        with self._lock:
            return len(self._waiting)


class FifoSchedulingAspect(_QueueSchedulingAspect):
    """Admit waiting activations strictly in arrival order.

    Plugged in front of a contended resource this guarantees fairness —
    the moderator's bare notify_all gives no ordering promise.
    """

    def _pick(self) -> Optional[int]:
        return self._waiting[0] if self._waiting else None


class LifoSchedulingAspect(_QueueSchedulingAspect):
    """Admit the most recently arrived activation first (stack order)."""

    def _pick(self) -> Optional[int]:
        return self._waiting[-1] if self._waiting else None


class PrioritySchedulingAspect(_QueueSchedulingAspect):
    """Admit the waiting activation with the best (lowest) priority.

    Priority is computed once at arrival by ``priority_of(joinpoint)``;
    the default reads ``joinpoint.kwargs["priority"]`` with
    ``default_priority`` as fallback. Ties break by arrival order, so
    equal-priority traffic is FIFO.
    """

    def __init__(self, concurrency: int = 1,
                 priority_of: Optional[Callable[[JoinPoint], float]] = None,
                 default_priority: float = 10.0) -> None:
        super().__init__(concurrency=concurrency)
        self._priority_fn = priority_of
        self.default_priority = default_priority
        self._priorities: Dict[int, float] = {}

    def _compute(self, joinpoint: JoinPoint) -> float:
        if self._priority_fn is not None:
            return float(self._priority_fn(joinpoint))
        value = joinpoint.kwargs.get("priority")
        if value is None:
            return self.default_priority
        return float(value)

    def _register(self, joinpoint: JoinPoint) -> None:
        self._priorities[joinpoint.activation_id] = self._compute(joinpoint)

    def _unregister(self, joinpoint: JoinPoint) -> None:
        self._priorities.pop(joinpoint.activation_id, None)

    def _pick(self) -> Optional[int]:
        if not self._waiting:
            return None
        return min(
            self._waiting,
            key=lambda activation: (
                self._priorities.get(activation, self.default_priority),
                self._waiting.index(activation),
            ),
        )
