"""Circuit-breaker aspect: fail fast when a method keeps failing.

Classic three-state breaker expressed in the moderator protocol:

* **closed** — preconditions RESUME; postactions count failures; too many
  consecutive failures trip the breaker;
* **open** — preconditions ABORT immediately (load shedding) until the
  reset timeout elapses;
* **half-open** — after the timeout, a bounded number of probe
  activations RESUME; a success closes the breaker, a failure re-opens
  it.

This is a fault-tolerance concern (paper Section 2) that genuinely needs
*both* protocol phases, which is why it fits the Aspect Moderator shape
so naturally: the decision lives in ``precondition``, the evidence in
``postaction``.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Optional

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


class BreakerState(enum.Enum):
    """The three classic breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreakerAspect(StatefulAspect):
    """Per-aspect-instance circuit breaker.

    Register one instance per protected method (or share one across a
    group of methods whose health should be judged jointly).

    Args:
        failure_threshold: consecutive failures that trip the breaker.
        reset_timeout: seconds the breaker stays open before probing.
        half_open_probes: concurrent probes allowed while half-open.
        clock: injectable time source (tests use a fake clock).
    """

    concern = "breaker"
    never_blocks = True

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        super().__init__()
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.probes_in_flight = 0
        self.rejected = 0
        self.trips = 0

    # ------------------------------------------------------------------
    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self.state is BreakerState.OPEN:
                if self._clock() - (self.opened_at or 0) >= self.reset_timeout:
                    self.state = BreakerState.HALF_OPEN
                    self.probes_in_flight = 0
                else:
                    self.rejected += 1
                    return AspectResult.ABORT
            if self.state is BreakerState.HALF_OPEN:
                if self.probes_in_flight >= self.half_open_probes:
                    self.rejected += 1
                    return AspectResult.ABORT
                self.probes_in_flight += 1
                joinpoint.context["breaker_probe"] = True
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            probe = joinpoint.context.pop("breaker_probe", False)
            if probe:
                self.probes_in_flight = max(0, self.probes_in_flight - 1)
            if joinpoint.exception is not None:
                self.consecutive_failures += 1
                should_trip = (
                    self.state is BreakerState.HALF_OPEN
                    or self.consecutive_failures >= self.failure_threshold
                )
                if should_trip and self.state is not BreakerState.OPEN:
                    self.state = BreakerState.OPEN
                    self.opened_at = self._clock()
                    self.trips += 1
            else:
                self.consecutive_failures = 0
                if self.state is BreakerState.HALF_OPEN:
                    self.state = BreakerState.CLOSED

    def on_abort(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if joinpoint.context.pop("breaker_probe", False):
                self.probes_in_flight = max(0, self.probes_in_flight - 1)

    # ------------------------------------------------------------------
    def force_open(self) -> None:
        """Manually trip the breaker (operational control)."""
        with self._lock:
            self.state = BreakerState.OPEN
            self.opened_at = self._clock()
            self.trips += 1

    def force_close(self) -> None:
        with self._lock:
            self.state = BreakerState.CLOSED
            self.consecutive_failures = 0
            self.probes_in_flight = 0
