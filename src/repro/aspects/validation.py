"""Validation aspects: argument and state contracts as a concern.

A contract violation is not a synchronization condition — waiting will
never fix a malformed argument — so validation failures ABORT. This is
the concern the paper's ``precondition()`` naming most directly evokes
(design-by-contract), separated from the component exactly like the
synchronization constraints are.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult

#: A named predicate over the join point.
Rule = Tuple[str, Callable[[JoinPoint], bool]]


class ValidationAspect(StatefulAspect):
    """ABORT activations whose arguments violate declared rules.

    Rules are ``(description, predicate)`` pairs evaluated in order; the
    first failing rule aborts the activation and is recorded on the join
    point (``context["violated_rule"]``) and in :attr:`violations`.

    Example::

        ValidationAspect(rules=[
            ("ticket id non-empty", lambda jp: bool(jp.args and jp.args[0])),
        ])
    """

    concern = "validate"
    never_blocks = True
    # Argument validation reads the join point only, so it commutes with
    # the type-contract check and the cache lookup (mutual — see
    # TypeContractAspect and CachingAspect).
    commutes_with = ("typecheck", "cache")

    def __init__(self, rules: Optional[List[Rule]] = None,
                 cache_key: Optional[Callable[[JoinPoint], Any]] = None
                 ) -> None:
        super().__init__()
        self.rules: List[Rule] = list(rules or [])
        self.checked = 0
        self.violations: Dict[str, int] = {}
        # Rule purity is a property of the *binding*, not the class:
        # pass a cache_key identifying a decision's inputs to declare
        # these rules memoizable (only passing checks are ever cached;
        # the ``checked`` counter then undercounts by the hits).
        if cache_key is not None:
            self.cache_key = cache_key
            self.idempotent_precondition = True

    def add_rule(self, description: str,
                 predicate: Callable[[JoinPoint], bool]) -> None:
        with self._lock:
            self.rules.append((description, predicate))

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            rules = list(self.rules)
            self.checked += 1
        for description, rule_predicate in rules:
            try:
                ok = bool(rule_predicate(joinpoint))
            except Exception:  # noqa: BLE001 - a crashing rule is a violation
                ok = False
            if not ok:
                with self._lock:
                    self.violations[description] = (
                        self.violations.get(description, 0) + 1
                    )
                joinpoint.context["violated_rule"] = description
                return AspectResult.ABORT
        return AspectResult.RESUME


class TypeContractAspect(StatefulAspect):
    """Positional-argument type contracts per method.

    ``contracts`` maps method -> tuple of expected types (checked
    positionally; extra arguments are unchecked).
    """

    concern = "typecheck"
    never_blocks = True
    commutes_with = ("validate", "cache")
    # ``isinstance`` depends on the argument *types* alone, so keying a
    # memo on them is exact: a RESUME for this type vector is a RESUME
    # forever (contract tables are fixed at construction). Violations
    # are never cached — only passing checks are.
    idempotent_precondition = True

    @staticmethod
    def cache_key(joinpoint: JoinPoint) -> Tuple[Any, ...]:
        return (
            joinpoint.method_id,
            tuple(type(argument) for argument in joinpoint.args),
        )

    def __init__(self, contracts: Dict[str, Tuple[type, ...]]) -> None:
        super().__init__()
        self.contracts = dict(contracts)
        self.violations = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        expected = self.contracts.get(joinpoint.method_id)
        if expected is None:
            return AspectResult.RESUME
        for index, expected_type in enumerate(expected):
            if index >= len(joinpoint.args):
                break
            if not isinstance(joinpoint.args[index], expected_type):
                with self._lock:
                    self.violations += 1
                joinpoint.context["violated_rule"] = (
                    f"argument {index} of {joinpoint.method_id} must be "
                    f"{expected_type.__name__}"
                )
                return AspectResult.ABORT
        return AspectResult.RESUME


class StateInvariantAspect(StatefulAspect):
    """Check a component invariant before *and* after every activation.

    A violated invariant before the call aborts it; a violated invariant
    after the call raises immediately (the component is corrupt — hiding
    that would be worse than failing). Callers see the containment
    wrapper: an :class:`~repro.core.AspectFault` whose ``original`` is
    this aspect's ``AssertionError``; the rest of the reverse unwind
    still runs, so sibling aspects release their state first.
    """

    concern = "invariant"
    never_blocks = True

    def __init__(self, invariant: Callable[[Any], bool],
                 description: str = "component invariant") -> None:
        super().__init__()
        self.invariant = invariant
        self.description = description
        self.pre_violations = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        if not self.invariant(joinpoint.component):
            with self._lock:
                self.pre_violations += 1
            joinpoint.context["violated_rule"] = self.description
            return AspectResult.ABORT
        return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        if joinpoint.exception is None \
                and not self.invariant(joinpoint.component):
            raise AssertionError(
                f"invariant violated after {joinpoint.method_id}: "
                f"{self.description}"
            )
