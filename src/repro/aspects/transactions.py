"""Transactional aspects: state rollback as a separated concern.

Fault tolerance in the paper's concern list includes recovering from
failed operations. :class:`SnapshotTransactionAspect` gives any
component transactional method semantics without the component knowing:

* ``precondition`` snapshots the declared attributes of the component;
* ``postaction`` discards the snapshot on success and *restores* it
  when the method body raised — the component never observes partial
  updates from failed activations;
* ``on_abort`` discards the snapshot (nothing ran, nothing to undo).

:class:`UndoLogAspect` is the finer-grained variant for components that
expose explicit ``undo`` callables per method.

Restriction (documented, test-enforced): snapshots copy *values*, so
declared attributes must be value-like (numbers, strings, lists, dicts
of plain data). Components holding open resources need the undo-log
variant instead.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterable, List, Optional

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult

#: context key holding the per-activation snapshot
SNAPSHOT_KEY = "__txn_snapshot__"


class SnapshotTransactionAspect(StatefulAspect):
    """Restore component attributes when the method body raises.

    Args:
        attributes: component attribute names to protect. ``None``
            protects every public attribute present at snapshot time.
    """

    concern = "txn"
    never_blocks = True

    def __init__(self, attributes: Optional[Iterable[str]] = None) -> None:
        super().__init__()
        self.attributes = list(attributes) if attributes is not None else None
        self.commits = 0
        self.rollbacks = 0

    def _protected(self, component: Any) -> List[str]:
        if self.attributes is not None:
            return self.attributes
        return [
            name for name in vars(component)
            if not name.startswith("_")
        ]

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        component = joinpoint.component
        if component is None:
            return AspectResult.RESUME
        snapshot = {
            name: copy.deepcopy(getattr(component, name))
            for name in self._protected(component)
            if hasattr(component, name)
        }
        joinpoint.context[SNAPSHOT_KEY] = snapshot
        return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        snapshot = joinpoint.context.pop(SNAPSHOT_KEY, None)
        if snapshot is None or joinpoint.component is None:
            return
        if joinpoint.exception is None:
            with self._lock:
                self.commits += 1
            return
        for name, value in snapshot.items():
            setattr(joinpoint.component, name, value)
        with self._lock:
            self.rollbacks += 1

    def on_abort(self, joinpoint: JoinPoint) -> None:
        joinpoint.context.pop(SNAPSHOT_KEY, None)


#: an undo entry: zero-argument callable reversing one recorded effect
Undo = Callable[[], None]


class UndoLogAspect(StatefulAspect):
    """Run registered undo callables when the method body raises.

    The component (or earlier aspects) append compensations during the
    activation via :meth:`record`, reading the active log from
    ``joinpoint.context``. Undo entries run in reverse order.
    """

    concern = "txn"
    never_blocks = True
    CONTEXT_KEY = "__txn_undo_log__"

    def __init__(self) -> None:
        super().__init__()
        self.commits = 0
        self.rollbacks = 0
        self.undo_failures = 0

    @classmethod
    def record(cls, joinpoint: JoinPoint, undo: Undo) -> None:
        """Append a compensation for one applied effect."""
        joinpoint.context.setdefault(cls.CONTEXT_KEY, []).append(undo)

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        joinpoint.context[self.CONTEXT_KEY] = []
        return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        log: List[Undo] = joinpoint.context.pop(self.CONTEXT_KEY, [])
        if joinpoint.exception is None:
            with self._lock:
                self.commits += 1
            return
        for undo in reversed(log):
            try:
                undo()
            except Exception:  # noqa: BLE001 - undo must not mask the cause
                with self._lock:
                    self.undo_failures += 1
        with self._lock:
            self.rollbacks += 1

    def on_abort(self, joinpoint: JoinPoint) -> None:
        joinpoint.context.pop(self.CONTEXT_KEY, None)
