"""Coordination aspects: multi-party interaction protocols (paper §2).

"Coordination" in the paper's concern list covers constraints that span
several services of one component (or several components). Provided
schemata:

* :class:`TurnTakingAspect` — strict alternation between two method
  groups (a ping/pong protocol on top of any component);
* :class:`PhaseAspect` — methods enabled only in declared system phases,
  with explicit phase transitions notifying the moderator;
* :class:`QuorumAspect` — an operation proceeds only once at least *k*
  distinct callers have requested it (e.g. commit-after-quorum);
* :class:`DependencyAspect` — method B only after method A has completed
  at least once (lifecycle ordering, e.g. ``init`` before ``serve``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.moderator import AspectModerator
from repro.core.results import AspectResult


class TurnTakingAspect(StatefulAspect):
    """Enforce strict alternation between two method groups.

    ``first`` goes first. Example: a referee component whose ``white``
    and ``black`` moves must alternate regardless of caller scheduling.
    """

    concern = "turns"

    def __init__(self, first: Iterable[str], second: Iterable[str]) -> None:
        super().__init__()
        self.first = set(first)
        self.second = set(second)
        overlap = self.first & self.second
        if overlap:
            raise ValueError(f"methods {overlap!r} in both groups")
        self.turn = "first"
        self.transitions = 0

    def _group(self, joinpoint: JoinPoint) -> str:
        if joinpoint.method_id in self.first:
            return "first"
        if joinpoint.method_id in self.second:
            return "second"
        raise LookupError(f"{joinpoint.method_id!r} not in either group")

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self._group(joinpoint) != self.turn:
                return AspectResult.BLOCK
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if joinpoint.exception is None:
                self.turn = "second" if self.turn == "first" else "first"
                self.transitions += 1


class PhaseAspect(StatefulAspect):
    """Enable methods only during declared phases.

    ``schedule`` maps method -> set of phases in which it may run.
    Transitioning phases from outside the protocol must wake parked
    activations; pass the moderator to :meth:`transition` (or call
    :meth:`AspectModerator.notify` yourself).
    """

    concern = "phase"

    def __init__(self, schedule: Dict[str, Set[str]],
                 initial: str, abort_unknown: bool = True) -> None:
        super().__init__()
        self.schedule = {k: set(v) for k, v in schedule.items()}
        self.phase = initial
        self.abort_unknown = abort_unknown
        self.history = [initial]

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            allowed = self.schedule.get(joinpoint.method_id)
            if allowed is None:
                if self.abort_unknown:
                    return AspectResult.ABORT
                return AspectResult.RESUME
            if self.phase in allowed:
                return AspectResult.RESUME
            return AspectResult.BLOCK

    def transition(self, new_phase: str,
                   moderator: Optional[AspectModerator] = None) -> None:
        """Move the system to ``new_phase`` and wake waiting activations."""
        with self._lock:
            self.phase = new_phase
            self.history.append(new_phase)
        if moderator is not None:
            moderator.notify()


class QuorumAspect(StatefulAspect):
    """Admit an operation only once ``quorum`` distinct callers request it.

    Callers are distinguished by ``joinpoint.caller`` (falling back to
    thread name). All members of a full quorum are admitted; the quorum
    then resets for the next round.
    """

    concern = "quorum"

    def __init__(self, quorum: int) -> None:
        super().__init__()
        if quorum <= 0:
            raise ValueError("quorum must be positive")
        self.quorum = quorum
        self.round = 0
        self.requesters: Set[str] = set()
        self.rounds_completed = 0

    def _identity(self, joinpoint: JoinPoint) -> str:
        if joinpoint.caller is not None:
            return str(joinpoint.caller)
        return joinpoint.thread_name

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            joined_round = joinpoint.context.get("quorum_round")
            if joined_round is None:
                joinpoint.context["quorum_round"] = self.round
                self.requesters.add(self._identity(joinpoint))
                joined_round = self.round
            if joined_round < self.round:
                # The round this caller joined has been satisfied.
                del joinpoint.context["quorum_round"]
                return AspectResult.RESUME
            if len(self.requesters) >= self.quorum:
                self.round += 1
                self.rounds_completed += 1
                self.requesters = set()
                del joinpoint.context["quorum_round"]
                return AspectResult.RESUME
            return AspectResult.BLOCK

    def on_abort(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            joined_round = joinpoint.context.pop("quorum_round", None)
            if joined_round is not None and joined_round == self.round:
                self.requesters.discard(self._identity(joinpoint))


class DependencyAspect(StatefulAspect):
    """Method-ordering dependencies: B waits until A has completed.

    ``requires`` maps a method to the set of methods that must each have
    completed successfully at least once before it may run.
    """

    concern = "depends"

    def __init__(self, requires: Dict[str, Set[str]]) -> None:
        super().__init__()
        self.requires = {k: set(v) for k, v in requires.items()}
        self.completed: Set[str] = set()

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            needed = self.requires.get(joinpoint.method_id, set())
            if needed - self.completed:
                return AspectResult.BLOCK
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if joinpoint.exception is None:
                self.completed.add(joinpoint.method_id)
