"""Fault-tolerance by retry: policies, aspect-side accounting, wrappers.

The moderator protocol is strictly pre/post (as in the paper), so a
concern that must re-run the method body — retry — composes at the call
layer instead: :func:`retrying` wraps any callable (typically an already
guarded proxy method) and re-invokes the *whole* moderated activation on
failure. Each attempt therefore passes through pre-activation again,
keeping synchronization and security constraints honest across retries.

:class:`FailureAccountingAspect` is the in-protocol half: it observes
exceptions flowing through post-activation and keeps per-method failure
statistics that drive the circuit breaker and the benchmark reports.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint


@dataclass(frozen=True)
class RetryPolicy:
    """When and how often to retry.

    Attributes:
        max_attempts: total attempts including the first call.
        base_delay: initial sleep between attempts, in seconds.
        multiplier: exponential backoff factor.
        max_delay: backoff ceiling.
        jitter: fraction of the delay randomized away (0 disables).
        retry_on: exception types considered transient.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def delay_for(self, attempt: int,
                  rng: Optional[random.Random] = None) -> float:
        """Backoff before attempt number ``attempt`` (attempt 2 = first retry).

        Jitter draws from ``rng`` — an explicit seeded instance keeps a
        retry schedule replayable. When omitted, a process-wide seeded
        generator is used (never the module-level ``random``, whose
        global state any library may reseed or advance).
        """
        if self.base_delay <= 0:
            return 0.0
        delay = min(
            self.base_delay * (self.multiplier ** max(0, attempt - 2)),
            self.max_delay,
        )
        if self.jitter > 0:
            rng = rng if rng is not None else _default_rng()
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def should_retry(self, attempt: int, exc: BaseException) -> bool:
        return attempt < self.max_attempts and isinstance(exc, self.retry_on)


#: default jitter seed: private to the framework so nothing else
#: advances the sequence, fixed so unseeded wrappers are still replayable
_JITTER_SEED = 0x52657472  # "Retr"
_DEFAULT_RNG: Optional[random.Random] = None


def _default_rng() -> random.Random:
    """Process-wide seeded jitter source (lazily created)."""
    global _DEFAULT_RNG
    if _DEFAULT_RNG is None:
        _DEFAULT_RNG = random.Random(_JITTER_SEED)
    return _DEFAULT_RNG


def retrying(func: Callable[..., Any], policy: RetryPolicy,
             sleep: Callable[[float], None] = time.sleep,
             rng: Optional[random.Random] = None,
             seed: Optional[int] = None) -> Callable[..., Any]:
    """Wrap ``func`` so transient failures are retried per ``policy``.

    Returns a callable with the same signature. The last exception is
    re-raised when attempts are exhausted.

    Jitter determinism: every wrapper owns a seeded ``random.Random`` —
    pass ``rng`` to share one across wrappers, ``seed`` to derive a
    private one, or neither for a fixed default seed. Retry schedules in
    tests and benches are therefore reproducible run over run; the
    module-level ``random`` (shared, reseedable global state) is never
    consulted.
    """
    if rng is None:
        rng = random.Random(_JITTER_SEED if seed is None else seed)

    def call_with_retry(*args: Any, **kwargs: Any) -> Any:
        attempt = 0
        while True:
            attempt += 1
            try:
                return func(*args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - filtered below
                if not policy.should_retry(attempt, exc):
                    raise
                delay = policy.delay_for(attempt + 1, rng)
                if delay > 0:
                    sleep(delay)

    call_with_retry.__name__ = getattr(func, "__name__", "retrying")
    call_with_retry.__doc__ = func.__doc__
    return call_with_retry


@dataclass
class FailureStats:
    """Per-method failure counters."""

    calls: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    last_failure_at: Optional[float] = None
    by_exception: Dict[str, int] = field(default_factory=dict)

    @property
    def failure_rate(self) -> float:
        if self.calls == 0:
            return 0.0
        return self.failures / self.calls


class FailureAccountingAspect(StatefulAspect):
    """Observe method outcomes and keep failure statistics per method."""

    concern = "fault"
    never_blocks = True

    def __init__(self, clock=time.monotonic) -> None:
        super().__init__()
        self._clock = clock
        self.stats: Dict[str, FailureStats] = {}

    def _stats_for(self, method_id: str) -> FailureStats:
        stats = self.stats.get(method_id)
        if stats is None:
            stats = FailureStats()
            self.stats[method_id] = stats
        return stats

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            stats = self._stats_for(joinpoint.method_id)
            stats.calls += 1
            if joinpoint.exception is not None:
                stats.failures += 1
                stats.consecutive_failures += 1
                stats.last_failure_at = self._clock()
                name = type(joinpoint.exception).__name__
                stats.by_exception[name] = stats.by_exception.get(name, 0) + 1
            else:
                stats.consecutive_failures = 0

    def report(self) -> Dict[str, Dict[str, Any]]:
        with self._lock:
            return {
                method_id: {
                    "calls": stats.calls,
                    "failures": stats.failures,
                    "failure_rate": stats.failure_rate,
                    "consecutive_failures": stats.consecutive_failures,
                }
                for method_id, stats in self.stats.items()
            }
