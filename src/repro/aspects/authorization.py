"""Authorization aspect: role-based access control per participating method.

Complements :mod:`repro.aspects.authentication`: authentication decides
*who* the caller is; authorization decides whether that principal may
invoke *this* method. The paper lists "security" among the interaction
concerns of Section 2; RBAC is its standard decomposition.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


class RoleRegistry:
    """principal -> roles and role -> permitted methods tables."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roles: Dict[str, Set[str]] = {}
        self._grants: Dict[str, Set[str]] = {}
        #: monotonic table version, bumped by every mutation; cached
        #: authorization decisions embed it in their cache key, so a
        #: revoke invalidates them *exactly* (no TTL window of stale
        #: grants — the old revision simply never produces a hit again)
        self.revision = 0

    def assign(self, principal: str, *roles: str) -> None:
        with self._lock:
            self._roles.setdefault(principal, set()).update(roles)
            self.revision += 1

    def revoke(self, principal: str, role: str) -> None:
        with self._lock:
            self._roles.get(principal, set()).discard(role)
            self.revision += 1

    def permit(self, role: str, *method_ids: str) -> None:
        with self._lock:
            self._grants.setdefault(role, set()).update(method_ids)
            self.revision += 1

    def roles_of(self, principal: str) -> Set[str]:
        with self._lock:
            return set(self._roles.get(principal, set()))

    def allowed(self, principal: str, method_id: str) -> bool:
        with self._lock:
            roles = self._roles.get(principal, set())
            return any(
                method_id in self._grants.get(role, set()) for role in roles
            )

    def method_listed(self, method_id: str) -> bool:
        """Whether any role explicitly grants ``method_id``."""
        with self._lock:
            return any(method_id in methods for methods in self._grants.values())


class AuthorizationAspect(StatefulAspect):
    """ABORT activations whose principal lacks permission for the method.

    Reads the principal resolved by the authentication aspect from
    ``joinpoint.context['principal']`` (composition order matters —
    authenticate before authorize), falling back to ``joinpoint.caller``.
    """

    concern = "authorize"
    is_guard = True
    never_blocks = True
    # a broken permission check must never admit unchecked callers
    fault_policy = "fail_closed"
    # The decision is a pure function of (table revision, principal,
    # method) — see :meth:`cache_key` — so granted RESUMEs memoize
    # soundly: any table change bumps the revision and misses every old
    # key, and denials are never cached at all. The ``granted`` counter
    # undercounts by the memo hits. fail_closed carries over: a raising
    # key (unhashable principal) propagates as this cell's fault.
    idempotent_precondition = True

    def __init__(self, registry: RoleRegistry,
                 allow_unlisted: bool = False) -> None:
        super().__init__()
        self.registry = registry
        #: when True, methods nobody was explicitly permitted to call are
        #: open to every principal (deny-by-default otherwise).
        self.allow_unlisted = allow_unlisted
        self.granted = 0
        self.denied = 0

    def _principal(self, joinpoint: JoinPoint) -> Optional[str]:
        principal = joinpoint.context.get("principal")
        if principal is None and joinpoint.caller is not None:
            principal = str(joinpoint.caller)
        return principal

    def cache_key(self, joinpoint: JoinPoint) -> tuple:
        return (
            self.registry.revision,
            self._principal(joinpoint),
            joinpoint.method_id,
        )

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        principal = self._principal(joinpoint)
        allowed = (
            principal is not None
            and self.registry.allowed(principal, joinpoint.method_id)
        )
        if not allowed and self.allow_unlisted and principal is not None:
            allowed = not self.registry.method_listed(joinpoint.method_id)
        with self._lock:
            if allowed:
                self.granted += 1
                return AspectResult.RESUME
            self.denied += 1
            return AspectResult.ABORT
