"""Synchronization aspects: object concurrency constraints as aspects.

These reproduce the paper's central example — Figure 7's
``OpenSynchronizationAspect`` guarding a bounded buffer — and generalize
it into a small library of classic synchronization schemata (mutex,
counting semaphore, readers/writer, barrier), each expressed purely as
``precondition`` / ``postaction`` pairs with compensation.

Faithfulness note: the paper's preconditions mutate their counters
(``++ActiveOpen; ++component.noItems``) *before* the method executes and
commit the rest in ``postaction``. These aspects follow the same
reserve-in-precondition / commit-in-postaction discipline, with two
repairs the published listings lack:

* ``on_abort`` rolls the reservation back when a later aspect in the
  chain blocks or aborts;
* ``postaction`` inspects ``joinpoint.exception`` and rolls back instead
  of committing when the method body raised.
"""

from __future__ import annotations

from typing import Any, Optional, Set

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


class BoundedBufferSync(StatefulAspect):
    """Producer/consumer guard for a bounded buffer (paper Figure 7).

    One instance guards *both* the producing method (``open``/``put``)
    and the consuming method (``assign``/``take``) of a component. The
    component only needs a ``capacity`` attribute; occupancy is tracked
    by the aspect itself (``reserved``), keeping the functional component
    free of any concurrency state — the separation the paper argues for.

    The paper's listing also enforces mutual exclusion per direction via
    ``ActiveOpen == 0``: at most one producer (and one consumer) may be
    inside the component at a time. ``exclusive=True`` reproduces that;
    ``exclusive=False`` relaxes it to pure occupancy bounds.
    """

    concern = "sync"

    def __init__(self, component: Any, producer: str = "open",
                 consumer: str = "assign", exclusive: bool = True,
                 capacity: Optional[int] = None) -> None:
        super().__init__()
        self.component = component
        self.producer = producer
        self.consumer = consumer
        self.exclusive = exclusive
        self.capacity = (
            capacity if capacity is not None
            else int(getattr(component, "capacity"))
        )
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        #: committed occupancy (items actually in the buffer)
        self.items = 0
        #: in-flight producers / consumers that have reserved a slot
        self.active_producers = 0
        self.active_consumers = 0

    def _role(self, joinpoint: JoinPoint) -> str:
        if joinpoint.method_id == self.producer:
            return "producer"
        if joinpoint.method_id == self.consumer:
            return "consumer"
        raise LookupError(
            f"{type(self).__name__} guards {self.producer!r}/"
            f"{self.consumer!r}, not {joinpoint.method_id!r}"
        )

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self._role(joinpoint) == "producer":
                free = self.capacity - self.items - self.active_producers
                if free <= 0:
                    return AspectResult.BLOCK
                if self.exclusive and self.active_producers > 0:
                    return AspectResult.BLOCK
                self.active_producers += 1
            else:
                available = self.items - self.active_consumers
                if available <= 0:
                    return AspectResult.BLOCK
                if self.exclusive and self.active_consumers > 0:
                    return AspectResult.BLOCK
                self.active_consumers += 1
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if self._role(joinpoint) == "producer":
                self.active_producers -= 1
                if joinpoint.exception is None:
                    self.items += 1
            else:
                self.active_consumers -= 1
                if joinpoint.exception is None:
                    self.items -= 1

    def on_abort(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if self._role(joinpoint) == "producer":
                self.active_producers -= 1
            else:
                self.active_consumers -= 1

    @property
    def occupancy(self) -> int:
        """Committed item count (for tests and invariant checks)."""
        with self._lock:
            return self.items


class MutexAspect(StatefulAspect):
    """Mutual exclusion across all methods the aspect is registered on.

    Registering one instance on several methods of a component turns
    those methods into a monitor: at most one activation runs at a time.
    Non-reentrant by design; a reentrant variant would need per-thread
    ownership, see :class:`ReentrantMutexAspect`.
    """

    concern = "mutex"

    def __init__(self) -> None:
        super().__init__()
        self.holder: Optional[int] = None

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self.holder is not None:
                return AspectResult.BLOCK
            self.holder = joinpoint.activation_id
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if self.holder == joinpoint.activation_id:
                self.holder = None

    on_abort = postaction


class ReentrantMutexAspect(StatefulAspect):
    """Per-thread reentrant mutual exclusion."""

    concern = "mutex"

    def __init__(self) -> None:
        super().__init__()
        self.owner: Optional[str] = None
        self.depth = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self.owner is None or self.owner == joinpoint.thread_name:
                self.owner = joinpoint.thread_name
                self.depth += 1
                return AspectResult.RESUME
            return AspectResult.BLOCK

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if self.owner == joinpoint.thread_name:
                self.depth -= 1
                if self.depth == 0:
                    self.owner = None

    on_abort = postaction


class SemaphoreAspect(StatefulAspect):
    """Counting semaphore: at most ``permits`` concurrent activations."""

    concern = "semaphore"

    def __init__(self, permits: int) -> None:
        super().__init__()
        if permits <= 0:
            raise ValueError("permits must be positive")
        self.permits = permits
        self.in_use = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self.in_use >= self.permits:
                return AspectResult.BLOCK
            self.in_use += 1
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            self.in_use -= 1

    on_abort = postaction


class ReadersWriterAspect(StatefulAspect):
    """Readers/writer constraint over two method sets.

    Methods in ``readers`` may run concurrently with each other; methods
    in ``writers`` require exclusive access. Writer-preference: once a
    writer is waiting, new readers block (tracked via ``writers_waiting``
    so a stream of readers cannot starve writers).
    """

    concern = "rw"

    def __init__(self, readers: Set[str], writers: Set[str]) -> None:
        super().__init__()
        self.readers = set(readers)
        self.writers = set(writers)
        overlap = self.readers & self.writers
        if overlap:
            raise ValueError(f"methods {overlap!r} listed as both roles")
        self.active_readers = 0
        self.active_writers = 0
        self.writers_waiting = 0

    def _is_writer(self, joinpoint: JoinPoint) -> bool:
        if joinpoint.method_id in self.writers:
            return True
        if joinpoint.method_id in self.readers:
            return False
        raise LookupError(
            f"{joinpoint.method_id!r} not declared as reader or writer"
        )

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            if self._is_writer(joinpoint):
                if self.active_readers or self.active_writers:
                    # Remember the waiter once per activation so readers
                    # defer to it; the flag clears when it finally enters.
                    if not joinpoint.context.get("rw_waiting"):
                        joinpoint.context["rw_waiting"] = True
                        self.writers_waiting += 1
                    return AspectResult.BLOCK
                if joinpoint.context.pop("rw_waiting", False):
                    self.writers_waiting -= 1
                self.active_writers = 1
                return AspectResult.RESUME
            if self.active_writers or self.writers_waiting:
                return AspectResult.BLOCK
            self.active_readers += 1
            return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            if self._is_writer(joinpoint):
                self.active_writers = 0
            else:
                self.active_readers -= 1

    def on_abort(self, joinpoint: JoinPoint) -> None:
        self.postaction(joinpoint)


class BarrierAspect(StatefulAspect):
    """Rendezvous barrier: activations proceed in cohorts of ``parties``.

    The first ``parties - 1`` callers BLOCK; the arrival of the final
    party advances the generation and releases the whole cohort (their
    preconditions re-evaluate and see the advanced generation). A waiter
    resumes exactly when the generation it arrived in has closed, so a
    released cohort can never absorb members of the next one.
    """

    concern = "barrier"

    def __init__(self, parties: int) -> None:
        super().__init__()
        if parties <= 0:
            raise ValueError("parties must be positive")
        self.parties = parties
        self.generation = 0
        self.arrived = 0

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        with self._lock:
            arrived_in = joinpoint.context.get("barrier_generation")
            if arrived_in is None:
                joinpoint.context["barrier_generation"] = self.generation
                self.arrived += 1
                if self.arrived == self.parties:
                    # Final party: close this generation, release cohort.
                    self.arrived = 0
                    self.generation += 1
                    del joinpoint.context["barrier_generation"]
                    return AspectResult.RESUME
                return AspectResult.BLOCK
            if self.generation > arrived_in:
                del joinpoint.context["barrier_generation"]
                return AspectResult.RESUME
            return AspectResult.BLOCK

    def on_abort(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            arrived_in = joinpoint.context.pop("barrier_generation", None)
            if arrived_in is not None and arrived_in == self.generation:
                self.arrived = max(0, self.arrived - 1)


class GuardAspect(StatefulAspect):
    """Generic guard: BLOCK until ``condition(joinpoint)`` holds.

    The building block for ad-hoc synchronization constraints::

        GuardAspect(lambda jp: server.is_open)
    """

    concern = "guard"

    def __init__(self, condition: Any, abort_when: Any = None) -> None:
        super().__init__()
        self._condition = condition
        self._abort_when = abort_when

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        if self._abort_when is not None and self._abort_when(joinpoint):
            return AspectResult.ABORT
        if self._condition(joinpoint):
            return AspectResult.RESUME
        return AspectResult.BLOCK
