"""Reusable aspect library.

One module per interaction concern the paper names (Section 2: "load
balancing, fault tolerance, throughput, security, audits, location
transparency, concurrency, and coordination" — load balancing and
location transparency live in :mod:`repro.dist`, being inherently
distributed concerns).
"""

from .audit import AuditAspect, AuditLog, AuditRecord
from .authentication import (
    AuthenticationAspect,
    CredentialStore,
    Session,
    SessionManager,
)
from .authorization import AuthorizationAspect, RoleRegistry
from .caching import CachingAspect
from .circuit_breaker import BreakerState, CircuitBreakerAspect
from .coordination import (
    DependencyAspect,
    PhaseAspect,
    QuorumAspect,
    TurnTakingAspect,
)
from .rate_limit import (
    ConcurrencyWindowAspect,
    TokenBucket,
    TokenBucketAspect,
)
from .retry import (
    FailureAccountingAspect,
    FailureStats,
    RetryPolicy,
    retrying,
)
from .scheduling import (
    FifoSchedulingAspect,
    LifoSchedulingAspect,
    PrioritySchedulingAspect,
)
from .synchronization import (
    BarrierAspect,
    BoundedBufferSync,
    GuardAspect,
    MutexAspect,
    ReadersWriterAspect,
    ReentrantMutexAspect,
    SemaphoreAspect,
)
from .timing import StreamingStats, ThroughputWindow, TimingAspect
from .transactions import SnapshotTransactionAspect, UndoLogAspect
from .validation import (
    StateInvariantAspect,
    TypeContractAspect,
    ValidationAspect,
)

__all__ = [
    "AuditAspect",
    "AuditLog",
    "AuditRecord",
    "AuthenticationAspect",
    "AuthorizationAspect",
    "BarrierAspect",
    "BoundedBufferSync",
    "BreakerState",
    "CachingAspect",
    "CircuitBreakerAspect",
    "ConcurrencyWindowAspect",
    "CredentialStore",
    "DependencyAspect",
    "FailureAccountingAspect",
    "FailureStats",
    "FifoSchedulingAspect",
    "GuardAspect",
    "LifoSchedulingAspect",
    "MutexAspect",
    "PhaseAspect",
    "PrioritySchedulingAspect",
    "QuorumAspect",
    "ReadersWriterAspect",
    "ReentrantMutexAspect",
    "RetryPolicy",
    "RoleRegistry",
    "SemaphoreAspect",
    "SnapshotTransactionAspect",
    "Session",
    "SessionManager",
    "StateInvariantAspect",
    "StreamingStats",
    "ThroughputWindow",
    "TimingAspect",
    "TokenBucket",
    "TokenBucketAspect",
    "TurnTakingAspect",
    "UndoLogAspect",
    "TypeContractAspect",
    "ValidationAspect",
    "retrying",
]
