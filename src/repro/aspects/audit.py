"""Audit aspect: tamper-evident call trail ("audits", paper Section 2).

Records one :class:`AuditRecord` per activation — attempt, outcome,
principal, latency — into an append-only, hash-chained log. Because the
aspect observes both phases, it can log aborted attempts too (a
precondition-only aspect would see them; a decorator around the raw
method would not), which is precisely what an audit concern needs.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


@dataclass(frozen=True)
class AuditRecord:
    """One audited activation."""

    sequence: int
    method_id: str
    principal: Optional[str]
    outcome: str  # "ok" | "error" | "aborted"
    started_at: float
    duration: float
    previous_hash: str
    record_hash: str = field(default="", compare=False)

    def payload(self) -> str:
        return (
            f"{self.sequence}|{self.method_id}|{self.principal}|"
            f"{self.outcome}|{self.started_at:.9f}|{self.duration:.9f}|"
            f"{self.previous_hash}"
        )


class AuditLog:
    """Append-only hash chain of audit records."""

    GENESIS = "0" * 64

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: List[AuditRecord] = []

    def append(self, method_id: str, principal: Optional[str], outcome: str,
               started_at: float, duration: float) -> AuditRecord:
        with self._lock:
            previous = (
                self._records[-1].record_hash if self._records
                else self.GENESIS
            )
            record = AuditRecord(
                sequence=len(self._records),
                method_id=method_id,
                principal=principal,
                outcome=outcome,
                started_at=started_at,
                duration=duration,
                previous_hash=previous,
            )
            digest = hashlib.sha256(record.payload().encode()).hexdigest()
            record = AuditRecord(
                **{**vars(record), "record_hash": digest}
            )
            self._records.append(record)
            return record

    def verify_chain(self) -> bool:
        """Recompute the hash chain; False means tampering."""
        with self._lock:
            records = list(self._records)
        previous = self.GENESIS
        for record in records:
            if record.previous_hash != previous:
                return False
            if hashlib.sha256(record.payload().encode()).hexdigest() \
                    != record.record_hash:
                return False
            previous = record.record_hash
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[AuditRecord]:
        with self._lock:
            return iter(list(self._records))

    def outcomes(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for record in self:
            histogram[record.outcome] = histogram.get(record.outcome, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # persistence (JSON Lines; the hash chain makes the file tamper-
    # evident, so a loaded log re-verifies end to end)
    # ------------------------------------------------------------------
    def export_jsonl(self, path) -> int:
        """Write every record as one JSON object per line.

        Returns the number of records written.
        """
        records = list(self)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(vars(record)) + "\n")
        return len(records)

    @classmethod
    def import_jsonl(cls, path) -> "AuditLog":
        """Load a log written by :meth:`export_jsonl`.

        Raises ``ValueError`` when the loaded chain fails verification —
        a truncated, reordered or edited file never loads silently.
        """
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                payload = json.loads(line)
                log._records.append(AuditRecord(**payload))
        if not log.verify_chain():
            raise ValueError(f"audit chain in {path!r} fails verification")
        return log


class AuditAspect(StatefulAspect):
    """Record every activation (including aborted ones) to an audit log."""

    concern = "audit"
    is_observer = True
    never_blocks = True
    # a broken audit log should not take the service down: skip when degraded
    fault_policy = "fail_open"
    # declared pure observer: no vote but RESUME, no effect on any other
    # activation's outcome — a profiler's ``skip_analysis`` may elide
    # this cell entirely (the audit trail then deliberately goes dark;
    # keep skip_analysis off where the trail is load-bearing)
    pure_observer = True

    def __init__(self, log: Optional[AuditLog] = None) -> None:
        super().__init__()
        self.log = log if log is not None else AuditLog()

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        joinpoint.context["audit_start"] = time.monotonic()
        return AspectResult.RESUME

    def _principal(self, joinpoint: JoinPoint) -> Optional[str]:
        principal = joinpoint.context.get("principal")
        if principal is None and joinpoint.caller is not None:
            principal = str(joinpoint.caller)
        return principal

    def postaction(self, joinpoint: JoinPoint) -> None:
        started = joinpoint.context.get("audit_start", time.monotonic())
        outcome = "error" if joinpoint.exception is not None else "ok"
        self.log.append(
            method_id=joinpoint.method_id,
            principal=self._principal(joinpoint),
            outcome=outcome,
            started_at=started,
            duration=time.monotonic() - started,
        )

    def on_abort(self, joinpoint: JoinPoint) -> None:
        if joinpoint.context.get("__compensation__") == "block":
            # Transient round: the activation is about to wait and
            # re-evaluate, not to fail — nothing to audit yet.
            joinpoint.context.pop("audit_start", None)
            return
        started = joinpoint.context.get("audit_start", time.monotonic())
        self.log.append(
            method_id=joinpoint.method_id,
            principal=self._principal(joinpoint),
            outcome="aborted",
            started_at=started,
            duration=time.monotonic() - started,
        )
