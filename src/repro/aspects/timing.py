"""Timing aspect: latency and throughput observation ("throughput", §2).

Measures per-method wall-clock latency between pre- and post-activation
and maintains streaming statistics (count, mean, min, max, variance via
Welford, and a reservoir for percentile estimates). Used by the
benchmark harness to report the same series for framework and baseline
configurations.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.aspect import StatefulAspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult


class StreamingStats:
    """Welford online statistics plus a bounded reservoir sample."""

    def __init__(self, reservoir_size: int = 512,
                 rng: Optional[random.Random] = None) -> None:
        self._lock = threading.Lock()
        self._rng = rng if rng is not None else random.Random(0xA5)
        self.reservoir_size = reservoir_size
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._reservoir: List[float] = []

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            delta = value - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (value - self.mean)
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = value

    @property
    def variance(self) -> float:
        with self._lock:
            if self.count < 2:
                return 0.0
            return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Approximate percentile from the reservoir (q in [0, 100])."""
        with self._lock:
            if not self._reservoir:
                return math.nan
            ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        # interpolate as base + f*delta: exact when neighbours are equal,
        # and monotone in q within a bucket
        return ordered[low] + fraction * (ordered[high] - ordered[low])

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
            "stddev": self.stddev,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


@dataclass
class ThroughputWindow:
    """Completed-call counter with a start timestamp for rate computation."""

    started_at: float
    completed: int = 0

    def rate(self, now: Optional[float] = None) -> float:
        elapsed = (now if now is not None else time.monotonic()) - self.started_at
        if elapsed <= 0:
            return 0.0
        return self.completed / elapsed


class TimingAspect(StatefulAspect):
    """Per-method latency statistics and overall throughput."""

    concern = "timing"
    is_observer = True
    never_blocks = True
    # pure observer: losing latency samples beats losing the service
    fault_policy = "fail_open"
    # and elidable: under a profiler's ``skip_analysis`` this cell drops
    # out of the compiled plan (the clause profiler's own cost histogram
    # keeps measuring latency at finer grain than this aspect does)
    pure_observer = True

    def __init__(self, clock=time.monotonic) -> None:
        super().__init__()
        self._clock = clock
        self.per_method: Dict[str, StreamingStats] = {}
        self.window = ThroughputWindow(started_at=clock())

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        joinpoint.context["timing_start"] = self._clock()
        return AspectResult.RESUME

    def postaction(self, joinpoint: JoinPoint) -> None:
        start = joinpoint.context.pop("timing_start", None)
        if start is None:
            return
        elapsed = self._clock() - start
        with self._lock:
            stats = self.per_method.get(joinpoint.method_id)
            if stats is None:
                stats = StreamingStats()
                self.per_method[joinpoint.method_id] = stats
            self.window.completed += 1
        stats.observe(elapsed)

    def on_abort(self, joinpoint: JoinPoint) -> None:
        joinpoint.context.pop("timing_start", None)

    def reset_window(self) -> None:
        with self._lock:
            self.window = ThroughputWindow(started_at=self._clock())

    def report(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            methods = dict(self.per_method)
        return {
            method_id: stats.summary() for method_id, stats in methods.items()
        }
