"""Authentication aspects: the paper's adaptability example (Section 5.3).

"Let a new requirement state that authentication should be introduced to
the system." The paper adds ``OpenAuthenticationAspect`` /
``AssignAuthenticationAspect`` through an extended factory; here one
reusable :class:`AuthenticationAspect` covers any participating method,
backed by a :class:`CredentialStore` (user/secret database) and a
:class:`SessionManager` (token issue/expiry).

Semantics: a call whose join point carries no authenticated principal is
**ABORTed** (authentication cannot become true by waiting). A call whose
principal has a valid session RESUMEs. ``block_until_login=True`` opts
into the paper's wait-queue variant (Figure 17 parks unauthenticated
callers on ``OpenAuthenticationQueue``): the caller BLOCKs until an
out-of-band login notifies the moderator.
"""

from __future__ import annotations

import hashlib
import hmac
import itertools
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.core.aspect import StatefulAspect
from repro.core.errors import AuthenticationError
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult

_token_counter = itertools.count(1)


def _digest(secret: str, salt: str) -> str:
    return hashlib.sha256((salt + ":" + secret).encode()).hexdigest()


class CredentialStore:
    """Salted-hash credential database."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._users: Dict[str, Dict[str, str]] = {}

    def add_user(self, principal: str, secret: str) -> None:
        salt = hashlib.sha256(principal.encode()).hexdigest()[:16]
        with self._lock:
            self._users[principal] = {
                "salt": salt,
                "digest": _digest(secret, salt),
            }

    def remove_user(self, principal: str) -> None:
        with self._lock:
            self._users.pop(principal, None)

    def verify(self, principal: str, secret: str) -> bool:
        with self._lock:
            record = self._users.get(principal)
        if record is None:
            return False
        return hmac.compare_digest(
            record["digest"], _digest(secret, record["salt"])
        )

    def __contains__(self, principal: str) -> bool:
        with self._lock:
            return principal in self._users


@dataclass
class Session:
    """An authenticated session."""

    token: str
    principal: str
    issued_at: float
    expires_at: Optional[float]

    def valid(self, now: Optional[float] = None) -> bool:
        if self.expires_at is None:
            return True
        return (now if now is not None else time.monotonic()) < self.expires_at


class SessionManager:
    """Issues and validates session tokens against a credential store."""

    def __init__(self, credentials: CredentialStore,
                 ttl: Optional[float] = None) -> None:
        self.credentials = credentials
        self.ttl = ttl
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._by_principal: Dict[str, Set[str]] = {}

    def login(self, principal: str, secret: str) -> str:
        """Authenticate and return a session token.

        Raises :class:`AuthenticationError` on bad credentials.
        """
        if not self.credentials.verify(principal, secret):
            raise AuthenticationError(f"bad credentials for {principal!r}")
        now = time.monotonic()
        token = f"tok-{next(_token_counter)}-{principal}"
        session = Session(
            token=token, principal=principal, issued_at=now,
            expires_at=(now + self.ttl) if self.ttl is not None else None,
        )
        with self._lock:
            self._sessions[token] = session
            self._by_principal.setdefault(principal, set()).add(token)
        return token

    def logout(self, token: str) -> None:
        with self._lock:
            session = self._sessions.pop(token, None)
            if session is not None:
                self._by_principal.get(session.principal, set()).discard(token)

    def logout_principal(self, principal: str) -> None:
        with self._lock:
            for token in self._by_principal.pop(principal, set()):
                self._sessions.pop(token, None)

    def session_for(self, token: str) -> Optional[Session]:
        with self._lock:
            session = self._sessions.get(token)
        if session is None or not session.valid():
            return None
        return session

    def is_authenticated(self, principal: str) -> bool:
        """Whether ``principal`` holds at least one valid session."""
        with self._lock:
            tokens = list(self._by_principal.get(principal, ()))
            sessions = [self._sessions.get(token) for token in tokens]
        return any(s is not None and s.valid() for s in sessions)

    def active_sessions(self) -> int:
        with self._lock:
            return sum(1 for s in self._sessions.values() if s.valid())


class AuthenticationAspect(StatefulAspect):
    """Require an authenticated principal on the join point.

    The caller identity is read from, in order: ``joinpoint.caller`` (a
    principal name or a token string) and ``joinpoint.kwargs['caller']``.
    Tokens are resolved through the session manager; bare principal names
    are accepted when they hold a live session.

    ``is_guard`` marks the aspect for the
    :func:`repro.core.ordering.guards_first` policy, reproducing the
    paper's authentication-wraps-synchronization composition.
    """

    concern = "authenticate"
    is_guard = True
    # a broken authenticator must fail the activation, not wave it through
    fault_policy = "fail_closed"

    def __init__(self, sessions: SessionManager,
                 block_until_login: bool = False) -> None:
        super().__init__()
        self.sessions = sessions
        self.block_until_login = block_until_login
        self.granted = 0
        self.denied = 0

    def _identity(self, joinpoint: JoinPoint) -> Optional[str]:
        caller = joinpoint.caller
        if caller is None:
            caller = joinpoint.kwargs.get("caller")
        return caller

    def _authenticated(self, joinpoint: JoinPoint) -> Optional[str]:
        """Resolve the join point to an authenticated principal, if any."""
        caller = self._identity(joinpoint)
        if caller is None:
            return None
        session = self.sessions.session_for(str(caller))
        if session is not None:
            return session.principal
        if self.sessions.is_authenticated(str(caller)):
            return str(caller)
        return None

    def precondition(self, joinpoint: JoinPoint) -> AspectResult:
        principal = self._authenticated(joinpoint)
        with self._lock:
            if principal is not None:
                self.granted += 1
                joinpoint.context["principal"] = principal
                return AspectResult.RESUME
            self.denied += 1
        if self.block_until_login:
            return AspectResult.BLOCK
        return AspectResult.ABORT

    def on_abort(self, joinpoint: JoinPoint) -> None:
        with self._lock:
            # A granted precondition compensated by a later abort is not
            # a denial; keep the counters meaningful.
            if joinpoint.context.pop("principal", None) is not None:
                self.granted -= 1
