"""Abstract model of moderated activations for exhaustive exploration.

The paper's open-questions list asks whether an aspect-oriented
architecture should "enable formal verification of system properties".
This subpackage answers constructively: because the Aspect Moderator
protocol confines all concurrency decisions to ``precondition`` /
``postaction`` pairs over aspect state, a *composition* of aspects is a
finite transition system that can be explored exhaustively.

The model: a set of :class:`ActivationSpec` (client, method, how many
repetitions), a chain of real :class:`~repro.core.aspect.Aspect`
objects per method (via a builder so every exploration path gets fresh
state), and the moderator's small-step semantics:

* ``start``: an idle client begins an activation (evaluates the chain
  under the moderator lock — atomically in the model, exactly as the
  real moderator serializes chain evaluation);
* on RESUME the activation enters its *critical* region (body running);
* ``finish``: a running activation completes (postactions in reverse
  order, wakes every blocked activation — modelled implicitly: blocked
  activations simply retry, since exploration tries every enabled
  transition anyway);
* on ABORT the activation terminates without running.

State is captured by snapshotting aspect attributes plus each client's
program counter, so the explorer can detect revisits and report
deadlocks (states with pending work and no enabled transition).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.aspect import Aspect
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult

#: builder returning fresh method -> [aspects] chains for one path
ChainBuilder = Callable[[], Dict[str, List[Aspect]]]


@dataclass(frozen=True)
class ActivationSpec:
    """One client's scripted behaviour: call ``method`` ``repeat`` times."""

    client: str
    method: str
    repeat: int = 1
    kwargs: Tuple[Tuple[str, Any], ...] = ()


@dataclass
class ClientState:
    """Program counter of one scripted client.

    ``joinpoint`` and ``resumed_indices`` persist the in-flight
    activation across state clones so post-activation unwinds exactly
    the chain that resumed, with the same join point (aspects keep
    per-activation data in ``joinpoint.context``).
    """

    spec: ActivationSpec
    index: int = 0
    completed: int = 0
    #: "idle" | "waiting" | "running"
    status: str = "idle"
    joinpoint: Optional[JoinPoint] = None
    resumed_indices: Optional[List[int]] = None

    def fingerprint(self) -> Tuple:
        context = ()
        if self.joinpoint is not None \
                and self.status in ("running", "waiting"):
            context = _freeze(dict(self.joinpoint.context))
        return (self.spec.client, self.completed, self.status, context)


class ModelState:
    """One concrete state: aspect objects + client program counters."""

    def __init__(self, chains: Dict[str, List[Aspect]],
                 clients: List[ClientState]) -> None:
        self.chains = chains
        self.clients = clients

    # ------------------------------------------------------------------
    def clone(self) -> "ModelState":
        """Deep copy: exploration branches must not share aspect state.

        Aspect identity is preserved within one clone (an aspect shared
        by two methods stays shared); locks are re-created rather than
        copied; ``component`` references are shared (the model verifies
        aspect-held state — components in the model must be passive).
        """
        identity: Dict[int, Aspect] = {}
        chains = {
            method: [_clone_aspect(aspect, identity) for aspect in chain]
            for method, chain in self.chains.items()
        }
        clients = [
            ClientState(
                spec=c.spec, index=c.index, completed=c.completed,
                status=c.status,
                joinpoint=(
                    _lockaware_copy(c.joinpoint, identity)
                    if c.joinpoint is not None else None
                ),
                resumed_indices=(
                    list(c.resumed_indices)
                    if c.resumed_indices is not None else None
                ),
            )
            for c in self.clients
        ]
        return ModelState(chains, clients)

    def fingerprint(self) -> Tuple:
        """Hashable digest of the state for the visited set."""
        aspect_part = tuple(
            (method, index, _aspect_fingerprint(aspect))
            for method, chain in sorted(self.chains.items())
            for index, aspect in enumerate(chain)
        )
        client_part = tuple(c.fingerprint() for c in self.clients)
        return (aspect_part, client_part)

    # ------------------------------------------------------------------
    def enabled_transitions(self) -> List[Tuple[str, int]]:
        """All (kind, client_index) transitions enabled in this state.

        * ``("finish", i)`` for every running client;
        * ``("start", i)`` for every idle client with repetitions left —
          always enabled, because the *first* chain evaluation runs even
          when it ends in BLOCK (and may register state: barrier
          arrivals, writer-waiting flags, scheduler queue entries);
        * ``("retry", i)`` for every waiting client whose re-evaluation
          would not immediately BLOCK again (the real moderator's wakeup
          loop, with no-progress wakeups elided since they revisit the
          same state).
        """
        transitions: List[Tuple[str, int]] = []
        for index, client in enumerate(self.clients):
            if client.status == "running":
                transitions.append(("finish", index))
            elif client.status == "idle" \
                    and client.completed < client.spec.repeat:
                transitions.append(("start", index))
            elif client.status == "waiting":
                if self._probe(client) is not AspectResult.BLOCK:
                    transitions.append(("retry", index))
        return transitions

    def has_pending_work(self) -> bool:
        return any(
            client.status in ("running", "waiting")
            or (client.status == "idle"
                and client.completed < client.spec.repeat)
            for client in self.clients
        )

    # ------------------------------------------------------------------
    def _joinpoint(self, client: ClientState) -> JoinPoint:
        joinpoint = JoinPoint(
            method_id=client.spec.method,
            caller=client.spec.client,
            kwargs=dict(client.spec.kwargs),
        )
        # Deterministic identity per (client, attempt): equivalent states
        # must fingerprint identically even when aspects record the
        # activation id (e.g. MutexAspect.holder).
        joinpoint.activation_id = (
            (client.index + 1) * 1_000_000 + client.completed
        )
        return joinpoint

    def _probe(self, client: ClientState) -> AspectResult:
        """Evaluate the chain on a scratch copy (no state mutation)."""
        scratch = self.clone()
        scratch_client = scratch.clients[client.index]
        outcome, _jp, _resumed = scratch._evaluate(scratch_client)
        return outcome

    def _evaluate(
        self, client: ClientState
    ) -> Tuple[AspectResult, JoinPoint, List[int]]:
        chain = self.chains.get(client.spec.method, [])
        joinpoint = (
            client.joinpoint if client.joinpoint is not None
            else self._joinpoint(client)
        )
        resumed: List[int] = []
        for position, aspect in enumerate(chain):
            result = aspect.evaluate_precondition(joinpoint)
            if result is AspectResult.RESUME:
                resumed.append(position)
                continue
            for done in reversed(resumed):
                chain[done].on_abort(joinpoint)
            return result, joinpoint, []
        return AspectResult.RESUME, joinpoint, resumed

    def apply(self, transition: Tuple[str, int]) -> "ModelState":
        """Successor state after one transition (pure: returns a copy)."""
        kind, index = transition
        successor = self.clone()
        client = successor.clients[index]
        if kind in ("start", "retry"):
            outcome, joinpoint, resumed = successor._evaluate(client)
            if outcome is AspectResult.RESUME:
                client.status = "running"
                client.joinpoint = joinpoint
                client.resumed_indices = resumed
            elif outcome is AspectResult.ABORT:
                client.status = "idle"
                client.completed += 1  # an aborted attempt consumes a turn
                client.joinpoint = None
            else:  # BLOCK: park; keep the join point so per-activation
                # context (barrier generation, scheduler registration)
                # survives re-evaluation, as in the real wait loop
                client.status = "waiting"
                client.joinpoint = joinpoint
        elif kind == "finish":
            chain = successor.chains.get(client.spec.method, [])
            joinpoint = (
                client.joinpoint if client.joinpoint is not None
                else successor._joinpoint(client)
            )
            resumed = (
                client.resumed_indices
                if client.resumed_indices is not None
                else list(range(len(chain)))
            )
            for position in reversed(resumed):
                chain[position].postaction(joinpoint)
            client.status = "idle"
            client.completed += 1
            client.joinpoint = None
            client.resumed_indices = None
        else:
            raise ValueError(f"unknown transition kind {kind!r}")
        return successor


_LOCK_TYPES = (type(threading.Lock()), type(threading.RLock()),
               threading.Condition, threading.Event)


def _clone_aspect(aspect: Aspect, identity: "Dict[int, Any]") -> Aspect:
    """Copy one aspect: deep state, fresh locks, shared components."""
    return _lockaware_copy(aspect, identity)


def _lockaware_copy(obj: Any, identity: "Dict[int, Any]") -> Any:
    """Deep copy that replaces locks and preserves sharing by identity.

    Objects shared between aspects (e.g. the paper's ``TicketSyncState``)
    stay shared *within* one clone but are independent across clones.
    ``component``/``sessions``/``registry`` attributes are environment
    references and stay shared across clones by design.
    """
    existing = identity.get(id(obj))
    if existing is not None:
        return existing
    cloned = copy.copy(obj)
    identity[id(obj)] = cloned
    for key, value in vars(obj).items():
        if isinstance(value, _LOCK_TYPES):
            cloned.__dict__[key] = threading.RLock()
        elif key in ("component", "sessions", "registry"):
            cloned.__dict__[key] = value  # shared environment
        elif hasattr(value, "__dict__") and not isinstance(value, type) \
                and not callable(value):
            cloned.__dict__[key] = _lockaware_copy(value, identity)
        else:
            try:
                cloned.__dict__[key] = copy.deepcopy(value)
            except TypeError:
                cloned.__dict__[key] = value
    return cloned


def _aspect_fingerprint(aspect: Aspect) -> Tuple:
    """Hashable digest of one aspect's public state."""
    items = []
    for key, value in sorted(vars(aspect).items()):
        if key.startswith("_"):
            continue
        items.append((key, _freeze(value)))
    return (type(aspect).__name__, tuple(items))


def _freeze(value: Any) -> Any:
    if isinstance(value, (int, float, str, bool, type(None))):
        return value
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(map(repr, value)))
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, _LOCK_TYPES):
        return "<lock>"
    if hasattr(value, "__dict__") and not callable(value):
        # plain state holder (e.g. TicketSyncState): digest by content,
        # never by identity — reprs with addresses would defeat the
        # visited-set and blow up the exploration
        return tuple(sorted(
            (key, _freeze(attr))
            for key, attr in vars(value).items()
            if not key.startswith("_")
            and not isinstance(attr, _LOCK_TYPES)
        ))
    return repr(value)


def initial_state(build_chains: ChainBuilder,
                  specs: Sequence[ActivationSpec]) -> ModelState:
    """Construct the exploration root."""
    return ModelState(
        chains=build_chains(),
        clients=[
            ClientState(spec=spec, index=index)
            for index, spec in enumerate(specs)
        ],
    )
