"""Reusable safety properties over the activation model.

Each factory returns a ``Property`` (state -> error-or-None) the
explorer evaluates in every reached state. The predicates read the
aspect objects' public attributes — the same counters the real
moderator mutates — so a property proven in the model holds for the
real composition by construction (the model executes the *actual*
aspect code).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.aspect import Aspect
from .model import ModelState

Property = Callable[[ModelState], Optional[str]]


def _first_aspect(state: ModelState, method: str,
                  aspect_type: type) -> Optional[Aspect]:
    for aspect in state.chains.get(method, []):
        if isinstance(aspect, aspect_type):
            return aspect
    return None


def mutual_exclusion(*methods: str) -> Property:
    """At most one client may be running any of ``methods`` at a time."""
    method_set = set(methods)

    def check(state: ModelState) -> Optional[str]:
        running = [
            client.spec.client for client in state.clients
            if client.status == "running"
            and client.spec.method in method_set
        ]
        if len(running) > 1:
            return (
                f"mutual exclusion violated on {sorted(method_set)}: "
                f"{running} running concurrently"
            )
        return None

    return check


def concurrency_bound(limit: int, *methods: str) -> Property:
    """At most ``limit`` clients running the given methods concurrently."""
    method_set = set(methods)

    def check(state: ModelState) -> Optional[str]:
        running = sum(
            1 for client in state.clients
            if client.status == "running"
            and (not method_set or client.spec.method in method_set)
        )
        if running > limit:
            return f"concurrency bound {limit} exceeded: {running} running"
        return None

    return check


def aspect_invariant(method: str, aspect_type: type,
                     predicate: Callable[[Aspect], bool],
                     description: str) -> Property:
    """A predicate over one aspect's state must hold in every state."""

    def check(state: ModelState) -> Optional[str]:
        aspect = _first_aspect(state, method, aspect_type)
        if aspect is None:
            return f"no {aspect_type.__name__} registered on {method!r}"
        if not predicate(aspect):
            return (
                f"invariant {description!r} violated: "
                f"{aspect_type.__name__} state "
                f"{ {k: v for k, v in vars(aspect).items() if not k.startswith('_')} }"
            )
        return None

    return check


def occupancy_bound(method: str, capacity: int,
                    aspect_type: Optional[type] = None) -> Property:
    """Bounded-buffer safety: 0 <= committed + in-flight <= capacity.

    Reads the :class:`~repro.aspects.synchronization.BoundedBufferSync`
    counters (or any aspect exposing ``items`` / ``active_producers``).
    """
    if aspect_type is None:
        from repro.aspects.synchronization import BoundedBufferSync
        aspect_type = BoundedBufferSync

    def check(state: ModelState) -> Optional[str]:
        aspect = _first_aspect(state, method, aspect_type)
        if aspect is None:
            return f"no buffer-sync aspect on {method!r}"
        items = getattr(aspect, "items", 0)
        in_flight = getattr(aspect, "active_producers", 0)
        if items < 0:
            return f"negative occupancy {items}"
        if items + in_flight > capacity:
            return (
                f"occupancy {items}+{in_flight} exceeds capacity {capacity}"
            )
        return None

    return check


def never_aborts() -> Property:
    """No scripted client ever observes an ABORT."""

    def check(state: ModelState) -> Optional[str]:
        aborted = [
            client.spec.client for client in state.clients
            if client.status == "aborted"
        ]
        if aborted:
            return f"clients aborted: {aborted}"
        return None

    return check


def all_of(*properties: Property) -> Property:
    """Conjunction: first failing property reports."""

    def check(state: ModelState) -> Optional[str]:
        for prop in properties:
            error = prop(state)
            if error:
                return error
        return None

    return check
