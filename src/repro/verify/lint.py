"""Composition linter: static detection of composition anomalies.

The paper grounds its motivation in "composition anomalies" (Bergmans &
Aksit, cited in Section 1): concerns that are individually correct but
interact badly when composed. The model checker finds behavioural
anomalies by exploration; this linter finds the *structural* ones by
inspecting a chain's shape — instant feedback at bind time, no state
space needed.

Rules (each with a stable id, severity, and rationale):

=========  ========  ====================================================
rule id    severity  anomaly
=========  ========  ====================================================
OBS-LATE   warning   an observer (audit/timing) placed after a guard
                     never sees the activations the guard rejects
CACHE-PRE  error     a caching aspect placed before an access-control
                     guard serves cached results to unauthorized callers
BLOCK-2    warning   two blocking synchronization aspects on one chain
                     can deadlock pairwise (hold-and-wait across rounds)
TXN-OUT    warning   a transaction aspect outside (before) the
                     synchronization aspect snapshots unsynchronized
                     state
GUARD-DUP  info      duplicate guard kinds on one chain (usually a
                     wiring mistake, occasionally intentional)
EMPTY      info      a participating method with an empty chain is a
                     plain method — registration may be missing
=========  ========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.aspect import Aspect
from repro.core.registry import Cluster

#: aspect classes considered blocking synchronization primitives
_BLOCKING_HINTS = (
    "BoundedBufferSync", "MutexAspect", "ReentrantMutexAspect",
    "SemaphoreAspect", "ReadersWriterAspect", "BarrierAspect",
    "GuardAspect", "FifoSchedulingAspect", "LifoSchedulingAspect",
    "PrioritySchedulingAspect", "ConcurrencyWindowAspect",
    "TurnTakingAspect", "PhaseAspect", "QuorumAspect",
    "DependencyAspect", "OpenSynchronizationAspect",
    "AssignSynchronizationAspect",
)


@dataclass(frozen=True)
class Finding:
    """One linter finding."""

    rule: str
    severity: str  # "error" | "warning" | "info"
    method_id: str
    detail: str

    def format(self) -> str:
        return f"[{self.severity}] {self.rule} @ {self.method_id}: {self.detail}"


def _is_observer(concern: str, aspect: Aspect) -> bool:
    return bool(getattr(aspect, "is_observer", False)) or concern.lower() in (
        "audit", "timing", "trace", "metrics",
    )


def _is_guard(concern: str, aspect: Aspect) -> bool:
    return bool(getattr(aspect, "is_guard", False)) or concern.lower() in (
        "authenticate", "authorize", "authorization", "auth", "security",
        "validate", "typecheck",
    )


def _is_cache(concern: str, aspect: Aspect) -> bool:
    return type(aspect).__name__ == "CachingAspect" or concern.lower() == "cache"


def _is_blocking(aspect: Aspect) -> bool:
    return type(aspect).__name__ in _BLOCKING_HINTS


def _is_txn(concern: str, aspect: Aspect) -> bool:
    return type(aspect).__name__ in (
        "SnapshotTransactionAspect", "UndoLogAspect",
    ) or concern.lower() == "txn"


def lint_chain(method_id: str,
               pairs: Sequence[Tuple[str, Aspect]]) -> List[Finding]:
    """Lint one method's ordered (concern, aspect) chain."""
    findings: List[Finding] = []
    if not pairs:
        findings.append(Finding(
            rule="EMPTY", severity="info", method_id=method_id,
            detail="participating method has no aspects bound",
        ))
        return findings

    guard_positions = [
        index for index, (concern, aspect) in enumerate(pairs)
        if _is_guard(concern, aspect)
    ]
    first_guard = guard_positions[0] if guard_positions else None

    # OBS-LATE: observers after the first guard miss rejected attempts
    if first_guard is not None:
        for index, (concern, aspect) in enumerate(pairs):
            if index > first_guard and _is_observer(concern, aspect):
                findings.append(Finding(
                    rule="OBS-LATE", severity="warning",
                    method_id=method_id,
                    detail=(
                        f"observer {concern!r} runs after guard "
                        f"{pairs[first_guard][0]!r}; rejected activations "
                        f"will not be observed"
                    ),
                ))

    # CACHE-PRE: cache before any guard serves unauthorized hits
    if first_guard is not None:
        for index, (concern, aspect) in enumerate(pairs):
            if index < first_guard and _is_cache(concern, aspect):
                findings.append(Finding(
                    rule="CACHE-PRE", severity="error",
                    method_id=method_id,
                    detail=(
                        f"cache {concern!r} precedes guard "
                        f"{pairs[first_guard][0]!r}: cached results are "
                        f"served without access control"
                    ),
                ))

    # BLOCK-2: multiple blocking primitives can hold-and-wait
    blocking = [
        (concern, aspect) for concern, aspect in pairs
        if _is_blocking(aspect)
    ]
    if len(blocking) >= 2:
        names = ", ".join(
            f"{concern}:{type(aspect).__name__}"
            for concern, aspect in blocking
        )
        findings.append(Finding(
            rule="BLOCK-2", severity="warning", method_id=method_id,
            detail=(
                f"{len(blocking)} blocking aspects on one chain "
                f"({names}); verify deadlock-freedom with repro.verify"
            ),
        ))

    # TXN-OUT: transaction outside synchronization
    txn_positions = [
        index for index, (concern, aspect) in enumerate(pairs)
        if _is_txn(concern, aspect)
    ]
    sync_positions = [
        index for index, (_concern, aspect) in enumerate(pairs)
        if _is_blocking(aspect)
    ]
    if txn_positions and sync_positions \
            and txn_positions[0] < sync_positions[0]:
        findings.append(Finding(
            rule="TXN-OUT", severity="warning", method_id=method_id,
            detail=(
                "transaction aspect precedes synchronization: snapshots "
                "may capture state mid-mutation by a concurrent activation"
            ),
        ))

    # GUARD-DUP: the same guard class twice
    seen_guard_types: dict = {}
    for concern, aspect in pairs:
        if _is_guard(concern, aspect):
            type_name = type(aspect).__name__
            if type_name in seen_guard_types:
                findings.append(Finding(
                    rule="GUARD-DUP", severity="info",
                    method_id=method_id,
                    detail=(
                        f"guard class {type_name} appears more than once "
                        f"({seen_guard_types[type_name]!r} and {concern!r})"
                    ),
                ))
            else:
                seen_guard_types[type_name] = concern

    return findings


def lint_plan(plan: "object") -> List[Finding]:
    """Lint one compiled :class:`~repro.core.plan.ActivationPlan`.

    Runs every structural chain rule on the plan's effective order, then
    adds plan-level rules that only a compiled contract exposes:

    =============  ========  =============================================
    rule id        severity  anomaly
    =============  ========  =============================================
    QUAR-OPEN      info      a fail-open cell is currently quarantined:
                             activations silently proceed without it
    QUAR-CLOSED    warning   a fail-closed cell is currently quarantined:
                             every activation of the method ABORTs until
                             the aspect is swapped or reinstated
    INJ-ARMED      info      a fault injector is compiled into the plan
                             (expected in chaos tests, not in production)
    =============  ========  =============================================

    A healthy plan (nothing quarantined, no injector) yields exactly the
    findings :func:`lint_chain` would for the same chain.
    """
    report = plan.explain()
    method_id = report["method_id"]
    findings = lint_chain(method_id, plan.pairs)
    for cell in report["cells"]:
        if cell["degraded"] == "fail_open":
            findings.append(Finding(
                rule="QUAR-OPEN", severity="info", method_id=method_id,
                detail=(
                    f"quarantined fail-open cell {cell['concern']!r} is "
                    f"compiled out: activations proceed without it"
                ),
            ))
        elif cell["degraded"] == "fail_closed":
            findings.append(Finding(
                rule="QUAR-CLOSED", severity="warning",
                method_id=method_id,
                detail=(
                    f"quarantined fail-closed cell {cell['concern']!r} "
                    f"aborts every activation until swapped or reinstated"
                ),
            ))
    if report["injector_armed"]:
        findings.append(Finding(
            rule="INJ-ARMED", severity="info", method_id=method_id,
            detail="a fault injector is compiled into this plan",
        ))
    return findings


def lint_cluster(cluster: Cluster) -> List[Finding]:
    """Lint every participating method of a cluster.

    Each method is linted through its compiled activation plan
    (compilation is pure, so this holds even for clusters running the
    interpreter), which is the moderator's *effective* composition —
    ordering policy applied, quarantine state included. What is linted
    is what runs.
    """
    findings: List[Finding] = []
    for method_id in cluster.bank.methods():
        findings.extend(lint_plan(cluster.moderator.plan_for(method_id)))
    return findings
