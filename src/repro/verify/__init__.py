"""Formal verification of aspect compositions (paper's open question).

"Should it further enable formal verification of system properties?"
(Section 1). This subpackage provides an explicit-state model checker
over compositions of real aspect objects: every interleaving of a set
of scripted activations is explored, safety properties are evaluated in
every state, and deadlocks are reported with shortest counterexample
traces.
"""

from .lint import Finding, lint_chain, lint_cluster, lint_plan
from .explorer import (
    ExplorationReport,
    Explorer,
    Violation,
    verify,
)
from .model import ActivationSpec, ClientState, ModelState, initial_state
from .properties import (
    all_of,
    aspect_invariant,
    concurrency_bound,
    mutual_exclusion,
    never_aborts,
    occupancy_bound,
)

__all__ = [
    "ActivationSpec",
    "ClientState",
    "ExplorationReport",
    "Finding",
    "Explorer",
    "ModelState",
    "Violation",
    "all_of",
    "aspect_invariant",
    "concurrency_bound",
    "initial_state",
    "lint_chain",
    "lint_cluster",
    "lint_plan",
    "mutual_exclusion",
    "never_aborts",
    "occupancy_bound",
    "verify",
]
