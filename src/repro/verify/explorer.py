"""Explicit-state exploration of aspect compositions.

Breadth-first exploration of every interleaving of the modelled
activations, checking safety properties in every reached state and
reporting deadlocks (pending work, no enabled transition — e.g. a
buffer whose consumers all aborted while producers still BLOCK) with a
shortest counterexample trace.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from .model import ActivationSpec, ChainBuilder, ModelState, initial_state

#: A safety property: state -> error string or None.
Property = Callable[[ModelState], Optional[str]]

#: A trace is the transition labels from the root to a state.
Trace = Tuple[Tuple[str, str], ...]  # (kind, client)


@dataclass
class Violation:
    """A property violation or deadlock with its witness trace."""

    kind: str  # "property" | "deadlock"
    detail: str
    trace: Trace

    def format(self) -> str:
        steps = " -> ".join(f"{kind}({client})" for kind, client in self.trace)
        return f"{self.kind}: {self.detail}\n  trace: {steps or '<initial>'}"


@dataclass
class ExplorationReport:
    """Outcome of one exhaustive exploration."""

    states_explored: int
    transitions_taken: int
    violations: List[Violation] = field(default_factory=list)
    truncated: bool = False
    #: (from_id, label, to_id) edges when graph collection was requested
    edges: List[Tuple[int, str, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.truncated

    def summary(self) -> str:
        status = "OK" if self.ok else (
            "TRUNCATED" if self.truncated else "VIOLATIONS"
        )
        return (
            f"{status}: {self.states_explored} states, "
            f"{self.transitions_taken} transitions, "
            f"{len(self.violations)} violation(s)"
        )

    def to_dot(self, name: str = "composition") -> str:
        """Render the collected state graph as Graphviz DOT text.

        Requires the exploration to have run with
        ``collect_graph=True``; nodes are state ids, edges are labelled
        with the transition that produced them.
        """
        lines = [f"digraph {name} {{", "  rankdir=LR;",
                 '  node [shape=circle, fontsize=10];',
                 '  0 [shape=doublecircle, label="init"];']
        for source, label, target in self.edges:
            lines.append(f'  {source} -> {target} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)


class Explorer:
    """Breadth-first explorer over the activation model.

    Args:
        build_chains: fresh method -> aspect-chain mapping per path root.
        specs: the scripted clients.
        properties: safety checks run in every state.
        max_states: exploration budget; exceeding it sets ``truncated``
            rather than raising, so callers can distinguish "verified"
            from "ran out of budget".
    """

    def __init__(
        self,
        build_chains: ChainBuilder,
        specs: Sequence[ActivationSpec],
        properties: Sequence[Property] = (),
        max_states: int = 100_000,
    ) -> None:
        self.build_chains = build_chains
        self.specs = list(specs)
        self.properties = list(properties)
        self.max_states = max_states

    def run(self, stop_at_first: bool = True,
            collect_graph: bool = False) -> ExplorationReport:
        """Explore all interleavings; returns the exploration report.

        With ``collect_graph`` every transition (including those into
        already-visited states) is recorded for :meth:`ExplorationReport.to_dot`.
        """
        root = initial_state(self.build_chains, self.specs)
        root_fingerprint = root.fingerprint()
        visited = {root_fingerprint}
        state_ids = {root_fingerprint: 0}
        frontier: deque = deque([(root, ())])
        report = ExplorationReport(states_explored=1, transitions_taken=0)

        self._check_state(root, (), report)
        if report.violations and stop_at_first:
            return report

        while frontier:
            state, trace = frontier.popleft()
            transitions = state.enabled_transitions()
            if not transitions and state.has_pending_work():
                report.violations.append(Violation(
                    kind="deadlock",
                    detail=self._describe_deadlock(state),
                    trace=trace,
                ))
                if stop_at_first:
                    return report
                continue
            for transition in transitions:
                successor = state.apply(transition)
                report.transitions_taken += 1
                fingerprint = successor.fingerprint()
                kind, index = transition
                client_name = state.clients[index].spec.client
                if collect_graph:
                    source_id = state_ids[state.fingerprint()]
                    target_id = state_ids.setdefault(
                        fingerprint, len(state_ids)
                    )
                    report.edges.append(
                        (source_id, f"{kind}({client_name})", target_id)
                    )
                if fingerprint in visited:
                    continue
                visited.add(fingerprint)
                report.states_explored += 1
                step = (kind, client_name)
                successor_trace = trace + (step,)
                self._check_state(successor, successor_trace, report)
                if report.violations and stop_at_first:
                    return report
                frontier.append((successor, successor_trace))
                if report.states_explored >= self.max_states:
                    report.truncated = True
                    return report
        return report

    # ------------------------------------------------------------------
    def _check_state(self, state: ModelState, trace: Trace,
                     report: ExplorationReport) -> None:
        for check in self.properties:
            error = check(state)
            if error:
                report.violations.append(Violation(
                    kind="property", detail=error, trace=trace,
                ))

    @staticmethod
    def _describe_deadlock(state: ModelState) -> str:
        stuck = [
            f"{client.spec.client}({client.spec.method}, "
            f"{client.completed}/{client.spec.repeat}, {client.status})"
            for client in state.clients
            if client.status == "waiting"
            or (client.status == "idle"
                and client.completed < client.spec.repeat)
        ]
        return f"no enabled transition; waiting clients: {', '.join(stuck)}"


def verify(build_chains: ChainBuilder,
           specs: Sequence[ActivationSpec],
           properties: Sequence[Property] = (),
           max_states: int = 100_000,
           stop_at_first: bool = True) -> ExplorationReport:
    """One-call interface: explore and report.

    Example — prove the bounded-buffer composition deadlock- and
    overflow-free for 2 producers x 2 consumers::

        report = verify(
            build_chains=lambda: make_buffer_chains(capacity=1),
            specs=[
                ActivationSpec("p1", "put", repeat=2),
                ActivationSpec("p2", "put", repeat=2),
                ActivationSpec("c1", "take", repeat=2),
                ActivationSpec("c2", "take", repeat=2),
            ],
            properties=[occupancy_bound("put", capacity=1)],
        )
        assert report.ok, report.summary()
    """
    explorer = Explorer(build_chains, specs, properties,
                        max_states=max_states)
    return explorer.run(stop_at_first=stop_at_first)
