"""repro: the Aspect Moderator framework, reproduced.

A production-quality Python implementation of "Composing Concerns with a
Framework Approach" (Constantinides & Elrad, ICDCS 2001): an aspect-
oriented framework for concurrent systems in which participating methods
are guarded by pre-activation and post-activation phases coordinated by
an aspect moderator over a two-dimensional aspect bank.

Subpackages:

* :mod:`repro.core` — the framework (aspects, bank, factory, moderator,
  proxy, weaving, pointcuts, events);
* :mod:`repro.aspects` — reusable aspect library (synchronization,
  authentication, authorization, audit, timing, scheduling, fault
  tolerance, throughput, coordination, validation, caching);
* :mod:`repro.concurrency` — functional components and thread utilities;
* :mod:`repro.sim` — deterministic discrete-event simulation substrate;
* :mod:`repro.dist` — simulated distributed runtime (nodes, network,
  RPC, naming, load balancing, replication);
* :mod:`repro.apps` — trouble ticketing (the paper's example), auction,
  reservation, timecard;
* :mod:`repro.baselines` — hand-tangled and stdlib baselines;
* :mod:`repro.analysis` — separation-of-concerns metrics and sequence-
  trace verification;
* :mod:`repro.verify` — explicit-state model checking of aspect
  compositions (the paper's formal-verification open question);
* :mod:`repro.obs` — observability plane: activation spans, striped
  metrics, Prometheus/JSON exporters, cross-node trace propagation.

Quickstart::

    from repro.apps import build_ticketing_cluster
    from repro.concurrency import Ticket

    cluster = build_ticketing_cluster(capacity=8)
    cluster.proxy.open(Ticket(summary="quickstart"))
    ticket = cluster.proxy.assign("agent-1")
"""

from . import (
    analysis,
    apps,
    aspects,
    baselines,
    concurrency,
    core,
    dist,
    obs,
    sim,
    verify,
)
from .core import (
    ABORT,
    BLOCK,
    RESUME,
    Aspect,
    AspectBank,
    AspectModerator,
    AspectResult,
    Cluster,
    ComponentProxy,
    JoinPoint,
    MethodAborted,
    Tracer,
    moderated,
    participating,
    weave,
)

__version__ = "1.0.0"

__all__ = [
    "ABORT",
    "Aspect",
    "AspectBank",
    "AspectModerator",
    "AspectResult",
    "BLOCK",
    "Cluster",
    "ComponentProxy",
    "JoinPoint",
    "MethodAborted",
    "RESUME",
    "Tracer",
    "__version__",
    "analysis",
    "apps",
    "aspects",
    "baselines",
    "concurrency",
    "core",
    "dist",
    "moderated",
    "obs",
    "participating",
    "sim",
    "verify",
    "weave",
]
