"""Striped metrics registry: counters, gauges and histograms without a
global lock.

PR 1 removed the moderator-wide monitor so independent methods moderate
in parallel; metrics must not quietly reintroduce it. The seed's
``ModerationStats.bump`` serialized *every* activation of *every* method
on one lock — the single remaining cross-method serialization point,
paid even on the lock-free ``never_blocks`` fast path. This registry
removes it by **striping per writer thread**:

* each thread owns a private :class:`_Stripe` (created on its first
  write) holding plain dicts of partial sums;
* a write acquires only its *own* stripe's lock — never contended by
  another writer, because no two threads share a stripe. The lock
  exists solely so snapshots can get a consistent cut; between
  snapshots it is always uncontended, which on CPython is a single
  atomic compare-and-swap;
* :meth:`MetricsRegistry.snapshot` (and the exporters built on it)
  acquires *all* stripe locks at once, merges the partial sums, and
  releases — a consistent cut across every metric, so a multi-counter
  ``bump`` can never be observed torn.

Thread-striping subsumes per-lock-domain sharding: activations of
different lock domains necessarily run on different threads, so their
metric updates land on different stripes by construction.

Metric families follow the Prometheus data model — counters only go up,
gauges go both ways, histograms have fixed cumulative buckets (p50/p95/
p99 derivable via :func:`histogram_quantile`). Label values are plain
string tuples; a (family, labels) pair addresses one logical cell.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "CounterBlock",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MetricsRegistry",
    "MetricSnapshot",
    "histogram_quantile",
]

#: Default latency buckets, in seconds: 10 µs to 10 s, roughly
#: logarithmic — wide enough for a moderated in-process call (~µs) and a
#: parked activation (~ms–s) on one scale. Upper bound +inf is implicit.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
    1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
    250e-3, 500e-3, 1.0, 2.5, 5.0, 10.0,
)


class _Stripe:
    """One thread's private partial sums.

    ``counters`` maps (family, labels) -> float partial sum (counters
    and gauges share the representation; a gauge is a sum of deltas).
    ``histograms`` maps (family, labels) -> [sum, count, bucket_counts].
    """

    __slots__ = ("lock", "counters", "histograms")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.counters: Dict[Tuple[str, Tuple[str, ...]], float] = {}
        self.histograms: Dict[
            Tuple[str, Tuple[str, ...]], List[Any]
        ] = {}


@dataclass
class _Family:
    """Metadata of one registered metric family."""

    kind: str  # "counter" | "gauge" | "histogram"
    name: str
    help: str
    labelnames: Tuple[str, ...]
    buckets: Optional[Tuple[float, ...]] = None


class Counter:
    """Handle onto one counter cell; :meth:`inc` is the hot path."""

    __slots__ = ("_registry", "_key")

    def __init__(self, registry: "MetricsRegistry",
                 key: Tuple[str, Tuple[str, ...]]) -> None:
        self._registry = registry
        self._key = key

    def inc(self, amount: float = 1) -> None:
        stripe = self._registry._stripe()
        with stripe.lock:
            counters = stripe.counters
            counters[self._key] = counters.get(self._key, 0) + amount

    @property
    def value(self) -> float:
        return self._registry._cell_value(self._key)


class Gauge(Counter):
    """Up/down counter (sum of striped deltas = current level)."""

    __slots__ = ()

    def dec(self, amount: float = 1) -> None:
        self.inc(-amount)


class Histogram:
    """Handle onto one histogram cell with fixed cumulative buckets."""

    __slots__ = ("_registry", "_key", "_buckets")

    def __init__(self, registry: "MetricsRegistry",
                 key: Tuple[str, Tuple[str, ...]],
                 buckets: Tuple[float, ...]) -> None:
        self._registry = registry
        self._key = key
        self._buckets = buckets

    def observe(self, value: float) -> None:
        stripe = self._registry._stripe()
        index = bisect.bisect_left(self._buckets, value)
        with stripe.lock:
            entry = stripe.histograms.get(self._key)
            if entry is None:
                entry = stripe.histograms[self._key] = [
                    0.0, 0, [0] * (len(self._buckets) + 1)
                ]
            entry[0] += value
            entry[1] += 1
            entry[2][index] += 1

    @property
    def value(self) -> "HistogramValue":
        merged = self._registry._histogram_value(self._key, self._buckets)
        return merged


@dataclass
class HistogramValue:
    """Merged histogram state: sum, count, per-bucket counts."""

    buckets: Tuple[float, ...]
    counts: Tuple[int, ...]  # one per bucket plus the +inf overflow
    sum: float
    count: int

    def quantile(self, q: float) -> float:
        return histogram_quantile(self.buckets, self.counts, q)


def histogram_quantile(buckets: Tuple[float, ...],
                       counts: Iterable[int], q: float) -> float:
    """Estimate the q-quantile (0..1) from cumulative-bucket counts.

    Linear interpolation inside the target bucket, the same estimator
    ``histogram_quantile()`` uses in PromQL. Returns 0.0 for an empty
    histogram; values in the +inf overflow bucket clamp to the highest
    finite bound.
    """
    counts = list(counts)
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        if seen + bucket_count >= rank:
            upper = (
                buckets[index] if index < len(buckets) else buckets[-1]
            )
            lower = buckets[index - 1] if index > 0 else 0.0
            if index >= len(buckets):
                return buckets[-1]
            fraction = (rank - seen) / bucket_count
            return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
        seen += bucket_count
    return buckets[-1]


@dataclass
class MetricSnapshot:
    """Consistent view of one family: metadata plus per-label samples."""

    kind: str
    name: str
    help: str
    labelnames: Tuple[str, ...]
    buckets: Optional[Tuple[float, ...]]
    #: labels tuple -> float (counter/gauge) or HistogramValue
    samples: Dict[Tuple[str, ...], Any] = field(default_factory=dict)


class CounterBlock:
    """Fixed-name block of counters bumped together atomically.

    The migration target of ``ModerationStats``: one multi-name
    :meth:`bump` call increments several named counters under a single
    (thread-private) stripe-lock acquisition, so related counters can
    never be observed out of step by a snapshot.

    Single-name bumps take a lock-free fast path: each writer thread
    caches a direct reference to its stripe's cell, and since only the
    owning thread ever writes its stripe, the steady-state increment is
    two dict operations under the GIL. The cell is *inserted* under the
    stripe lock, so a snapshot iterating the stripe's dict (which it
    does under that lock) can never see the dict resize mid-iteration —
    at worst it misses an increment that lands during the merge, which
    the next snapshot observes.
    """

    __slots__ = ("_registry", "_keys", "names", "_cells")

    def __init__(self, registry: "MetricsRegistry", names: Iterable[str],
                 prefix: str = "", help: str = "") -> None:
        self._registry = registry
        self.names = tuple(names)
        self._keys: Dict[str, Tuple[str, Tuple[str, ...]]] = {}
        for name in self.names:
            family = registry.counter(prefix + name, help=help or name)
            self._keys[name] = family.labels()._key
        #: per-thread cache of name -> (stripe counters dict, cell key)
        self._cells = threading.local()

    def inc(self, name: str, amount: float = 1) -> None:
        """Single-counter increment — the lock-free fast path, directly.

        Equivalent to ``bump(name)`` without the varargs packing; RPC
        hot paths call this once per request, so the saved tuple
        allocation is measurable end to end.
        """
        cells = getattr(self._cells, "map", None)
        if cells is None:
            cells = self._cells.map = {}
        cell = cells.get(name)
        if cell is None:
            cell = cells[name] = self._seed_cell(name)
        counters, key = cell
        counters[key] = counters[key] + amount

    def bump(self, *names: str, amount: float = 1) -> None:
        if len(names) == 1:
            self.inc(names[0], amount)
            return
        registry = self._registry
        stripe = getattr(registry._local, "stripe", None)
        if stripe is None:
            stripe = registry._stripe()
        keys = self._keys
        with stripe.lock:
            counters = stripe.counters
            for name in names:
                key = keys[name]
                counters[key] = counters.get(key, 0) + amount

    def _seed_cell(self, name: str) -> Tuple[Dict[Any, float], Any]:
        """Insert this thread's cell under the stripe lock, once."""
        stripe = self._registry._stripe()
        key = self._keys[name]
        with stripe.lock:
            stripe.counters.setdefault(key, 0.0)
        return stripe.counters, key

    def value(self, name: str) -> float:
        return self._registry._cell_value(self._keys[name])

    def as_dict(self) -> Dict[str, int]:
        """Consistent snapshot of every counter in the block."""
        merged = self._registry._consistent_counters(
            [self._keys[name] for name in self.names]
        )
        return {
            name: int(merged[self._keys[name]]) for name in self.names
        }


class _FamilyHandle:
    """Factory for cell handles of one family (``family.labels(...)``)."""

    __slots__ = ("_registry", "_family")

    def __init__(self, registry: "MetricsRegistry",
                 family: _Family) -> None:
        self._registry = registry
        self._family = family

    def labels(self, *labelvalues: str) -> Any:
        if len(labelvalues) != len(self._family.labelnames):
            raise ValueError(
                f"{self._family.name} expects labels "
                f"{self._family.labelnames}, got {labelvalues!r}"
            )
        key = (self._family.name, tuple(str(v) for v in labelvalues))
        if self._family.kind == "histogram":
            return Histogram(self._registry, key, self._family.buckets)
        if self._family.kind == "gauge":
            return Gauge(self._registry, key)
        return Counter(self._registry, key)


class MetricsRegistry:
    """Registry of metric families over thread-striped storage."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._stripes: List[_Stripe] = []
        self._families: Dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # stripes
    # ------------------------------------------------------------------
    def _stripe(self) -> _Stripe:
        stripe = getattr(self._local, "stripe", None)
        if stripe is None:
            stripe = _Stripe()
            with self._lock:
                self._stripes.append(stripe)
            self._local.stripe = stripe
        return stripe

    @property
    def stripe_count(self) -> int:
        """Stripes created so far (one per writer thread seen)."""
        with self._lock:
            return len(self._stripes)

    # ------------------------------------------------------------------
    # family registration
    # ------------------------------------------------------------------
    def _register(self, kind: str, name: str, help: str,
                  labelnames: Tuple[str, ...],
                  buckets: Optional[Tuple[float, ...]]) -> _FamilyHandle:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, name, help, labelnames, buckets)
                self._families[name] = family
            elif family.kind != kind or family.labelnames != labelnames:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{family.kind} with labels {family.labelnames}"
                )
        return _FamilyHandle(self, family)

    def counter(self, name: str, help: str = "",
                labelnames: Iterable[str] = ()) -> _FamilyHandle:
        return self._register(
            "counter", name, help, tuple(labelnames), None
        )

    def gauge(self, name: str, help: str = "",
              labelnames: Iterable[str] = ()) -> _FamilyHandle:
        return self._register("gauge", name, help, tuple(labelnames), None)

    def histogram(
        self, name: str, help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> _FamilyHandle:
        buckets = tuple(sorted(buckets))
        return self._register(
            "histogram", name, help, tuple(labelnames), buckets
        )

    def counter_block(self, names: Iterable[str],
                      prefix: str = "") -> CounterBlock:
        return CounterBlock(self, names, prefix=prefix)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def _all_stripes(self) -> List[_Stripe]:
        with self._lock:
            return list(self._stripes)

    def _cell_value(self, key: Tuple[str, Tuple[str, ...]]) -> float:
        total = 0.0
        for stripe in self._all_stripes():
            with stripe.lock:
                total += stripe.counters.get(key, 0)
        return total

    def _consistent_counters(
        self, keys: List[Tuple[str, Tuple[str, ...]]]
    ) -> Dict[Tuple[str, Tuple[str, ...]], float]:
        """Merge the given counter cells under all stripe locks at once."""
        stripes = self._all_stripes()
        for stripe in stripes:
            stripe.lock.acquire()
        try:
            totals = {key: 0.0 for key in keys}
            for stripe in stripes:
                counters = stripe.counters
                for key in keys:
                    value = counters.get(key)
                    if value:
                        totals[key] += value
            return totals
        finally:
            for stripe in reversed(stripes):
                stripe.lock.release()

    def _histogram_value(self, key: Tuple[str, Tuple[str, ...]],
                         buckets: Tuple[float, ...]) -> HistogramValue:
        total_sum = 0.0
        total_count = 0
        counts = [0] * (len(buckets) + 1)
        for stripe in self._all_stripes():
            with stripe.lock:
                entry = stripe.histograms.get(key)
                if entry is None:
                    continue
                total_sum += entry[0]
                total_count += entry[1]
                for index, bucket_count in enumerate(entry[2]):
                    counts[index] += bucket_count
        return HistogramValue(
            buckets=buckets, counts=tuple(counts),
            sum=total_sum, count=total_count,
        )

    def collect(self) -> List[MetricSnapshot]:
        """Consistent snapshot of every family, for exporters.

        All stripe locks are held at once while merging, so the result
        is a true cut: every multi-metric update (a ``CounterBlock``
        bump, a histogram's sum/count/bucket triplet) appears either
        fully or not at all.
        """
        with self._lock:
            families = dict(self._families)
        stripes = self._all_stripes()
        for stripe in stripes:
            stripe.lock.acquire()
        try:
            counters: Dict[Tuple[str, Tuple[str, ...]], float] = {}
            histograms: Dict[Tuple[str, Tuple[str, ...]], List[Any]] = {}
            for stripe in stripes:
                for key, value in stripe.counters.items():
                    counters[key] = counters.get(key, 0.0) + value
                for key, entry in stripe.histograms.items():
                    merged = histograms.get(key)
                    if merged is None:
                        histograms[key] = [
                            entry[0], entry[1], list(entry[2])
                        ]
                    else:
                        merged[0] += entry[0]
                        merged[1] += entry[1]
                        for index, count in enumerate(entry[2]):
                            merged[2][index] += count
        finally:
            for stripe in reversed(stripes):
                stripe.lock.release()

        snapshots: List[MetricSnapshot] = []
        for name in sorted(families):
            family = families[name]
            snapshot = MetricSnapshot(
                kind=family.kind, name=family.name, help=family.help,
                labelnames=family.labelnames, buckets=family.buckets,
            )
            if family.kind == "histogram":
                for (fam_name, labels), entry in histograms.items():
                    if fam_name != name:
                        continue
                    snapshot.samples[labels] = HistogramValue(
                        buckets=family.buckets, counts=tuple(entry[2]),
                        sum=entry[0], count=entry[1],
                    )
            else:
                for (fam_name, labels), value in counters.items():
                    if fam_name != name:
                        continue
                    snapshot.samples[labels] = value
            snapshots.append(snapshot)
        return snapshots

    def snapshot(self) -> Dict[str, Dict[Tuple[str, ...], Any]]:
        """``collect()`` as a nested dict: name -> labels -> value."""
        return {
            family.name: dict(family.samples)
            for family in self.collect()
        }
