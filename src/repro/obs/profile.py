"""Clause profiler: per-clause cost/veto telemetry that tunes the plan.

Until now the obs plane only *watched* the moderation seams. This module
closes the loop: a :class:`ClauseProfiler` installed on a moderator

1. **records** — every compiled plan's ``evaluate``/``postaction``
   callables are wrapped at *compile time* with thin instrumented
   shims writing into the striped :class:`~repro.obs.metrics
   .MetricsRegistry`: exact per-(method, concern) evaluation and
   veto counters (``repro_clause_eval_total`` /
   ``repro_clause_veto_total``) plus a *sampled* cost histogram
   (``repro_clause_cost_ns``, 1-in-``sample_rate`` clause calls pay the
   two clock reads), so an always-on profiler does not re-introduce the
   full-recording tax of an enabled span recorder;

2. **feeds back** — :meth:`refresh` folds those counters into a
   per-cell profile and bumps the moderator's ``_profile_epoch`` (a
   component of the composite plan-revision key), so every plan
   recompiles through the standard revision mechanism and the compile
   hook applies three optimizations:

   * **reordering** — maximal runs of adjacent cells that *mutually*
     declare commutativity (``Aspect.commutes_with``) are sorted
     cheapest-most-vetoing-first: ascending ``cost / veto_rate``, the
     classical optimal order for independent short-circuiting filters
     (swapping adjacent cells i, j helps exactly when
     ``c_i/v_i < c_j/v_j``);
   * **memoization** — cells declaring ``idempotent_precondition``
     with an aspect-supplied ``cache_key`` get an LRU+TTL memo of
     RESUME votes (the ouroboros pattern: strategy-owned cache keys,
     fail-open/fail-closed on key errors matching the cell's
     quarantine policy). Only RESUME is ever cached — BLOCK must
     re-poll the condition it waits on, ABORT may depend on per-call
     state;
   * **elision** — with ``skip_analysis``, cells whose aspect declares
     ``pure_observer`` (and ``never_blocks``) are dropped from the
     compiled plan entirely: the hot-path escape.

Every decision is surfaced: plans carry a ``profile`` report rendered
by ``explain()`` / ``plan_table`` ("reordered by profile", "memoized",
"elided"), the metric families export over Prometheus/JSON like any
other, and ``python -m repro profile`` prints the live table.

Stale-profile hygiene: a cell's statistics are *baselined* (the
registry's counters are monotonic, as Prometheus counters must be), and
the baseline is re-snapped whenever the cell's aspect instance changes
(``bank.swap``, ``register_aspect(replace=True)`` — detected at compile
time via a weak reference) or the cell is reinstated from quarantine —
so a quarantined-then-healed aspect is never permanently ordered by its
sick-era profile.
"""

from __future__ import annotations

import math
import threading
import time
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.results import AspectResult

from .metrics import MetricsRegistry

__all__ = ["CLAUSE_COST_BUCKETS", "ClauseProfiler", "MemoCache"]

#: Cost buckets in *nanoseconds*: 250 ns (an attribute probe) up to
#: 10 ms (a clause that should never be on a hot path). +Inf implicit.
CLAUSE_COST_BUCKETS: Tuple[float, ...] = (
    250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1e6, 1e7,
)

#: sentinel for "no usable cache key this call" (bypass the memo)
_BYPASS = object()


class MemoCache:
    """Bounded LRU + TTL set of cache keys whose clause voted RESUME.

    Presence of a live key *is* the cached vote; there is no payload.
    ``get`` refreshes recency, expired entries drop lazily, inserts
    evict the least-recently-used key past ``capacity``.
    """

    __slots__ = ("capacity", "ttl", "_clock", "_lock", "_data",
                 "hits", "misses", "expirations")

    def __init__(self, capacity: int = 1024, ttl: float = 60.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.capacity = max(1, int(capacity))
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._data: "OrderedDict[Any, float]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.expirations = 0

    def get(self, key: Any) -> bool:
        with self._lock:
            expires = self._data.get(key)
            if expires is None:
                self.misses += 1
                return False
            if expires < self._clock():
                del self._data[key]
                self.expirations += 1
                self.misses += 1
                return False
            self._data.move_to_end(key)
            self.hits += 1
            return True

    def put(self, key: Any) -> None:
        with self._lock:
            self._data[key] = self._clock() + self.ttl
            self._data.move_to_end(key)
            if len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class _CellState:
    """Per-(method, concern) profiler bookkeeping.

    Holds the cached metric handles (striped-registry writes through
    them are the wrappers' whole hot path), the memo cache, the weak
    reference identifying the profiled aspect instance (a different
    instance means the statistics describe someone else — re-baseline),
    and the monotonic-counter baselines that effective statistics are
    measured from.
    """

    __slots__ = (
        "method_id", "concern", "evals_pre", "evals_post", "veto_block",
        "veto_abort", "cost_pre", "cost_post", "memo_hit", "memo_miss",
        "memo_bypass", "memo", "aspect_ref", "baseline",
    )

    def __init__(self, profiler: "ClauseProfiler", method_id: str,
                 concern: str) -> None:
        self.method_id = method_id
        self.concern = concern
        self.evals_pre = profiler._evals.labels(
            method_id, concern, "precondition")
        self.evals_post = profiler._evals.labels(
            method_id, concern, "postaction")
        self.veto_block = profiler._vetoes.labels(method_id, concern,
                                                  "block")
        self.veto_abort = profiler._vetoes.labels(method_id, concern,
                                                  "abort")
        self.cost_pre = profiler._cost.labels(method_id, concern,
                                              "precondition")
        self.cost_post = profiler._cost.labels(method_id, concern,
                                               "postaction")
        self.memo_hit = profiler._memo.labels(method_id, concern, "hit")
        self.memo_miss = profiler._memo.labels(method_id, concern, "miss")
        self.memo_bypass = profiler._memo.labels(method_id, concern,
                                                 "bypass")
        self.memo: Optional[MemoCache] = None
        self.aspect_ref: Optional[Any] = None
        #: counter values at the last reset; effective = current - base
        self.baseline: Dict[str, float] = {}

    # -- effective (since-baseline) readings ---------------------------
    def effective(self) -> Dict[str, float]:
        base = self.baseline
        evals = self.evals_pre.value - base.get("evals", 0.0)
        vetoes = (
            self.veto_block.value + self.veto_abort.value
            - base.get("vetoes", 0.0)
        )
        cost = self.cost_pre.value
        cost_sum = cost.sum - base.get("cost_sum", 0.0)
        cost_count = cost.count - base.get("cost_count", 0.0)
        return {
            "evals": evals,
            "vetoes": vetoes,
            "veto_rate": (vetoes / evals) if evals else 0.0,
            "mean_cost_ns": (cost_sum / cost_count) if cost_count else 0.0,
            "cost_samples": cost_count,
        }

    def reset(self) -> None:
        """Re-baseline: effective statistics restart from zero."""
        cost = self.cost_pre.value
        self.baseline = {
            "evals": self.evals_pre.value,
            "vetoes": self.veto_block.value + self.veto_abort.value,
            "cost_sum": cost.sum,
            "cost_count": cost.count,
        }
        if self.memo is not None:
            self.memo.clear()


class _ProfiledPre:
    """Instrumented (and optionally memoized) precondition callable.

    Replaces ``PlanCell.evaluate`` at compile time, so the moderator's
    executors need no profiler branch at all: an uninstalled profiler
    costs the hot path nothing. The shim counts every evaluation and
    veto exactly, times 1-in-``rate`` calls into the cost histogram
    (the tick is racy under threads — a stride, not a guarantee; the
    histogram is a sample either way), and consults/feeds the memo
    cache when one is attached.
    """

    __slots__ = ("inner", "state", "rate", "_tick", "memo", "key_fn",
                 "fail_closed")

    def __init__(self, inner: Callable[[Any], AspectResult],
                 state: _CellState, rate: int,
                 memo: Optional[MemoCache],
                 key_fn: Optional[Callable[[Any], Any]],
                 fail_closed: bool) -> None:
        self.inner = inner
        self.state = state
        self.rate = max(1, int(rate))
        self._tick = 0
        self.memo = memo
        self.key_fn = key_fn
        self.fail_closed = fail_closed

    def __call__(self, joinpoint: Any) -> AspectResult:
        state = self.state
        memo = self.memo
        key: Any = _BYPASS
        if memo is not None:
            try:
                key = self.key_fn(joinpoint)
            except Exception:
                if self.fail_closed:
                    # Matches the cell's quarantine policy: a guard that
                    # cannot compute its key must not be silently
                    # re-evaluated as if nothing happened — the error
                    # propagates as this cell's AspectFault.
                    raise
                key = _BYPASS
            if key is _BYPASS:
                state.memo_bypass.inc()
            elif memo.get(key):
                state.memo_hit.inc()
                state.evals_pre.inc()
                return AspectResult.RESUME
            else:
                state.memo_miss.inc()
        self._tick += 1
        if self._tick >= self.rate:
            self._tick = 0
            began = time.perf_counter_ns()
            result = self.inner(joinpoint)
            state.cost_pre.observe(time.perf_counter_ns() - began)
        else:
            result = self.inner(joinpoint)
        state.evals_pre.inc()
        if result is AspectResult.RESUME:
            if key is not _BYPASS:
                memo.put(key)
        elif result is AspectResult.BLOCK:
            state.veto_block.inc()
        else:
            state.veto_abort.inc()
        return result


class _ProfiledPost:
    """Instrumented postaction callable (count always, time sampled)."""

    __slots__ = ("inner", "state", "rate", "_tick")

    def __init__(self, inner: Callable[[Any], None], state: _CellState,
                 rate: int) -> None:
        self.inner = inner
        self.state = state
        self.rate = max(1, int(rate))
        self._tick = 0

    def __call__(self, joinpoint: Any) -> None:
        state = self.state
        self._tick += 1
        if self._tick >= self.rate:
            self._tick = 0
            began = time.perf_counter_ns()
            self.inner(joinpoint)
            state.cost_post.observe(time.perf_counter_ns() - began)
        else:
            self.inner(joinpoint)
        state.evals_post.inc()


class ClauseProfiler:
    """Always-on sampling clause profiler + feedback plan optimizer.

    Usage::

        profiler = ClauseProfiler(sample_rate=64).install(moderator)
        run_workload()
        profiler.refresh()      # fold counters -> profile, recompile
        print(profiler.render_report())

    Args:
        sample_rate: 1-in-N clause calls pay the cost-histogram clock
            reads (counters are always exact). 1 times everything.
        reorder: sort mutually-commuting runs cheapest-most-vetoing
            first at compile time (needs ``refresh()``ed profile data).
        memoize: attach LRU+TTL memo caches to cells declaring
            ``idempotent_precondition`` + ``cache_key``.
        skip_analysis: elide ``pure_observer`` cells from compiled
            plans entirely (the ouroboros hot-path escape).
        memo_capacity / memo_ttl: memo cache geometry, per cell.
        min_samples: evaluations a cell needs (since its baseline)
            before reordering trusts its statistics; colder cells keep
            their seed position.
    """

    def __init__(self, moderator: Optional[Any] = None,
                 registry: Optional[MetricsRegistry] = None,
                 sample_rate: int = 64,
                 reorder: bool = True,
                 memoize: bool = True,
                 skip_analysis: bool = True,
                 memo_capacity: int = 1024,
                 memo_ttl: float = 60.0,
                 min_samples: int = 20) -> None:
        self.moderator = None
        self.sample_rate = max(1, int(sample_rate))
        self.reorder = reorder
        self.memoize = memoize
        self.skip_analysis = skip_analysis
        self.memo_capacity = memo_capacity
        self.memo_ttl = memo_ttl
        self.min_samples = max(1, int(min_samples))
        self._registry = registry
        self._lock = threading.Lock()
        self._cells: Dict[Tuple[str, str], _CellState] = {}
        #: profile snapshot consulted by the compile hook; refreshed
        #: explicitly (refresh()) so plan decisions are reproducible
        #: between refreshes rather than drifting with live counters
        self._snapshot: Dict[Tuple[str, str], Dict[str, float]] = {}
        self.refreshes = 0
        if registry is not None:
            self._bind_families(registry)
        if moderator is not None:
            self.install(moderator)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _bind_families(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._evals = registry.counter(
            "repro_clause_eval_total",
            help="Clause evaluations by (method, concern, clause)",
            labelnames=("method", "concern", "clause"),
        )
        self._vetoes = registry.counter(
            "repro_clause_veto_total",
            help="Precondition vetoes by (method, concern, outcome)",
            labelnames=("method", "concern", "outcome"),
        )
        self._cost = registry.histogram(
            "repro_clause_cost_ns",
            help="Sampled clause cost in nanoseconds "
                 "by (method, concern, clause)",
            labelnames=("method", "concern", "clause"),
            buckets=CLAUSE_COST_BUCKETS,
        )
        self._memo = registry.counter(
            "repro_clause_memo_total",
            help="Memoized-precondition lookups "
                 "by (method, concern, result)",
            labelnames=("method", "concern", "result"),
        )

    def install(self, moderator: Any) -> "ClauseProfiler":
        """Attach to ``moderator``; all its future plans are profiled.

        Uses the moderator's own stats registry unless one was passed
        explicitly, so the clause families export alongside the
        protocol counters. Assigning ``moderator.profiler`` bumps the
        profile epoch — every cached plan recompiles instrumented.
        """
        if self._registry is None:
            self._bind_families(moderator.stats.registry)
        self.moderator = moderator
        moderator.profiler = self
        return self

    def uninstall(self) -> None:
        """Detach; the next recompile strips every wrapper and memo."""
        moderator, self.moderator = self.moderator, None
        if moderator is not None and moderator.profiler is self:
            moderator.profiler = None

    # ------------------------------------------------------------------
    # per-cell state
    # ------------------------------------------------------------------
    def _state_for(self, method_id: str, concern: str) -> _CellState:
        key = (method_id, concern)
        state = self._cells.get(key)
        if state is None:
            with self._lock:
                state = self._cells.setdefault(
                    key, _CellState(self, method_id, concern)
                )
        return state

    def reset_cell(self, method_id: str, concern: str) -> None:
        """Forget a cell's profile (baseline reset + memo drop).

        Called by the moderator on ``reinstate_aspect`` and by the
        compile hook when it detects the cell's aspect instance changed
        (``bank.swap`` / ``replace=True``): statistics gathered against
        the old instance — or the quarantined era — must not order the
        healed composition.
        """
        state = self._cells.get((method_id, concern))
        if state is not None:
            state.reset()
            self._snapshot.pop((method_id, concern), None)

    def profile_of(self, method_id: str,
                   concern: str) -> Optional[Dict[str, float]]:
        """Effective (since-baseline) statistics for one cell, live."""
        state = self._cells.get((method_id, concern))
        return state.effective() if state is not None else None

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def refresh(self) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Fold live counters into the decision snapshot and recompile.

        The snapshot — not the live registry — is what the compile hook
        orders by, so every plan compiled between two refreshes sees
        one consistent profile. Bumps the moderator's profile epoch, so
        cached plans recompile on their next activation.
        """
        with self._lock:
            self._snapshot = {
                key: state.effective()
                for key, state in self._cells.items()
            }
            self.refreshes += 1
        if self.moderator is not None:
            self.moderator.bump_profile_epoch()
        return dict(self._snapshot)

    # ------------------------------------------------------------------
    # compile hook (called by AspectModerator._compile_plan)
    # ------------------------------------------------------------------
    def plan_pairs(
        self, method_id: str, pairs: List[Tuple[str, Any]],
    ) -> Tuple[List[Tuple[str, Any]], Dict[str, Any]]:
        """Apply elision and reordering; report every decision.

        Runs *after* the moderator's ordering policy — the policy states
        intent ("guards first"), the profiler optimizes within what the
        declarations say is semantically free. Also the seam where
        swapped aspect instances are detected and their cells
        re-baselined (stale-profile hygiene).
        """
        decisions: Dict[str, Any] = {
            "elided": [], "memoized": [], "reordered": False,
            "order": None, "epoch": self.refreshes,
        }
        for concern, aspect in pairs:
            state = self._state_for(method_id, concern)
            previous = state.aspect_ref
            if previous is not None and previous() is not aspect:
                state.reset()
                self._snapshot.pop((method_id, concern), None)
            if previous is None or previous() is not aspect:
                try:
                    state.aspect_ref = weakref.ref(aspect)
                except TypeError:  # un-weakref-able aspect: best effort
                    state.aspect_ref = lambda bound=aspect: bound
        if self.skip_analysis:
            kept = []
            for concern, aspect in pairs:
                if getattr(aspect, "pure_observer", False) and \
                        aspect.never_blocks:
                    decisions["elided"].append(concern)
                else:
                    kept.append((concern, aspect))
            pairs = kept
        if self.reorder and len(pairs) > 1:
            reordered = self._reorder(method_id, pairs)
            if [c for c, _ in reordered] != [c for c, _ in pairs]:
                decisions["reordered"] = True
            pairs = reordered
        decisions["order"] = [concern for concern, _ in pairs]
        return pairs, decisions

    @staticmethod
    def _mutual(first: Tuple[str, Any], second: Tuple[str, Any]) -> bool:
        """Do these two cells *mutually* declare commutativity?"""

        def declares(aspect: Any, other: str) -> bool:
            commutes = getattr(aspect, "commutes_with", ())
            if commutes == "*":
                return True
            return "*" in commutes or other in commutes

        return declares(first[1], second[0]) and \
            declares(second[1], first[0])

    def _score(self, method_id: str, concern: str) -> float:
        """Expected-cost score: ascending = cheapest-most-vetoing first.

        ``cost / veto_rate`` per the adjacent-exchange argument; a tiny
        epsilon keeps never-vetoing cells comparable among themselves
        (cheapest first — harmless, since all of them run anyway).
        Cells without enough samples score +inf and keep seed order.
        """
        stats = self._snapshot.get((method_id, concern))
        if stats is None or stats["evals"] < self.min_samples or \
                not stats["cost_samples"]:
            return math.inf
        return stats["mean_cost_ns"] / (stats["veto_rate"] + 1e-3)

    def _reorder(self, method_id: str,
                 pairs: List[Tuple[str, Any]]) -> List[Tuple[str, Any]]:
        """Sort each maximal mutually-commuting run by score (stable)."""
        result: List[Tuple[str, Any]] = []
        run: List[Tuple[str, Any]] = []

        def flush() -> None:
            if len(run) > 1:
                run.sort(
                    key=lambda pair: self._score(method_id, pair[0])
                )
            result.extend(run)
            run.clear()

        for pair in pairs:
            if run and not all(self._mutual(pair, member)
                               for member in run):
                flush()
            run.append(pair)
        flush()
        return result

    def instrument(self, plan: Any) -> None:
        """Wrap a freshly compiled plan's cells with profiled shims.

        Called by the moderator before the plan is published; cells
        eligible for memoization (declared idempotent, key supplied,
        ``memoize`` on) get their memo cache attached here and are
        recorded in the plan's profile report.
        """
        from repro.core.health import FAIL_CLOSED

        profile = plan.profile
        for cell in plan.cells:
            state = self._state_for(plan.method_id, cell.concern)
            memo = None
            key_fn = None
            fail_closed = False
            aspect = cell.aspect
            if self.memoize and \
                    getattr(aspect, "idempotent_precondition", False):
                key_fn = getattr(aspect, "cache_key", None)
                if key_fn is not None:
                    if state.memo is None:
                        state.memo = MemoCache(
                            capacity=self.memo_capacity,
                            ttl=self.memo_ttl,
                        )
                    memo = state.memo
                    fail_closed = cell.policy == FAIL_CLOSED
                    if profile is not None and \
                            cell.concern not in profile["memoized"]:
                        profile["memoized"].append(cell.concern)
            cell.evaluate = _ProfiledPre(
                cell.evaluate, state, self.sample_rate, memo, key_fn,
                fail_closed,
            )
            cell.postaction = _ProfiledPost(
                cell.postaction, state, self.sample_rate,
            )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> List[Dict[str, Any]]:
        """Per-cell effective statistics, most expensive first."""
        rows = []
        for (method_id, concern), state in sorted(self._cells.items()):
            stats = state.effective()
            if not stats["evals"] and not stats["cost_samples"]:
                continue
            cost = state.cost_pre.value
            memo = state.memo
            rows.append({
                "method": method_id,
                "concern": concern,
                "evals": int(stats["evals"]),
                "vetoes": int(stats["vetoes"]),
                "veto_rate": stats["veto_rate"],
                "mean_cost_ns": stats["mean_cost_ns"],
                "p95_cost_ns": cost.quantile(0.95) if cost.count else 0.0,
                "memo_hits": memo.hits if memo is not None else 0,
                "memo_size": len(memo) if memo is not None else 0,
            })
        rows.sort(key=lambda row: row["mean_cost_ns"] * row["evals"],
                  reverse=True)
        return rows

    def render_report(self) -> str:
        """The profile table, fixed-width (the CLI's ``profile`` view)."""
        rows = self.report()
        if not rows:
            return "(no profiled clause evaluations yet)"
        header = (
            f"{'method':<14}{'concern':<16}{'evals':>8}{'veto%':>8}"
            f"{'mean':>10}{'p95':>10}{'memo hits':>11}"
        )
        lines = [header]
        for row in rows:
            lines.append(
                f"{row['method']:<14}{row['concern']:<16}"
                f"{row['evals']:>8}{row['veto_rate'] * 100:>7.1f}%"
                f"{row['mean_cost_ns']:>8.0f}ns"
                f"{row['p95_cost_ns']:>8.0f}ns"
                f"{row['memo_hits']:>11}"
            )
        return "\n".join(lines)
