"""The observability plane: one object that wires spans + metrics in.

:class:`ObservabilityPlane` composes the pieces of ``repro.obs`` around
one moderator:

* a :class:`~repro.obs.spans.SpanRecorder` building activation span
  trees (and wake edges) from the protocol event stream;
* a :class:`MetricsListener` folding the same stream into the
  moderator's striped :class:`~repro.obs.metrics.MetricsRegistry` —
  per-(method, concern, phase) latency histograms, outcome counters,
  park-time histograms, fault/quarantine/stall counters;
* sampled gauges (wait-queue depth per method, parked activations)
  refreshed on demand from the moderator's own snapshots;
* the exporters (:func:`~repro.obs.export.to_prometheus`,
  :func:`~repro.obs.export.to_json`) bound to that registry/recorder.

The plane shares the registry ``ModerationStats`` already writes to, so
one Prometheus scrape carries both the protocol counters and the
span-derived latency families.

Disabled is the default state and costs nothing: until :meth:`enable`
subscribes the listeners, the bus has no subscribers, so the moderator
neither constructs events nor reads clocks (both gate on
``has_listeners``). ``bench_obs_overhead.py`` holds this to ≤ 2% on the
Figure-3 fast path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import export
from .metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from .spans import SpanRecorder

__all__ = ["MetricsListener", "ObservabilityPlane"]

#: park/stall buckets: 1 ms to 60 s — parked activations live on a
#: coarser scale than aspect phases
PARK_BUCKETS: Tuple[float, ...] = (
    1e-3, 5e-3, 10e-3, 50e-3, 100e-3, 250e-3, 500e-3,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class MetricsListener:
    """EventBus listener that feeds the striped metrics registry.

    Handle objects are cached per label tuple, so steady-state handling
    of one event is a couple of dict probes plus one striped write — no
    per-event family lookups or handle construction.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._events = registry.counter(
            "repro_protocol_events_total",
            help="Protocol events by kind",
            labelnames=("method", "kind"),
        )
        self._phase_seconds = registry.histogram(
            "repro_phase_seconds",
            help="Aspect phase latency by (method, concern, phase)",
            labelnames=("method", "concern", "phase"),
            buckets=DEFAULT_LATENCY_BUCKETS,
        )
        self._outcomes = registry.counter(
            "repro_precondition_outcomes_total",
            help="Precondition votes by (method, concern, outcome)",
            labelnames=("method", "concern", "outcome"),
        )
        self._park_seconds = registry.histogram(
            "repro_park_seconds",
            help="Seconds an activation spent parked before waking",
            labelnames=("method",),
            buckets=PARK_BUCKETS,
        )
        self._faults = registry.counter(
            "repro_aspect_faults_total",
            help="Aspect contract violations by (method, concern, phase)",
            labelnames=("method", "concern", "phase"),
        )
        self._quarantines = registry.counter(
            "repro_quarantines_total",
            help="Cells quarantined by (method, concern, policy)",
            labelnames=("method", "concern", "policy"),
        )
        self._stall_seconds = registry.histogram(
            "repro_watchdog_stall_seconds",
            help="Parked ages reported stalled by the watchdog",
            labelnames=("method",),
            buckets=PARK_BUCKETS,
        )
        self._listener_cache: Dict[Tuple[str, ...], Any] = {}

    def _cached(self, family: Any, *labels: str) -> Any:
        key = (id(family),) + labels
        handle = self._listener_cache.get(key)
        if handle is None:
            handle = self._listener_cache[key] = family.labels(*labels)
        return handle

    def __call__(self, event: Any) -> None:
        kind = event.kind
        method = event.method_id
        self._cached(self._events, method, kind).inc()
        if kind == "precondition":
            self._cached(
                self._phase_seconds, method, event.concern, "precondition"
            ).observe(event.duration)
            self._cached(
                self._outcomes, method, event.concern, event.detail
            ).inc()
        elif kind == "postaction":
            self._cached(
                self._phase_seconds, method, event.concern, "postaction"
            ).observe(event.duration)
        elif kind == "unblocked":
            self._cached(self._park_seconds, method).observe(
                event.duration
            )
        elif kind == "aspect_fault":
            phase = event.detail.split(":", 1)[0]
            self._cached(
                self._faults, method, event.concern, phase
            ).inc()
        elif kind == "quarantine":
            self._cached(
                self._quarantines, method, event.concern, event.detail
            ).inc()
        elif kind == "watchdog_stall":
            self._cached(self._stall_seconds, method).observe(
                event.duration
            )


class ObservabilityPlane:
    """Spans + metrics + exporters around one moderator.

    Usage::

        plane = ObservabilityPlane(moderator, node="node-a")
        with plane:                      # or plane.enable() / disable()
            run_workload()
        print(plane.prometheus())
        print(plane.flame("push"))

    ``registry`` defaults to the moderator's own stats registry, so the
    protocol counters (``repro_moderation_*``) export alongside the
    span-derived families.

    ``sample_rate`` passes through to the :class:`SpanRecorder`: span
    trees are built for 1-in-N activations while the recorder's exact
    counters and every metrics family keep full accuracy — the middle
    ground between disabled and full-fidelity recording (measured as
    ``enabled_sampled`` in ``bench_obs_overhead.py``).
    """

    def __init__(self, moderator: Any, node: str = "local",
                 registry: Optional[MetricsRegistry] = None,
                 max_finished: int = 4096,
                 sample_rate: int = 1) -> None:
        self.moderator = moderator
        self.registry = (
            registry if registry is not None
            else moderator.stats.registry
        )
        self.recorder = SpanRecorder(node=node, max_finished=max_finished,
                                     sample_rate=sample_rate)
        self.metrics = MetricsListener(self.registry)
        self._queue_gauge = self.registry.gauge(
            "repro_wait_queue_depth",
            help="Threads parked per method queue (sampled)",
            labelnames=("method",),
        )
        self._parked_gauge = self.registry.gauge(
            "repro_parked_activations",
            help="Activations currently parked on the moderator (sampled)",
        ).labels()
        self._gauge_lock = threading.Lock()
        self._last_depths: Dict[str, int] = {}
        self._last_parked = 0
        self._unsubscribes: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return bool(self._unsubscribes)

    def enable(self) -> "ObservabilityPlane":
        """Subscribe the recorder and metrics listener to the bus."""
        if not self._unsubscribes:
            bus = self.moderator.events
            self._unsubscribes = [
                bus.subscribe(self.metrics),
                bus.subscribe(self.recorder),
            ]
        return self

    def disable(self) -> None:
        """Unsubscribe everything; the bus returns to zero-cost emits."""
        unsubscribes, self._unsubscribes = self._unsubscribes, []
        for unsubscribe in unsubscribes:
            unsubscribe()

    def __enter__(self) -> "ObservabilityPlane":
        return self.enable()

    def __exit__(self, *exc_info: object) -> None:
        self.disable()

    # ------------------------------------------------------------------
    # sampled gauges
    # ------------------------------------------------------------------
    def refresh_gauges(self) -> None:
        """Sample queue depths / parked count into the gauges.

        Gauges are striped delta-sums, so sampling applies the diff
        against the previous sample (serialized by a plane-local lock —
        refreshes are scrape-rate, not hot-path).
        """
        depths = self.moderator.queue_lengths()
        parked = len(self.moderator.parked_snapshot())
        with self._gauge_lock:
            for method in set(self._last_depths) | set(depths):
                delta = depths.get(method, 0) - \
                    self._last_depths.get(method, 0)
                if delta:
                    self._queue_gauge.labels(method).inc(delta)
            self._last_depths = dict(depths)
            if parked != self._last_parked:
                self._parked_gauge.inc(parked - self._last_parked)
                self._last_parked = parked

    # ------------------------------------------------------------------
    # export / rendering
    # ------------------------------------------------------------------
    def prometheus(self) -> str:
        """Prometheus text exposition of the shared registry."""
        self.refresh_gauges()
        return export.to_prometheus(self.registry)

    def json(self, indent: int = 2) -> str:
        """JSON snapshot: metrics + spans + wake edges + aspect health."""
        self.refresh_gauges()
        return export.to_json(self.registry, self.recorder, indent=indent,
                              health=self.moderator.aspect_health())

    def snapshot(self) -> Dict[str, Any]:
        self.refresh_gauges()
        return export.snapshot_dict(self.registry, self.recorder,
                                    health=self.moderator.aspect_health())

    def flame(self, method_id: str) -> str:
        """Per-method flame-style span breakdown (CLI's obs view)."""
        return self.recorder.flame(method_id)

    def summary(self) -> Dict[str, Any]:
        """Compact live-summary numbers for the CLI table."""
        stats = self.moderator.stats.as_dict()
        roots = self.recorder.finished
        per_method: Dict[str, Dict[str, Any]] = {}
        for root in roots:
            entry = per_method.setdefault(root.method_id, {
                "activations": 0, "total_seconds": 0.0,
                "aborted": 0, "faults": 0,
            })
            entry["activations"] += 1
            entry["total_seconds"] += root.duration
            if root.status == "aborted":
                entry["aborted"] += 1
            elif root.status in ("fault", "timeout"):
                entry["faults"] += 1
        return {
            "node": self.recorder.node,
            "stats": stats,
            "methods": per_method,
            #: exact per-method event counts — unlike ``methods`` (span
            #: derived, so 1-in-N under a sampled recorder) these are
            #: maintained for every activation
            "counts": {
                method: dict(entry)
                for method, entry in self.recorder.counts.items()
            },
            "sample_rate": self.recorder.sample_rate,
            "active": len(self.recorder.active()),
            "wake_edges": len(self.recorder.wake_edges),
            "listener_errors": self.moderator.events.listener_errors,
        }
