"""Cross-node trace propagation: one stitched trace per causal chain.

A span recorder observes one moderator — one "node". To see a ticket
opened on node A and assigned on node B as *one* trace, the RPC layer
carries a :class:`TraceContext` (trace id, parent span id, wall-clock
epoch anchor) on the wire: :meth:`repro.dist.rpc.Client.call_node`
attaches the caller's current context to each request, and
:meth:`repro.dist.node.Node` activates it around the servant call, so
the server-side :class:`~repro.obs.spans.SpanRecorder` roots its
activation span under the caller's span instead of opening a fresh
trace.

The context is ambient per thread (the protocol runs synchronously on
the calling thread, and bus listeners are invoked inline), mirroring
how W3C ``traceparent`` context flows through real tracing stacks.
Monotonic clocks are incomparable across processes, so the context also
carries the *wall-clock epoch* of the trace root: exporters emit
wall-clock timestamps (each recorder applies its own anchor), and the
shared epoch lets a stitcher sanity-align segments from different
processes.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "TraceContext",
    "activate",
    "child_context",
    "current",
    "from_wire",
    "new_span_id",
    "new_trace_id",
    "start_trace",
    "to_wire",
]

_state = threading.local()
_span_sequence = itertools.count(1)
_span_prefix = uuid.uuid4().hex[:8]


def new_trace_id() -> str:
    """A fresh globally unique trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh span id, unique across nodes within this process."""
    return f"{_span_prefix}-{next(_span_sequence):x}"


@dataclass(frozen=True)
class TraceContext:
    """The propagated slice of a trace: where new spans should attach."""

    trace_id: str
    span_id: str
    #: wall-clock (``time.time``) instant the trace was rooted at — the
    #: cross-process alignment anchor (monotonic clocks don't travel)
    epoch: float
    #: key/value annotations riding the trace (W3C ``baggage`` style):
    #: e.g. the shard router stamps ``("shard", ...)`` so server-side
    #: spans can be grouped per shard. Empty for nearly every trace, and
    #: omitted from the wire form when empty, so the common path pays
    #: nothing.
    baggage: Tuple[Tuple[str, str], ...] = ()

    def child(self) -> "TraceContext":
        """A context for work nested under a fresh child span."""
        return TraceContext(self.trace_id, new_span_id(), self.epoch,
                            self.baggage)


def current() -> Optional[TraceContext]:
    """The calling thread's active trace context, if any."""
    return getattr(_state, "context", None)


@contextmanager
def activate(context: Optional[TraceContext]) -> Iterator[None]:
    """Make ``context`` current for the calling thread.

    ``None`` is accepted and is a no-op, so call sites can activate
    unconditionally: ``with activate(from_wire(payload.get("trace")))``.
    """
    if context is None:
        yield
        return
    previous = getattr(_state, "context", None)
    _state.context = context
    try:
        yield
    finally:
        _state.context = previous


@contextmanager
def start_trace(trace_id: Optional[str] = None) -> Iterator[TraceContext]:
    """Root a new trace on the calling thread and activate it.

    The yielded context's ``span_id`` is the trace's root span — every
    activation moderated (locally or remotely) while it is active
    becomes a child of that root.
    """
    context = TraceContext(
        trace_id=trace_id or new_trace_id(),
        span_id=new_span_id(),
        epoch=time.time(),
    )
    with activate(context):
        yield context


def child_context() -> Optional[TraceContext]:
    """A child of the current context, or ``None`` when no trace runs."""
    context = current()
    return context.child() if context is not None else None


def to_wire(context: TraceContext) -> Dict[str, Any]:
    """Wire-safe dict form (plain str/float, survives serialization)."""
    wire: Dict[str, Any] = {
        "trace_id": context.trace_id,
        "span_id": context.span_id,
        "epoch": context.epoch,
    }
    if context.baggage:
        wire["baggage"] = dict(context.baggage)
    return wire


def from_wire(data: Optional[Dict[str, Any]]) -> Optional[TraceContext]:
    """Parse a wire dict back into a context; tolerant of garbage."""
    if not isinstance(data, dict):
        return None
    trace_id = data.get("trace_id")
    span_id = data.get("span_id")
    if not isinstance(trace_id, str) or not isinstance(span_id, str):
        return None
    epoch = data.get("epoch")
    raw_baggage = data.get("baggage")
    baggage: Tuple[Tuple[str, str], ...] = ()
    if isinstance(raw_baggage, dict):
        baggage = tuple(
            (key, value) for key, value in sorted(raw_baggage.items())
            if isinstance(key, str) and isinstance(value, str)
        )
    return TraceContext(
        trace_id=trace_id,
        span_id=span_id,
        epoch=float(epoch) if isinstance(epoch, (int, float)) else 0.0,
        baggage=baggage,
    )
