"""``repro.obs`` — the observability plane.

Spans (:mod:`~repro.obs.spans`), a thread-striped metrics registry
(:mod:`~repro.obs.metrics`), Prometheus/JSON exporters
(:mod:`~repro.obs.export`), cross-node trace propagation
(:mod:`~repro.obs.propagation`) and the :class:`ObservabilityPlane`
facade (:mod:`~repro.obs.plane`) that wires them around one moderator.

See ``docs/observability.md`` for the span model, metric names and
overhead numbers.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    CounterBlock,
    Gauge,
    Histogram,
    HistogramValue,
    MetricSnapshot,
    MetricsRegistry,
    histogram_quantile,
)
from .propagation import (
    TraceContext,
    activate,
    child_context,
    current,
    from_wire,
    new_span_id,
    new_trace_id,
    start_trace,
    to_wire,
)
from .spans import Span, SpanRecorder, WakeEdge, stitch_traces
from .export import snapshot_dict, to_json, to_prometheus
from .plane import MetricsListener, ObservabilityPlane
from .profile import CLAUSE_COST_BUCKETS, ClauseProfiler, MemoCache

__all__ = [
    "CLAUSE_COST_BUCKETS",
    "ClauseProfiler",
    "Counter",
    "CounterBlock",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramValue",
    "MemoCache",
    "MetricSnapshot",
    "MetricsListener",
    "MetricsRegistry",
    "ObservabilityPlane",
    "Span",
    "SpanRecorder",
    "TraceContext",
    "WakeEdge",
    "activate",
    "child_context",
    "current",
    "from_wire",
    "histogram_quantile",
    "new_span_id",
    "new_trace_id",
    "snapshot_dict",
    "start_trace",
    "stitch_traces",
    "to_json",
    "to_prometheus",
    "to_wire",
]
