"""Activation spans: the moderation protocol as a tree of timed segments.

The flat :class:`~repro.core.events.TraceEvent` stream reproduces the
paper's sequence diagrams, but a flat stream cannot answer where an
activation *spent its time*. :class:`SpanRecorder` is a bus listener
that folds the stream (plus the moderator's timing hooks — event
``duration`` fields) into one span tree per activation::

    activation open #17                      [trace t, span s]
    ├── pre_activation
    │   ├── precondition[auth]      (resume)
    │   ├── precondition[sync]      (block)
    │   ├── blocked[sync]           ← parked on the wait queue
    │   ├── precondition[auth]      (resume)   ← re-evaluation round
    │   └── precondition[sync]      (resume)
    ├── invoke
    ├── post_activation
    │   ├── postaction[sync]
    │   └── postaction[auth]
    └── notify

plus **wake edges** — causal links from a completing activation's
``notify`` to the activations its notification unparked — and
``watchdog_stall`` / fault / quarantine annotations on the span they
concern.

Timestamps inside a span are ``time.monotonic`` values from the events;
the recorder stamps a wall-clock anchor once at construction and applies
it at export (:meth:`Span.to_dict`), because monotonic clocks are
incomparable across processes. Cross-node stitching uses the trace
context propagated by :mod:`repro.obs.propagation`: when a
``preactivation`` event arrives while a context is active on the
emitting thread, the new activation roots under the propagated span.

The recorder is bounded: at most ``max_finished`` completed activations
are retained (a ring, like the :class:`~repro.core.events.Tracer`), and
activations that terminate without a closing event (a precondition
fault, a timeout) are finalized by the terminal ``aspect_fault`` /
``timeout`` event so nothing leaks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.core.events import EventBus, TraceEvent

from . import propagation

__all__ = ["Span", "SpanRecorder", "WakeEdge", "stitch_traces"]


@dataclass
class Span:
    """One timed segment of an activation (or the activation itself)."""

    name: str
    method_id: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start: float
    end: Optional[float] = None
    concern: str = ""
    activation_id: int = 0
    node: str = ""
    status: str = "ok"
    #: (monotonic timestamp, text) notes — faults, stalls, details
    annotations: List[Tuple[float, str]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Seconds covered; 0.0 while the span is still open."""
        return (self.end - self.start) if self.end is not None else 0.0

    def child(self, name: str, start: float, concern: str = "",
              span_id: Optional[str] = None) -> "Span":
        span = Span(
            name=name, method_id=self.method_id,
            trace_id=self.trace_id,
            span_id=span_id or propagation.new_span_id(),
            parent_id=self.span_id, start=start, concern=concern,
            activation_id=self.activation_id, node=self.node,
        )
        self.children.append(span)
        return span

    def walk(self) -> List["Span"]:
        """This span and every descendant, depth-first."""
        spans = [self]
        for child in self.children:
            spans.extend(child.walk())
        return spans

    def to_dict(self, anchor: Tuple[float, float]) -> Dict[str, Any]:
        """Export with wall-clock timestamps (anchor = (wall, mono))."""
        wall, mono = anchor
        end = self.end if self.end is not None else self.start
        return {
            "name": self.name,
            "method_id": self.method_id,
            "concern": self.concern,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "activation_id": self.activation_id,
            "node": self.node,
            "status": self.status,
            "start": self.start - mono + wall,
            "end": end - mono + wall,
            "duration": end - self.start,
            "annotations": [
                (ts - mono + wall, text) for ts, text in self.annotations
            ],
            "children": [
                child.to_dict(anchor) for child in self.children
            ],
        }

    def format(self, indent: int = 0) -> str:
        """Human-readable tree rendering (durations in µs)."""
        label = self.name
        if self.concern:
            label += f"[{self.concern}]"
        micros = self.duration * 1e6
        line = (
            f"{'  ' * indent}{label:<28} {micros:10.1f}µs"
            + (f"  ({self.status})" if self.status != "ok" else "")
        )
        lines = [line]
        for ts, text in self.annotations:
            lines.append(f"{'  ' * (indent + 1)}@ {text}")
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True)
class WakeEdge:
    """Causal link: a ``notify`` and the activation it unparked."""

    notifier_activation: int
    notifier_span: str
    woken_activation: int
    woken_span: str
    timestamp: float


class _Active:
    """Book-keeping for one in-flight activation."""

    __slots__ = ("root", "pre", "invoke", "post", "blocked")

    def __init__(self, root: Span) -> None:
        self.root = root
        self.pre: Optional[Span] = None
        self.invoke: Optional[Span] = None
        self.post: Optional[Span] = None
        self.blocked: Optional[Span] = None


class SpanRecorder:
    """EventBus listener building activation span trees.

    Subscribe it like a :class:`~repro.core.events.Tracer`::

        recorder = SpanRecorder(node="node-a")
        unsubscribe = moderator.events.subscribe(recorder)

    Args:
        node: label stamped on every span (host/process identity).
        max_finished: ring bound on retained completed activations.
        sample_rate: build span trees for 1-in-N activations (1 = every
            activation, the default). The exact per-method counters in
            :attr:`counts` are maintained for *every* activation
            regardless — sampling drops fidelity (which activations get
            trees), never accuracy (how many ran, aborted, timed out,
            faulted). Events of unsampled activations are swallowed, not
            orphaned; their ``notify`` still participates in wake-edge
            attribution. The one blind spot: a post-phase contract
            verdict of an unsampled activation arrives after its
            terminal event and lands in :attr:`orphans`.
    """

    def __init__(self, node: str = "local",
                 max_finished: int = 4096,
                 sample_rate: int = 1) -> None:
        self.node = node
        self.sample_rate = max(1, int(sample_rate))
        self._sample_tick = self.sample_rate - 1  # sample the first
        #: activation_id -> method_id for in-flight unsampled
        #: activations (no span tree is built for them)
        self._unsampled: Dict[int, str] = {}
        #: exact per-method counters, kept for every activation whether
        #: sampled or not: method_id -> {activations, aborted,
        #: timeouts, faults}
        self.counts: Dict[str, Dict[str, int]] = {}
        self._lock = threading.Lock()
        self._active: Dict[int, _Active] = {}
        self._finished: Deque[Span] = deque(maxlen=max_finished)
        self._wake_edges: Deque[WakeEdge] = deque(maxlen=max_finished)
        self._last_notify: Optional[Tuple[int, str, float]] = None
        #: events with no activation to attach to (quarantine flips,
        #: node_state transitions, ...) — kept for the plane to surface
        self.orphans: Deque[TraceEvent] = deque(maxlen=max_finished)
        self.dropped = 0
        #: wall-clock anchor applied at export: (time.time, monotonic)
        #: captured together once, so exported spans from different
        #: processes are comparable even though monotonic epochs differ
        self.anchor: Tuple[float, float] = (time.time(), time.monotonic())

    # ------------------------------------------------------------------
    # event consumption
    # ------------------------------------------------------------------
    #: event kind -> exact counter it bumps (sampled or not)
    _COUNTED: Dict[str, str] = {
        "preactivation": "activations",
        "abort": "aborted",
        "timeout": "timeouts",
        "aspect_fault": "faults",
    }

    def _count(self, event: TraceEvent) -> None:
        name = self._COUNTED.get(event.kind)
        if name is None:
            return
        per_method = self.counts.get(event.method_id)
        if per_method is None:
            per_method = self.counts[event.method_id] = {
                "activations": 0, "aborted": 0,
                "timeouts": 0, "faults": 0,
            }
        per_method[name] += 1

    def _swallow_unsampled(self, event: TraceEvent) -> bool:
        """Absorb an event of an activation no tree is being built for.

        Terminal kinds retire the activation from the unsampled table;
        a notify still records itself for wake-edge attribution (an
        unsampled completion can wake a *sampled* parked activation, and
        that edge must not be credited to an older notifier).
        """
        if event.kind == "preactivation":
            return False
        if event.activation_id not in self._unsampled:
            return False
        kind = event.kind
        if kind == "notify":
            del self._unsampled[event.activation_id]
            self._last_notify = (
                event.activation_id, "", event.timestamp
            )
        elif kind in ("abort", "timeout"):
            del self._unsampled[event.activation_id]
        elif (kind == "aspect_fault"
              and event.detail.startswith("precondition")) or \
                kind == "contract_violation":
            del self._unsampled[event.activation_id]
        return True

    def __call__(self, event: TraceEvent) -> None:
        handler = self._HANDLERS.get(event.kind)
        with self._lock:
            self._count(event)
            if self.sample_rate > 1:
                if event.kind == "preactivation":
                    self._sample_tick += 1
                    if self._sample_tick >= self.sample_rate:
                        self._sample_tick = 0
                    else:
                        self._unsampled[event.activation_id] = \
                            event.method_id
                        return
                elif self._swallow_unsampled(event):
                    return
            if handler is not None:
                handler(self, event)
            elif event.kind == "watchdog_stall" and \
                    event.activation_id in self._active:
                record = self._active[event.activation_id]
                record.root.annotations.append(
                    (event.timestamp, f"watchdog_stall: {event.detail}")
                )
                record.root.status = "stalled"
            else:
                self.orphans.append(event)

    def _on_preactivation(self, event: TraceEvent) -> None:
        context = propagation.current()
        if context is not None:
            trace_id = context.trace_id
            parent_id = context.span_id
        else:
            trace_id = propagation.new_trace_id()
            parent_id = None
        root = Span(
            name="activation", method_id=event.method_id,
            trace_id=trace_id, span_id=propagation.new_span_id(),
            parent_id=parent_id, start=event.timestamp,
            activation_id=event.activation_id, node=self.node,
        )
        if context is not None and context.baggage:
            # Propagated annotations (e.g. the shard router's
            # ``shard=...``) land on the activation root, so per-shard
            # traces can be grouped without parsing method ids.
            for key, value in context.baggage:
                root.annotations.append(
                    (event.timestamp, f"{key}={value}")
                )
        record = _Active(root)
        record.pre = root.child("pre_activation", event.timestamp)
        self._active[event.activation_id] = record

    def _phase_span(self, record: _Active) -> Span:
        """The segment new protocol arrows currently belong to."""
        if record.post is not None:
            return record.post
        if record.pre is not None:
            return record.pre
        return record.root

    def _on_precondition(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        parent = record.pre if record.pre is not None else record.root
        span = parent.child(
            "precondition", event.timestamp - event.duration,
            concern=event.concern,
        )
        span.end = event.timestamp
        if event.detail and event.detail != "resume":
            span.status = event.detail

    def _on_blocked(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        parent = record.pre if record.pre is not None else record.root
        record.blocked = parent.child(
            "blocked", event.timestamp, concern=event.concern,
        )

    def _on_unblocked(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        blocked = record.blocked
        if blocked is not None:
            blocked.end = event.timestamp
            record.blocked = None
            if self._last_notify is not None:
                notifier_aid, notifier_span, _ts = self._last_notify
                self._wake_edges.append(WakeEdge(
                    notifier_activation=notifier_aid,
                    notifier_span=notifier_span,
                    woken_activation=event.activation_id,
                    woken_span=blocked.span_id,
                    timestamp=event.timestamp,
                ))

    def _on_invoke(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        if record.pre is not None and record.pre.end is None:
            record.pre.end = event.timestamp
        record.invoke = record.root.child("invoke", event.timestamp)

    def _on_postactivation(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        if record.pre is not None and record.pre.end is None:
            # invocation was skipped (e.g. cache hit): close the
            # pre-activation segment here instead
            record.pre.end = event.timestamp
        if record.invoke is not None and record.invoke.end is None:
            record.invoke.end = event.timestamp
        record.post = record.root.child("post_activation", event.timestamp)

    def _on_postaction(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        parent = record.post if record.post is not None else record.root
        span = parent.child(
            "postaction", event.timestamp - event.duration,
            concern=event.concern,
        )
        span.end = event.timestamp

    def _on_notify(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            # explicit moderator.notify() or a registration wake: there
            # is no activation span; remember it for wake attribution
            self._last_notify = (
                event.activation_id, "", event.timestamp
            )
            return
        if record.post is not None and record.post.end is None:
            record.post.end = event.timestamp
        span = record.root.child("notify", event.timestamp)
        span.end = event.timestamp
        self._last_notify = (
            event.activation_id, span.span_id, event.timestamp
        )
        self._finalize(event.activation_id, event.timestamp)

    def _on_abort(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        if record.pre is not None and record.pre.end is None:
            record.pre.end = event.timestamp
        record.root.status = "aborted"
        if event.concern:
            record.root.annotations.append(
                (event.timestamp, f"aborted by {event.concern}")
            )
        self._finalize(event.activation_id, event.timestamp)

    def _on_timeout(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        if record.pre is not None and record.pre.end is None:
            record.pre.end = event.timestamp
        record.root.status = "timeout"
        record.root.annotations.append(
            (event.timestamp, f"activation timeout: {event.detail}")
        )
        self._finalize(event.activation_id, event.timestamp)

    def _on_compensate(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        self._phase_span(record).annotations.append(
            (event.timestamp, f"compensate[{event.concern}]")
        )

    def _on_aspect_fault(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            self.orphans.append(event)
            return
        span = self._phase_span(record)
        span.annotations.append(
            (event.timestamp,
             f"aspect_fault[{event.concern}] {event.detail}")
        )
        if event.detail.startswith("precondition") and \
                record.post is None:
            # A raising precondition propagates out of pre-activation:
            # no abort/invoke event will follow, so this is terminal.
            record.root.status = "fault"
            if record.pre is not None and record.pre.end is None:
                record.pre.end = event.timestamp
            self._finalize(event.activation_id, event.timestamp)

    def _on_degraded_skip(self, event: TraceEvent) -> None:
        record = self._active.get(event.activation_id)
        if record is None:
            return
        self._phase_span(record).annotations.append(
            (event.timestamp, f"degraded_skip[{event.concern}]")
        )

    def _on_contract_violation(self, event: TraceEvent) -> None:
        """A contract verdict — detail is ``kind:clause:blame``.

        A ``require``-phase violation arrives while the activation is
        still open (it propagates out of pre-activation, so no
        abort/invoke event will follow — terminal here). A post-phase
        verdict is raised *after* the wake concluded the activation, so
        it lands on the already-finished root retroactively.
        """
        note = f"contract_violation: {event.detail}"
        record = self._active.get(event.activation_id)
        if record is not None:
            record.root.status = "contract"
            self._phase_span(record).annotations.append(
                (event.timestamp, note)
            )
            if record.post is None:
                if record.pre is not None and record.pre.end is None:
                    record.pre.end = event.timestamp
                self._finalize(event.activation_id, event.timestamp)
            return
        for span in reversed(self._finished):
            if span.activation_id == event.activation_id:
                span.status = "contract"
                span.annotations.append((event.timestamp, note))
                return
        self.orphans.append(event)

    _HANDLERS: Dict[str, Callable[["SpanRecorder", TraceEvent], None]] = {
        "preactivation": _on_preactivation,
        "precondition": _on_precondition,
        "blocked": _on_blocked,
        "unblocked": _on_unblocked,
        "invoke": _on_invoke,
        "postactivation": _on_postactivation,
        "postaction": _on_postaction,
        "notify": _on_notify,
        "abort": _on_abort,
        "timeout": _on_timeout,
        "compensate": _on_compensate,
        "aspect_fault": _on_aspect_fault,
        "degraded_skip": _on_degraded_skip,
        "contract_violation": _on_contract_violation,
    }

    def _finalize(self, activation_id: int, timestamp: float) -> None:
        record = self._active.pop(activation_id, None)
        if record is None:
            return
        if record.blocked is not None and record.blocked.end is None:
            record.blocked.end = timestamp
        record.root.end = timestamp
        if len(self._finished) == self._finished.maxlen:
            self.dropped += 1
        self._finished.append(record.root)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def finished(self) -> List[Span]:
        """Completed activation roots, oldest first."""
        with self._lock:
            return list(self._finished)

    def active(self) -> List[Span]:
        """Roots of activations still in flight (parked included)."""
        with self._lock:
            return [record.root for record in self._active.values()]

    def all_roots(self) -> List[Span]:
        with self._lock:
            return list(self._finished) + [
                record.root for record in self._active.values()
            ]

    @property
    def wake_edges(self) -> List[WakeEdge]:
        with self._lock:
            return list(self._wake_edges)

    def for_method(self, method_id: str) -> List[Span]:
        return [
            span for span in self.finished if span.method_id == method_id
        ]

    def trace_of(
        self, activation_id: int
    ) -> Optional[Tuple[str, str]]:
        """``(trace_id, span_id)`` of an activation's root, or ``None``.

        Looks at in-flight activations first (a parked activation is
        exactly what a stall watchdog asks about), then the finished
        ring, newest first. This is the cross-reference from
        activation-id-keyed diagnostics (stall reports, contract
        evidence) into the span plane.
        """
        with self._lock:
            record = self._active.get(activation_id)
            if record is not None:
                return (record.root.trace_id, record.root.span_id)
            for span in reversed(self._finished):
                if span.activation_id == activation_id:
                    return (span.trace_id, span.span_id)
        return None

    def clear(self) -> None:
        with self._lock:
            self._finished.clear()
            self._active.clear()
            self._unsampled.clear()
            self.counts.clear()
            self._wake_edges.clear()
            self.orphans.clear()
            self._last_notify = None
            self._sample_tick = self.sample_rate - 1
            self.dropped = 0

    def export(self) -> List[Dict[str, Any]]:
        """Completed spans as wall-clock dicts (cross-node comparable)."""
        anchor = self.anchor
        return [span.to_dict(anchor) for span in self.finished]

    def export_wake_edges(self) -> List[Dict[str, Any]]:
        """Wake edges as wall-clock wire dicts, node-labelled.

        Same export convention as :meth:`export` (the anchor converts
        monotonic stamps to wall clock), so the causal slicer
        (:mod:`repro.contracts.slicing`) can consume edges and spans
        from several nodes' dumps together.
        """
        wall, mono = self.anchor
        return [
            {
                "node": self.node,
                "notifier_activation": edge.notifier_activation,
                "notifier_span": edge.notifier_span,
                "woken_activation": edge.woken_activation,
                "woken_span": edge.woken_span,
                "timestamp": edge.timestamp - mono + wall,
            }
            for edge in self.wake_edges
        ]

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def phase_totals(self, method_id: str) -> Dict[str, float]:
        """Total seconds per segment label for one method's activations."""
        totals: Dict[str, float] = {}
        for root in self.for_method(method_id):
            for span in root.walk():
                if span is root:
                    continue
                label = span.name
                if span.concern:
                    label += f"[{span.concern}]"
                totals[label] = totals.get(label, 0.0) + span.duration
        return totals

    def flame(self, method_id: str, width: int = 40) -> str:
        """Flame-style breakdown: where ``method_id`` spends its time."""
        roots = self.for_method(method_id)
        if not roots:
            return f"{method_id}: no completed activations"
        wall = sum(root.duration for root in roots)
        totals = self.phase_totals(method_id)
        scale = max(totals.values()) if totals else 0.0
        lines = [
            f"{method_id}: {len(roots)} activation(s), "
            f"{wall * 1e3:.3f}ms total, "
            f"{wall / len(roots) * 1e6:.1f}µs mean"
        ]
        for label in sorted(totals, key=totals.get, reverse=True):
            seconds = totals[label]
            bar = "#" * (
                max(1, int(width * seconds / scale)) if scale else 0
            )
            share = (seconds / wall * 100.0) if wall else 0.0
            lines.append(
                f"  {label:<26} {seconds * 1e6:10.1f}µs "
                f"{share:5.1f}%  {bar}"
            )
        return "\n".join(lines)


def attach(bus: EventBus, recorder: SpanRecorder) -> Callable[[], None]:
    """Subscribe ``recorder`` to ``bus``; returns the unsubscriber."""
    return bus.subscribe(recorder)


def stitch_traces(
    *exports: List[Dict[str, Any]],
) -> Dict[str, List[Dict[str, Any]]]:
    """Merge exported span dicts from several recorders into traces.

    Returns trace_id -> roots, where spans whose ``parent_id`` names a
    span present in the merged set are nested under it (cross-node
    parent links — the propagated context's span id — stay as roots
    with ``parent_id`` set, since the parent lives on another node or
    in the client that opened the trace).
    """
    flat: List[Dict[str, Any]] = []

    def _flatten(span: Dict[str, Any]) -> None:
        flat.append(span)
        for nested in span.get("children", ()):
            _flatten(nested)

    for export in exports:
        for span in export:
            _flatten(span)
    by_id = {span["span_id"]: span for span in flat}
    traces: Dict[str, List[Dict[str, Any]]] = {}
    for span in flat:
        parent_id = span.get("parent_id")
        parent = by_id.get(parent_id) if parent_id else None
        if parent is not None:
            if span not in parent.setdefault("children", []):
                parent["children"].append(span)
        else:
            traces.setdefault(span["trace_id"], []).append(span)
    for roots in traces.values():
        roots.sort(key=lambda span: span["start"])
    return traces
