"""Exporters: the metrics registry and span recorder as wire formats.

Two formats, both built on the registry's consistent snapshots:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, cumulative ``_bucket`` samples with
  ``le`` labels, ``_sum``/``_count``). Deterministic output order
  (families sorted by name, samples by label values) so it can be
  golden-file tested.
* :func:`to_json` / :func:`snapshot_dict` — a JSON document combining
  metrics, optionally spans (wall-clock timestamps via each recorder's
  anchor) and wake edges, for programmatic consumers.

Formatting notes: Prometheus floats are rendered with ``repr`` except
integral values, which drop the trailing ``.0`` (matching client_golang
closely enough for scrapers); ``+Inf`` is the literal bucket bound.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .metrics import HistogramValue, MetricSnapshot, MetricsRegistry
from .spans import SpanRecorder

__all__ = ["snapshot_dict", "to_json", "to_prometheus"]


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def _format_labels(labelnames: Sequence[str],
                   labelvalues: Sequence[str],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [
        (name, value) for name, value in zip(labelnames, labelvalues)
    ]
    pairs.extend(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def _bucket_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else _format_value(bound)


def _render_family(family: MetricSnapshot, lines: List[str]) -> None:
    lines.append(f"# HELP {family.name} {family.help or family.name}")
    lines.append(f"# TYPE {family.name} {family.kind}")
    for labels in sorted(family.samples):
        sample = family.samples[labels]
        if family.kind == "histogram":
            assert isinstance(sample, HistogramValue)
            cumulative = 0
            bounds = list(sample.buckets) + [float("inf")]
            for bound, count in zip(bounds, sample.counts):
                cumulative += count
                label_str = _format_labels(
                    family.labelnames, labels,
                    extra=(("le", _bucket_bound(bound)),),
                )
                lines.append(
                    f"{family.name}_bucket{label_str} {cumulative}"
                )
            plain = _format_labels(family.labelnames, labels)
            lines.append(
                f"{family.name}_sum{plain} {_format_value(sample.sum)}"
            )
            lines.append(f"{family.name}_count{plain} {sample.count}")
        else:
            label_str = _format_labels(family.labelnames, labels)
            lines.append(
                f"{family.name}{label_str} {_format_value(sample)}"
            )


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        _render_family(family, lines)
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_dict(
    registry: MetricsRegistry,
    recorder: Optional[SpanRecorder] = None,
    health: Optional[Dict[Tuple[str, str], Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Metrics (and optionally spans/health) as one plain-data document.

    ``health`` takes a :meth:`HealthTracker.snapshot` mapping; the
    tuple keys are flattened to ``"method/concern"`` strings so the
    document stays JSON-serializable. Each record carries the cell's
    structured ``last_fault_info`` (exception, phase, activation id,
    blame verdict when the fault was a contract violation).
    """
    metrics: Dict[str, Any] = {}
    for family in registry.collect():
        samples = []
        for labels in sorted(family.samples):
            sample = family.samples[labels]
            entry: Dict[str, Any] = {
                "labels": dict(zip(family.labelnames, labels)),
            }
            if isinstance(sample, HistogramValue):
                entry["sum"] = sample.sum
                entry["count"] = sample.count
                entry["buckets"] = [
                    {"le": _bucket_bound(bound), "count": count}
                    for bound, count in zip(
                        list(sample.buckets) + [float("inf")],
                        sample.counts,
                    )
                ]
                if sample.count:
                    entry["p50"] = sample.quantile(0.50)
                    entry["p95"] = sample.quantile(0.95)
                    entry["p99"] = sample.quantile(0.99)
            else:
                entry["value"] = sample
            samples.append(entry)
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "samples": samples,
        }
    document: Dict[str, Any] = {"metrics": metrics}
    if recorder is not None:
        document["node"] = recorder.node
        document["spans"] = recorder.export()
        document["wake_edges"] = [
            {
                "notifier_activation": edge.notifier_activation,
                "notifier_span": edge.notifier_span,
                "woken_activation": edge.woken_activation,
                "woken_span": edge.woken_span,
            }
            for edge in recorder.wake_edges
        ]
    if health is not None:
        document["aspect_health"] = {
            f"{method_id}/{concern}": dict(record)
            for (method_id, concern), record in sorted(health.items())
        }
    return document


def to_json(registry: MetricsRegistry,
            recorder: Optional[SpanRecorder] = None,
            indent: int = 2,
            health: Optional[Dict[Tuple[str, str],
                                  Dict[str, Any]]] = None) -> str:
    """:func:`snapshot_dict` serialized as JSON."""
    return json.dumps(
        snapshot_dict(registry, recorder, health=health),
        indent=indent, sort_keys=True,
    )
