"""Concurrency substrate: functional components and thread utilities."""

from .active_object import ActiveObject, MethodRequest
from .buffer import (
    BoundedBuffer,
    BufferEmpty,
    BufferFull,
    Ticket,
    TicketStore,
)
from .executor import WorkerPool
from .primitives import (
    CountdownLatch,
    Future,
    FutureError,
    Latch,
    LockDomain,
    WaitQueue,
)

__all__ = [
    "ActiveObject",
    "BoundedBuffer",
    "BufferEmpty",
    "BufferFull",
    "CountdownLatch",
    "Future",
    "FutureError",
    "Latch",
    "LockDomain",
    "MethodRequest",
    "Ticket",
    "TicketStore",
    "WaitQueue",
    "WorkerPool",
]
