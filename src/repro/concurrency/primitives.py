"""Concurrency primitives used by the framework, apps and benchmarks.

Thin, well-tested wrappers over :mod:`threading` with the semantics the
framework needs: a one-shot :class:`Latch`, a :class:`Future` with
callbacks, and an inspectable :class:`WaitQueue` (the framework's wait
queues live inside the moderator; this standalone variant serves the
active object and the distributed runtime).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Generic, List, Optional, TypeVar

T = TypeVar("T")


class Latch:
    """One-shot gate: threads wait until someone opens it."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def open(self) -> None:
        self._event.set()

    @property
    def is_open(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)


class CountdownLatch:
    """Gate that opens after ``count`` arrivals."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError("count must be non-negative")
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._count = count

    def count_down(self) -> None:
        with self._condition:
            if self._count > 0:
                self._count -= 1
                if self._count == 0:
                    self._condition.notify_all()

    @property
    def remaining(self) -> int:
        with self._lock:
            return self._count

    def wait(self, timeout: Optional[float] = None) -> bool:
        with self._condition:
            if self._count == 0:
                return True
            return self._condition.wait_for(
                lambda: self._count == 0, timeout
            )


class LockDomain:
    """A lock shared by a group of named condition queues.

    The aspect moderator assigns every participating method to one lock
    domain. By default each method gets a private domain, so the
    moderation of unrelated methods proceeds in parallel (the paper's
    per-method Java monitors); methods whose aspects share unguarded
    state opt into one *shared* domain, restoring a single-monitor
    atomicity guarantee for exactly that group.

    All operations may be called without holding the domain lock; they
    acquire it internally. ``notify_all`` in particular is safe to call
    from a thread that holds a *different* domain's lock only if that is
    never done symmetrically — the moderator therefore performs all
    cross-domain wakeups while holding no domain lock at all (its
    two-phase wake).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.lock = threading.RLock()
        self._conditions: "dict[str, threading.Condition]" = {}

    def condition(self, key: str) -> threading.Condition:
        """The condition queue for ``key``, created on first use."""
        with self.lock:
            condition = self._conditions.get(key)
            if condition is None:
                condition = threading.Condition(self.lock)
                self._conditions[key] = condition
            return condition

    def conditions(self) -> List["tuple[str, threading.Condition]"]:
        """Snapshot of ``(key, condition)`` pairs in this domain."""
        with self.lock:
            return list(self._conditions.items())

    def notify_all(self, key: Optional[str] = None) -> None:
        """Wake every waiter of one queue (or of all queues)."""
        with self.lock:
            if key is None:
                for condition in self._conditions.values():
                    condition.notify_all()
            else:
                condition = self._conditions.get(key)
                if condition is not None:
                    condition.notify_all()

    def waiter_counts(self) -> "dict[str, int]":
        """Approximate number of parked threads per queue key."""
        with self.lock:
            return {
                key: len(condition._waiters)  # noqa: SLF001 - CPython detail
                for key, condition in self._conditions.items()
            }

    def __repr__(self) -> str:
        return f"<LockDomain {self.name!r} queues={len(self._conditions)}>"


class FutureError(RuntimeError):
    """Raised on misuse of :class:`Future` (double completion, etc.)."""


class Future(Generic[T]):
    """A write-once result container with blocking get and callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._condition = threading.Condition(self._lock)
        self._done = False
        self._value: Optional[T] = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future[T]"], None]] = []

    def set_result(self, value: T) -> None:
        self._complete(value=value)

    def set_exception(self, exc: BaseException) -> None:
        self._complete(exception=exc)

    def _complete(self, value: Optional[T] = None,
                  exception: Optional[BaseException] = None) -> None:
        with self._condition:
            if self._done:
                raise FutureError("future already completed")
            self._value = value
            self._exception = exception
            self._done = True
            callbacks = list(self._callbacks)
            self._callbacks.clear()
            self._condition.notify_all()
        for callback in callbacks:
            callback(self)

    @property
    def done(self) -> bool:
        with self._lock:
            return self._done

    def result(self, timeout: Optional[float] = None) -> T:
        with self._condition:
            if not self._condition.wait_for(lambda: self._done, timeout):
                raise TimeoutError("future not completed in time")
            if self._exception is not None:
                raise self._exception
            return self._value  # type: ignore[return-value]

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        with self._condition:
            if not self._condition.wait_for(lambda: self._done, timeout):
                raise TimeoutError("future not completed in time")
            return self._exception

    def add_callback(self, callback: Callable[["Future[T]"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done)."""
        run_now = False
        with self._condition:
            if self._done:
                run_now = True
            else:
                self._callbacks.append(callback)
        if run_now:
            callback(self)


class WaitQueue(Generic[T]):
    """Blocking FIFO queue with close semantics and introspection."""

    class Closed(RuntimeError):
        """Raised when getting from a drained, closed queue."""

    def __init__(self, maxsize: Optional[int] = None) -> None:
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._items: Deque[T] = deque()
        self._maxsize = maxsize
        self._closed = False

    def put(self, item: T, timeout: Optional[float] = None) -> None:
        with self._not_full:
            if self._closed:
                raise WaitQueue.Closed("queue is closed")
            if self._maxsize is not None:
                ok = self._not_full.wait_for(
                    lambda: len(self._items) < self._maxsize or self._closed,
                    timeout,
                )
                if not ok:
                    raise TimeoutError("queue full")
                if self._closed:
                    raise WaitQueue.Closed("queue is closed")
            self._items.append(item)
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> T:
        with self._not_empty:
            ok = self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout
            )
            if not ok:
                raise TimeoutError("queue empty")
            if not self._items:
                raise WaitQueue.Closed("queue is closed and drained")
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Close the queue; waiting getters drain then see ``Closed``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
