"""A small bounded worker pool used by load generators and benchmarks.

Deliberately minimal (submit / map / shutdown) and dependency-free; the
benchmark harness uses it to drive concurrent clients against clusters
with deterministic thread naming (worker names become join-point caller
identities in several benches).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, List, Optional, Sequence

from .primitives import Future, WaitQueue


class WorkerPool:
    """Fixed pool of daemon workers consuming a shared task queue."""

    def __init__(self, workers: int, name: str = "pool") -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self._queue: "WaitQueue[Optional[tuple]]" = WaitQueue()
        self._threads: List[threading.Thread] = []
        self._shutdown = False
        self._lock = threading.Lock()
        for index in range(workers):
            thread = threading.Thread(
                target=self._run, name=f"{name}-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _run(self) -> None:
        while True:
            try:
                task = self._queue.get()
            except WaitQueue.Closed:
                return
            if task is None:
                return
            func, args, kwargs, future = task
            try:
                future.set_result(func(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - routed to future
                future.set_exception(exc)

    def submit(self, func: Callable[..., Any], *args: Any,
               **kwargs: Any) -> "Future[Any]":
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool is shut down")
        future: "Future[Any]" = Future()
        self._queue.put((func, args, kwargs, future))
        return future

    def map(self, func: Callable[[Any], Any],
            items: Iterable[Any],
            timeout: Optional[float] = 60.0) -> List[Any]:
        """Apply ``func`` to every item concurrently; preserve order."""
        futures = [self.submit(func, item) for item in items]
        return [future.result(timeout) for future in futures]

    def run_all(self, tasks: Sequence[Callable[[], Any]],
                timeout: Optional[float] = 60.0) -> List[Any]:
        """Run zero-argument tasks concurrently; preserve order."""
        futures = [self.submit(task) for task in tasks]
        return [future.result(timeout) for future in futures]

    def shutdown(
        self, timeout: Optional[float] = 5.0
    ) -> List[threading.Thread]:
        """Stop the workers; returns any that outlived their join.

        Each worker gets one poison pill and a ``join(timeout)``. A
        worker still alive afterwards (wedged in a task that never
        returns) is *surfaced*, not silently leaked: the returned list
        holds exactly the still-running threads, so callers can report
        or escalate. An empty list means every worker exited. Repeated
        shutdowns return the stragglers still alive at that point.
        """
        with self._lock:
            first = not self._shutdown
            self._shutdown = True
        if first:
            for _ in self._threads:
                self._queue.put(None)
            for thread in self._threads:
                thread.join(timeout)
        return [thread for thread in self._threads if thread.is_alive()]

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
