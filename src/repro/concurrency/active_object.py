"""Active object: asynchronous method execution behind the same proxies.

The paper's component model ("objects may play the role of a servant
object, a client object, or perhaps both") maps onto the Active Object
pattern: callers enqueue method requests; a scheduler thread executes
them against the servant and completes futures. Combined with a
moderated proxy as the servant, this yields asynchronous *and* aspect-
guarded invocation — the shape the distributed runtime builds on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from .primitives import Future, WaitQueue


@dataclass
class MethodRequest:
    """One queued invocation."""

    method_id: str
    args: Tuple[Any, ...]
    kwargs: Dict[str, Any]
    future: "Future[Any]" = field(default_factory=Future)


class ActiveObject:
    """Runs a servant's methods on a private scheduler thread.

    Args:
        servant: any object — typically a
            :class:`~repro.core.proxy.ComponentProxy`, so every queued
            request still passes through moderation.
        queue_size: bound on pending requests (None = unbounded).

    Usage::

        active = ActiveObject(proxy)
        future = active.invoke("open", ticket)
        result = future.result(timeout=1.0)
        active.shutdown()
    """

    def __init__(self, servant: Any, queue_size: Optional[int] = None,
                 name: str = "active-object") -> None:
        self.servant = servant
        self._queue: "WaitQueue[Optional[MethodRequest]]" = WaitQueue(queue_size)
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._started = False
        self._shutdown = threading.Event()
        self.executed = 0
        self.failed = 0

    def start(self) -> "ActiveObject":
        if not self._started:
            self._started = True
            self._thread.start()
        return self

    def invoke(self, method_id: str, *args: Any, **kwargs: Any) -> "Future[Any]":
        """Queue an invocation; returns a future for its result."""
        if self._shutdown.is_set():
            raise RuntimeError("active object is shut down")
        if not self._started:
            self.start()
        request = MethodRequest(method_id, args, kwargs)
        self._queue.put(request)
        return request.future

    def call(self, method_id: str, *args: Any,
             timeout: Optional[float] = 30.0, **kwargs: Any) -> Any:
        """Synchronous convenience: invoke and wait for the result."""
        return self.invoke(method_id, *args, **kwargs).result(timeout)

    def _run(self) -> None:
        while True:
            try:
                request = self._queue.get()
            except WaitQueue.Closed:
                return
            if request is None:
                return
            try:
                target = getattr(self.servant, request.method_id)
                request.future.set_result(target(
                    *request.args, **request.kwargs
                ))
                self.executed += 1
            except BaseException as exc:  # noqa: BLE001 - routed to future
                self.failed += 1
                request.future.set_exception(exc)

    def shutdown(self, drain: bool = True,
                 timeout: Optional[float] = 5.0) -> None:
        """Stop the scheduler; with ``drain`` pending requests complete."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if not self._started:
            return
        if drain:
            self._queue.put(None)
        else:
            self._queue.close()
        self._thread.join(timeout)

    @property
    def pending(self) -> int:
        return len(self._queue)
