"""Sequential functional components: bounded buffer and ticket store.

These are the *functional components* of the paper's architecture —
deliberately free of any synchronization, security or scheduling code.
Every interaction concern is attached externally through the framework.
They are not thread-safe on their own **by design**: the whole point of
the paper is that thread safety arrives as a separately composed aspect.

The trouble-ticketing application "is based on the producer-consumer
protocol with the use of a bounded buffer" (Section 4), with a circular
``assignPtr`` the paper's postactions advance (Figure 7); the ring-array
implementation below mirrors that.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")

_ticket_ids = itertools.count(1)


class BufferEmpty(LookupError):
    """Raised by an unguarded ``take`` on an empty buffer."""


class BufferFull(OverflowError):
    """Raised by an unguarded ``put`` on a full buffer."""


class BoundedBuffer(Generic[T]):
    """Fixed-capacity FIFO ring buffer (sequential, unsynchronized).

    Raises :class:`BufferFull` / :class:`BufferEmpty` instead of
    blocking: blocking is a *concern*, not a buffer feature.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._slots: List[Optional[T]] = [None] * capacity
        self._put_ptr = 0
        self._take_ptr = 0
        self._count = 0
        self.total_put = 0
        self.total_taken = 0

    def put(self, item: T) -> None:
        """Append ``item``; raises :class:`BufferFull` when at capacity."""
        if self._count >= self.capacity:
            raise BufferFull(f"buffer at capacity {self.capacity}")
        self._slots[self._put_ptr] = item
        self._put_ptr = (self._put_ptr + 1) % self.capacity
        self._count += 1
        self.total_put += 1

    def take(self) -> T:
        """Remove and return the oldest item; raises :class:`BufferEmpty`."""
        if self._count == 0:
            raise BufferEmpty("buffer is empty")
        item = self._slots[self._take_ptr]
        self._slots[self._take_ptr] = None
        self._take_ptr = (self._take_ptr + 1) % self.capacity
        self._count -= 1
        self.total_taken += 1
        return item  # type: ignore[return-value]

    def peek(self) -> T:
        if self._count == 0:
            raise BufferEmpty("buffer is empty")
        return self._slots[self._take_ptr]  # type: ignore[return-value]

    def __len__(self) -> int:
        return self._count

    @property
    def free(self) -> int:
        return self.capacity - self._count

    def snapshot(self) -> List[T]:
        """Items currently buffered, oldest first (for tests/invariants)."""
        return [
            self._slots[(self._take_ptr + offset) % self.capacity]
            for offset in range(self._count)
        ]  # type: ignore[return-value]


@dataclass
class Ticket:
    """A trouble ticket (the paper's application domain)."""

    summary: str
    reporter: str = "anonymous"
    severity: int = 3
    ticket_id: int = field(default_factory=lambda: next(_ticket_ids))
    assignee: Optional[str] = None
    resolved: bool = False

    def assign_to(self, agent: str) -> None:
        self.assignee = agent

    def resolve(self) -> None:
        self.resolved = True


class TicketStore:
    """The paper's ``TicketServer`` functional component.

    "Clients open (place) tickets on a server, and assign (retrieve)
    tickets from a server" (Section 4). ``open`` produces into a bounded
    buffer; ``assign`` consumes the oldest ticket and hands it to an
    agent. Completely sequential — concurrency, authentication, auditing
    etc. are woven on by the application layer in
    :mod:`repro.apps.ticketing`.
    """

    def __init__(self, capacity: int = 16) -> None:
        self.capacity = capacity
        self._buffer: BoundedBuffer[Ticket] = BoundedBuffer(capacity)
        self.opened: List[int] = []
        self.assigned: List[int] = []

    def open(self, ticket: Ticket) -> int:
        """Place a ticket; returns its id."""
        self._buffer.put(ticket)
        self.opened.append(ticket.ticket_id)
        return ticket.ticket_id

    def assign(self, agent: str = "agent") -> Ticket:
        """Retrieve the oldest ticket and assign it to ``agent``."""
        ticket = self._buffer.take()
        ticket.assign_to(agent)
        self.assigned.append(ticket.ticket_id)
        return ticket

    @property
    def pending(self) -> int:
        """Tickets placed but not yet assigned."""
        return len(self._buffer)

    @property
    def no_items(self) -> int:
        """Paper-compatible alias (``noItems`` in Figure 7)."""
        return len(self._buffer)

    def snapshot(self) -> List[Ticket]:
        return self._buffer.snapshot()
