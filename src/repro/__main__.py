"""``python -m repro`` — guided demo of the Aspect Moderator framework.

Subcommands:

* ``demo``      (default) run the trouble-ticketing system with tracing
                and print the Figure 2/3 sequences plus the bank grid;
* ``verify``    model-check the ticketing composition and print the
                report (plus a deliberate deadlock's counterexample);
* ``metrics``   print the separation-of-concerns comparison table;
* ``lint``      run the composition linter over a correctly composed
                cluster and over a deliberately anomalous one;
* ``obs``       run a moderated workload under the observability plane
                and print the live summary table, per-method flame
                breakdowns and a Prometheus metrics excerpt;
* ``slice``     provoke a cross-node contract violation (an interfering
                aspect breaks a postcondition two hops away), print the
                blame verdict with its checkpoint evidence, and render
                the minimal causal sub-trace spanning both nodes;
* ``profile``   run a veto-heavy commutative workload under the clause
                profiler, print the per-clause cost/veto table, refresh
                the profile and show the plan re-optimizing (reordering,
                memoization, elision) with before/after explain() views;
* ``recover``   two-node crash-restart demo: a journaled service loses
                its node (memory and all), the supervisor fails it over
                from the durable store, a returning zombie is fenced
                out, and every acknowledged effect lands exactly once.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def run_demo() -> int:
    from repro.analysis.tracing import render_figure, verify_figure2, \
        verify_figure3
    from repro.apps import AspectFactoryImpl
    from repro.concurrency import Ticket, TicketStore
    from repro.core import Cluster, Tracer

    store = TicketStore(capacity=4)
    cluster = Cluster(component=store, factory=AspectFactoryImpl())
    tracer = Tracer()
    cluster.events.subscribe(tracer)
    cluster.bind_all({"open": ["sync"], "assign": ["sync"]})

    print("Aspect bank (Figure 1's two-dimensional composition):")
    for method, row in cluster.bank.grid().items():
        print(f"  {method}: {row}")

    print("\nFigure 2 (initialization) — "
          f"{'matched' if verify_figure2(tracer) else 'MISMATCH'}:")
    print(render_figure(tracer, title="initialization"))

    tracer.clear()
    cluster.proxy.open(Ticket(summary="printer on fire", reporter="demo"))
    ticket = cluster.proxy.assign("agent-1")
    print(f"\nFigure 3 (method invocation) — "
          f"{'matched' if verify_figure3(tracer, 'open') else 'MISMATCH'}:")
    print(render_figure(tracer, title="open + assign"))
    print(f"\nassigned ticket #{ticket.ticket_id} to {ticket.assignee}")
    print(f"moderation stats: {cluster.moderator.stats.as_dict()}")
    return 0


def run_verify() -> int:
    from repro.apps.ticketing import (
        AssignSynchronizationAspect,
        OpenSynchronizationAspect,
        TicketSyncState,
    )
    from repro.verify import ActivationSpec, occupancy_bound, verify

    def chains():
        state = TicketSyncState(capacity=2)
        return {
            "open": [OpenSynchronizationAspect(state)],
            "assign": [AssignSynchronizationAspect(state)],
        }

    print("Verifying the Figure 7 composition "
          "(2 producers x 2 consumers, capacity 2) ...")
    report = verify(
        chains,
        specs=[
            ActivationSpec("p1", "open", 2),
            ActivationSpec("p2", "open", 2),
            ActivationSpec("c1", "assign", 2),
            ActivationSpec("c2", "assign", 2),
        ],
        properties=[occupancy_bound(
            "open", capacity=2, aspect_type=OpenSynchronizationAspect,
        )],
    )
    print(f"  {report.summary()}")

    print("\nAnd a deliberately broken workload (producers only):")
    broken = verify(chains, specs=[ActivationSpec("p1", "open", 3)])
    for violation in broken.violations:
        print("  " + violation.format().replace("\n", "\n  "))
    return 0 if report.ok and not broken.ok else 1


def run_metrics() -> int:
    import repro.apps.ticketing as framework_app
    import repro.baselines.tangled_ticketing as tangled
    from repro.analysis.metrics import SourceAnalyzer

    analyzer = SourceAnalyzer()
    baseline = analyzer.analyze_module(tangled)
    framework = analyzer.analyze_module(framework_app)
    baseline_summary = analyzer.tangling_summary(baseline)
    framework_summary = analyzer.tangling_summary(framework)

    print("Separation-of-concerns metrics (tangled vs. framework):")
    print(f"  mean tangling: {baseline_summary['mean_tangling']:.2f} "
          f"vs {framework_summary['mean_tangling']:.2f} concerns/function")
    print(f"  max tangling:  {baseline_summary['max_tangling']} "
          f"vs {framework_summary['max_tangling']}")
    worst = max(baseline, key=lambda report: report.tangling)
    print(f"  most tangled baseline function: {worst.qualname} "
          f"({sorted(worst.concerns)})")
    return 0


def run_lint() -> int:
    from repro.apps import build_ticketing_cluster, make_session_manager
    from repro.aspects import AuditAspect, AuthenticationAspect, CachingAspect
    from repro.core import Cluster
    from repro.verify import lint_cluster

    sessions = make_session_manager({"alice": "pw"})
    good = build_ticketing_cluster(capacity=4, sessions=sessions)
    print("Correctly composed ticketing cluster:")
    findings = lint_cluster(good)
    if findings:
        for finding in findings:
            print("  " + finding.format())
    else:
        print("  no findings")

    print("\nDeliberately anomalous composition:")

    class Api:
        def read(self):
            return "data"

    bad = Cluster(component=Api())
    bad.moderator.register_aspect("read", "cache", CachingAspect())
    bad.moderator.register_aspect(
        "read", "authenticate", AuthenticationAspect(sessions),
    )
    bad.moderator.register_aspect("read", "audit", AuditAspect())
    for finding in lint_cluster(bad):
        print("  " + finding.format())
    return 0


def run_obs() -> int:
    from repro.apps import build_ticketing_cluster
    from repro.concurrency import Ticket
    from repro.obs import ObservabilityPlane, start_trace

    cluster = build_ticketing_cluster(capacity=4)
    plane = ObservabilityPlane(cluster.moderator, node="demo")
    with plane, start_trace() as context:
        for index in range(4):
            cluster.proxy.open(
                Ticket(summary=f"ticket-{index}", reporter="obs-demo")
            )
        for index in range(4):
            cluster.proxy.assign(f"agent-{index % 2}")

    summary = plane.summary()
    print(f"observability plane summary (node={summary['node']}, "
          f"trace={context.trace_id[:8]}...):")
    print(f"{'method':<12}{'activations':>12}{'mean':>12}"
          f"{'aborted':>9}{'faults':>8}")
    for method_id in sorted(summary["methods"]):
        entry = summary["methods"][method_id]
        mean = entry["total_seconds"] / entry["activations"] * 1e6
        print(f"{method_id:<12}{entry['activations']:>12}"
              f"{mean:>10.1f}us{entry['aborted']:>9}{entry['faults']:>8}")
    print(f"active: {summary['active']}  "
          f"wake edges: {summary['wake_edges']}  "
          f"listener errors: {summary['listener_errors']}")

    for method_id in sorted(summary["methods"]):
        print()
        print(plane.flame(method_id))

    print("\nfirst activation span tree:")
    print(plane.recorder.finished[0].format())

    print("\nPrometheus exposition (excerpt):")
    for line in plane.prometheus().splitlines():
        if line.startswith(("repro_moderation_", "repro_park_seconds")) \
                and not line.endswith(" 0"):
            print(f"  {line}")
    return 0


def run_slice() -> int:
    from repro.contracts import (
        ContractRegistry, ContractViolation, causal_slice, slice_to_dot,
    )
    from repro.core import AspectModerator, ComponentProxy, NullAspect
    from repro.dist import Client, NameService, Network, Node
    from repro.obs import SpanRecorder, propagation

    class Store:
        def __init__(self):
            self.total = 0

        def write(self, value):
            self.total += value
            return self.total

    class Skim(NullAspect):
        never_blocks = True

        def evaluate_precondition(self, joinpoint):
            joinpoint.component.total -= 1
            return super().evaluate_precondition(joinpoint)

    class Relay:
        def __init__(self, client):
            self._client = client

        def forward(self, value):
            return self._client.call_node("node-b", "store", "write",
                                          value)

    network = Network(latency=0.001)
    names = NameService()

    moderator_b = AspectModerator()
    moderator_b.register_aspect(
        "write", "skim", Skim(),
        fault_policy="fail_open", fault_threshold=1,
    )
    registry_b = ContractRegistry(node="node-b")
    registry_b.declare(
        "write",
        ensure=[("total_grew",
                 lambda jp, old: jp.component.total
                 == old.total + jp.args[0])],
        observables=("total",),
    )
    registry_b.install(moderator_b)
    recorder_b = SpanRecorder(node="node-b")
    moderator_b.events.subscribe(recorder_b)
    node_b = Node("node-b", network, workers=2).start()
    node_b.export("store", ComponentProxy(Store(), moderator_b))

    moderator_a = AspectModerator()
    moderator_a.register_aspect("forward", "audit", NullAspect())
    recorder_a = SpanRecorder(node="node-a")
    moderator_a.events.subscribe(recorder_a)
    relay_client = Client("node-a-out", network, names,
                          default_timeout=2.0)
    node_a = Node("node-a", network, workers=2).start()
    node_a.export("front", ComponentProxy(Relay(relay_client),
                                          moderator_a))
    names.bind("front", "node-a", "front")

    client = Client("edge", network, names, default_timeout=2.0)
    print("Calling front.forward(5) — node-a relays to node-b's "
          "moderated store,\nwhere a 'skim' aspect silently mutates the "
          "contract observable ...")
    violation = None
    try:
        with propagation.start_trace():
            try:
                client.call_name("front", "forward", 5)
            except ContractViolation as caught:
                violation = caught
        if violation is None:
            print("no violation?!")
            return 1
        print(f"\nContractViolation rehydrated at the edge client "
              f"(two hops):\n  {violation}")
        print(f"\nblame verdict: {violation.blame}")
        print("checkpoint evidence:")
        for record in violation.evidence:
            print(f"  {dict(record)}")
        print("\ncallee aspect health (structured last_fault_info):")
        record = moderator_b.aspect_health()[("write", "skim")]
        print(f"  quarantined={record['quarantined']} "
              f"last_fault_info={record['last_fault_info']}")

        slice_ = causal_slice(
            recorder_a.export(), recorder_b.export(),
            wake_edges=[*recorder_a.export_wake_edges(),
                        *recorder_b.export_wake_edges()],
            evidence=violation.evidence,
        )
        print("\nminimal causal sub-trace:")
        print(slice_.format())
        print("\nGraphviz rendering (pipe to `dot -Tsvg`):")
        print(slice_to_dot(slice_))
        return 0
    finally:
        client.close()
        relay_client.close()
        node_a.stop()
        node_b.stop()
        network.close()


def run_profile() -> int:
    from repro.core import AspectModerator, ComponentProxy, FunctionAspect
    from repro.core.errors import MethodAborted
    from repro.core.results import AspectResult
    from repro.obs import ClauseProfiler

    class Inventory:
        def __init__(self):
            self.reserved = 0

        def reserve(self, item):
            self.reserved += 1
            return self.reserved

    def expensive_check(joinpoint):
        total = 0
        for index in range(400):  # a deliberately costly pure check
            total += index * index
        return AspectResult.RESUME

    def stock_gate(joinpoint):
        # vetoes two calls in three — the cheap, frequently-vetoing
        # clause the profiler should learn to evaluate first
        if joinpoint.args[0] % 3:
            return AspectResult.ABORT
        return AspectResult.RESUME

    moderator = AspectModerator()
    moderator.register_aspect("reserve", "fraud", FunctionAspect(
        concern="fraud", precondition=expensive_check,
        never_blocks=True, commutes_with=("stock",),
    ))
    moderator.register_aspect("reserve", "stock", FunctionAspect(
        concern="stock", precondition=stock_gate,
        never_blocks=True, commutes_with=("fraud",),
    ))
    moderator.register_aspect("reserve", "catalog", FunctionAspect(
        concern="catalog", precondition=lambda jp: AspectResult.RESUME,
        never_blocks=True, idempotent_precondition=True,
        cache_key=lambda jp: jp.args[0] % 8,
    ))
    moderator.register_aspect("reserve", "metrics", FunctionAspect(
        concern="metrics", never_blocks=True, pure_observer=True,
    ))
    profiler = ClauseProfiler(sample_rate=1, min_samples=10)
    profiler.install(moderator)
    proxy = ComponentProxy(Inventory(), moderator=moderator)

    print("seed plan (registration order, observer already elided):")
    print(moderator.plan_for("reserve").format())

    admitted = vetoed = 0
    for call in range(300):
        try:
            proxy.reserve(call)
            admitted += 1
        except MethodAborted:
            vetoed += 1
    print(f"\nworkload: 300 calls -> {admitted} admitted, "
          f"{vetoed} vetoed\n")
    print("clause profile:")
    print(profiler.render_report())

    profiler.refresh()
    print("\nplan after profiler.refresh() — cheap frequent vetoer "
          "now runs first:")
    print(moderator.plan_for("reserve").format())

    report = moderator.explain("reserve")["profile"]
    print(f"\nexplain()['profile']: {report}")
    return 0


def run_recover() -> int:
    import tempfile
    import threading
    import time

    from repro.aspects.retry import RetryPolicy
    from repro.core.errors import FencedOut
    from repro.dist import (
        Client, FileStore, HeartbeatDetector, HeartbeatEmitter,
        NameService, Network, Node, RecoveryPlan, Supervisor,
        recover_service,
    )
    from repro.dist.resilience import RPC_TRANSIENT

    class Ledger:
        """KV that counts applies per key — above 1 is a double-apply."""

        def __init__(self, data=None, counts=None):
            self._lock = threading.Lock()
            self.data = dict(data or {})
            self.counts = dict(counts or {})

        def put(self, key, value):
            with self._lock:
                self.counts[key] = self.counts.get(key, 0) + 1
                self.data[key] = value
                return self.counts[key]

        def applied(self, key):
            return self.counts.get(key, 0)

    class FrozenNames:
        """A zombie-era client's map: pinned to one stale binding."""

        def __init__(self, binding):
            self.binding = binding

        def resolve(self, name):
            return self.binding

    policy = RetryPolicy(max_attempts=40, base_delay=0.02,
                         multiplier=1.2, max_delay=0.1,
                         retry_on=RPC_TRANSIENT)
    root = tempfile.mkdtemp(prefix="repro-recover-")
    store = FileStore(root)
    plan = RecoveryPlan(
        store,
        capture=lambda s: {"data": dict(s.data),
                           "counts": dict(s.counts)},
        rebuild=lambda state: Ledger(data=state.get("data"),
                                     counts=state.get("counts")),
        mutating=["put"],
    )
    network = Network()
    names = NameService()
    n1 = Node("n1", network).start()
    n2 = Node("n2", network).start()
    detector = HeartbeatDetector(network, "monitor", suspect_after=0.08,
                                 dead_after=0.2, confirm_dead=2)
    emitters = [HeartbeatEmitter(network, node.node_id, "monitor",
                                 interval=0.02).start()
                for node in (n1, n2)]
    supervisor = Supervisor(names, detector)
    spec = supervisor.supervise("ledger", "ledger", plan, [n1, n2],
                                bootstrap=Ledger, backoff=0.05)
    client = Client("edge", network, names, default_timeout=2.0)

    def put(key, value):
        return client.call_name("ledger", "put", key, value,
                                timeout=0.1, retry_policy=policy)

    def wait_for_home(node_id, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if names.resolve("ledger").node_id == node_id:
                return True
            time.sleep(0.01)
        return False

    def show_failover():
        report = supervisor.history[-1]
        print(f"  failover -> {report.to_node}  epoch={report.epoch}  "
              f"replayed={report.replayed} journaled effects, "
              f"seeded={report.seeded} replies, "
              f"{report.duration * 1000:.1f} ms")

    try:
        detector.wait_for_state("n1", "alive", timeout=5.0)
        detector.wait_for_state("n2", "alive", timeout=5.0)
        supervisor.place(spec, n1)
        supervisor.start(interval=0.02)
        binding = names.resolve("ledger")
        print(f"durable store: {root}")
        print(f"'ledger' placed on {binding.node_id} "
              f"(fencing epoch {binding.epoch})")

        keys = [f"k{n}" for n in range(5)]
        for index, key in enumerate(keys):
            assert put(key, f"v{index}") == 1
        print(f"wrote {len(keys)} keys; journal at seq "
              f"{store.last_seq('ledger')}")

        print("\n-- pulling the cord on n1 (volatile state lost) --")
        n1.crash(lose_memory=True)
        assert put("k-during", "written-mid-crash") == 1
        print("a put issued during the outage was acked after "
              "failover, exactly once")
        assert wait_for_home("n2"), "supervisor never failed over"
        show_failover()

        print("\n-- n1 restarts empty; n2 pauses without losing "
              "memory --")
        n1.recover()
        detector.wait_for_state("n1", "alive", timeout=5.0)
        zombie_binding = names.resolve("ledger")  # points at n2
        n2.crash(lose_memory=False)
        assert wait_for_home("n1"), "supervisor never failed back"
        show_failover()

        n2.recover()  # the zombie returns, servant and stale epoch intact
        stale = Client("stale-edge", network, FrozenNames(zombie_binding),
                       default_timeout=2.0)
        try:
            stale.call_name("ledger", "put", "k0", "zombie-write",
                            timeout=2.0, idempotency_key="zombie:1")
            print("zombie write was accepted?!")
            return 1
        except FencedOut as fenced:
            print(f"zombie n2 fenced out: {fenced}")
        finally:
            stale.close()

        keys.append("k-during")
        audited = recover_service(plan, "ledger", bootstrap=Ledger).servant
        print("\nexactly-once audit (live view vs independent "
              "store rebuild):")
        print(f"  {'key':<10}{'live applies':>14}{'durable applies':>17}")
        clean = True
        for key in keys:
            live = client.call_name("ledger", "applied", key,
                                    timeout=0.1, retry_policy=policy)
            durable = audited.counts.get(key, 0)
            clean = clean and live == 1 and durable == 1
            print(f"  {key:<10}{live:>14}{durable:>17}")
        metrics = supervisor.metrics()
        print(f"\nsupervisor metrics: failovers={metrics['failovers']} "
              f"effects_replayed={metrics['effects_replayed']} "
              f"dedup_seeded={metrics['dedup_seeded']}")
        return 0 if clean else 1
    finally:
        supervisor.stop()
        client.close()
        for emitter in emitters:
            emitter.stop()
        detector.close()
        n1.stop()
        n2.stop()
        network.close()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Aspect Moderator framework demos",
    )
    parser.add_argument(
        "command", nargs="?", default="demo",
        choices=["demo", "verify", "metrics", "lint", "obs", "slice",
                 "profile", "recover"],
        help="which demo to run (default: demo)",
    )
    arguments = parser.parse_args(argv)
    runners = {"demo": run_demo, "verify": run_verify,
               "metrics": run_metrics, "lint": run_lint,
               "obs": run_obs, "slice": run_slice,
               "profile": run_profile, "recover": run_recover}
    return runners[arguments.command]()


if __name__ == "__main__":
    sys.exit(main())
