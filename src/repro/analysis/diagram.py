"""Architecture diagrams: render a cluster as Graphviz DOT (Figure 1).

The paper's Figure 1 draws the moderator/bank/factory/proxy/component
box diagram by hand. :func:`cluster_to_dot` renders the same picture
from a live cluster — the diagram can never drift from the code.
"""

from __future__ import annotations

from typing import List

from repro.core.registry import Cluster


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def cluster_to_dot(cluster: Cluster, name: str = "cluster") -> str:
    """Render the Figure 1 architecture of one cluster as DOT text.

    Nodes: the functional component, the proxy, the moderator, the
    factories, and one node per registered aspect; edges mirror the
    figure's arrows (proxy guards component, proxy delegates to
    moderator, moderator evaluates aspects, factories create aspects,
    bank cells labelled method x concern).
    """
    arch = cluster.architecture()
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=11];",
        f"  component [label={_quote(arch['functional_component'])}, "
        f"style=filled, fillcolor=lightyellow];",
        f"  proxy [label={_quote(arch['proxy'])}];",
        f"  moderator [label={_quote(arch['aspect_moderator'])}];",
    ]
    for index, factory_name in enumerate(arch["aspect_factory"]):
        lines.append(
            f"  factory{index} [label={_quote(factory_name)}, "
            f"shape=component];"
        )
    lines.append("  proxy -> component [label=\"invokes\"];")
    lines.append(
        "  proxy -> moderator [label=\"pre/post-activation\"];"
    )
    seen_aspects = {}
    for method_id, concern, aspect in cluster.bank:
        key = id(aspect)
        if key not in seen_aspects:
            node = f"aspect{len(seen_aspects)}"
            seen_aspects[key] = node
            lines.append(
                f"  {node} [label={_quote(aspect.describe())}, "
                f"shape=ellipse, style=filled, fillcolor=lightblue];"
            )
        node = seen_aspects[key]
        lines.append(
            f"  moderator -> {node} "
            f"[label={_quote(method_id + ' x ' + concern)}];"
        )
    for index in range(len(arch["aspect_factory"])):
        for node in set(seen_aspects.values()):
            # factories create aspects; draw one dashed creation edge
            lines.append(
                f"  factory{index} -> {node} [style=dashed, "
                f"label=\"creates\"];"
            )
            break  # one representative edge per factory keeps it readable
    lines.append("}")
    return "\n".join(lines)


def bank_to_table(cluster: Cluster) -> str:
    """Render the aspect bank as a fixed-width text table.

    The textual form of the "hierarchical two-dimensional composition"
    — rows are participating methods, columns are concerns.
    """
    grid = cluster.bank.grid()
    concerns: List[str] = []
    for row in grid.values():
        for concern in row:
            if concern not in concerns:
                concerns.append(concern)
    if not grid:
        return "(empty bank)"
    method_width = max(len(m) for m in grid) + 2
    widths = {
        concern: max(
            len(concern),
            *(len(row.get(concern, "")) for row in grid.values()),
        ) + 2
        for concern in concerns
    }
    header = " " * method_width + "".join(
        f"{concern:<{widths[concern]}}" for concern in concerns
    )
    lines = [header.rstrip()]
    for method, row in grid.items():
        line = f"{method:<{method_width}}" + "".join(
            f"{row.get(concern, '-'):<{widths[concern]}}"
            for concern in concerns
        )
        lines.append(line.rstrip())
    return "\n".join(lines)


def plan_to_dot(plan: "object", name: str = "plan") -> str:
    """Render one compiled activation plan as a DOT pipeline.

    Accepts an :class:`~repro.core.plan.ActivationPlan` or its
    ``explain()`` report. The rendering is the dynamic complement of
    :func:`cluster_to_dot`: Figure 1 shows who talks to whom, this shows
    what one activation of ``method_id`` will actually execute, in
    order — pre-activation left to right, post-activation implied in
    reverse. Degraded cells are drawn filled red with their quarantine
    policy, so a quarantined composition is visibly different from a
    healthy one.
    """
    report = plan.explain() if hasattr(plan, "explain") else dict(plan)
    method_id = report["method_id"]
    mode = "fast-path" if report["never_blocks"] else "locked"
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=11];",
        f"  method [label={_quote(method_id + ' (' + mode + ')')}, "
        f"style=filled, fillcolor=lightyellow];",
    ]
    previous = "method"
    for cell in report["cells"]:
        node = f"cell{cell['position']}"
        label = f"{cell['concern']}\\n{cell['aspect_class']}"
        if cell["degraded"]:
            label += f"\\nQUARANTINED ({cell['degraded']})"
            style = "style=filled, fillcolor=lightcoral"
        else:
            style = "style=filled, fillcolor=lightblue"
        lines.append(f"  {node} [label={_quote(label)}, {style}];")
        lines.append(f"  {previous} -> {node} [label=\"precondition\"];")
        previous = node
    note = (
        f"domain {report['lock_domain']}\\nordering {report['ordering']}"
    )
    lines.append(f"  key [shape=note, fontsize=9, label={_quote(note)}];")
    lines.append("}")
    return "\n".join(lines)


def span_to_dot(span: "object", name: str = "span",
                wake_edges: "object" = None) -> str:
    """Render one activation span tree as a DOT graph.

    Accepts a :class:`~repro.obs.spans.Span` or its exported dict form
    (:meth:`~repro.obs.spans.Span.to_dict`). The temporal complement of
    :func:`plan_to_dot`: the plan shows what an activation *would*
    execute, this shows what one activation *did* — every segment with
    its measured duration, aborted/faulted segments filled red, blocked
    (parked) segments filled grey. ``wake_edges`` (an iterable of
    :class:`~repro.obs.spans.WakeEdge` or equivalent dicts) adds dashed
    cross-activation wake arrows when the referenced spans are present.
    """
    def _as_dict(node: "object") -> dict:
        if isinstance(node, dict):
            return node
        return {
            "name": node.name, "concern": node.concern,
            "status": node.status, "duration": node.duration,
            "span_id": node.span_id, "method_id": node.method_id,
            "activation_id": node.activation_id,
            "children": list(node.children),
        }

    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=TB;",
        "  node [shape=box, fontsize=10];",
    ]
    ids = {}

    def _render(node: "object", parent: str) -> None:
        data = _as_dict(node)
        dot_id = f"s{len(ids)}"
        ids[data["span_id"]] = dot_id
        label = data["name"]
        if data.get("concern"):
            label += f"[{data['concern']}]"
        if data["name"] == "activation":
            label += (
                f"\\n{data.get('method_id', '')}"
                f" #{data.get('activation_id', '')}"
            )
        label += f"\\n{data.get('duration', 0.0) * 1e6:.1f}us"
        status = data.get("status", "ok")
        if status in ("aborted", "fault", "timeout"):
            label += f"\\n{status.upper()}"
            style = "style=filled, fillcolor=lightcoral"
        elif data["name"] == "blocked":
            style = "style=filled, fillcolor=lightgrey"
        elif data["name"] == "activation":
            style = "style=filled, fillcolor=lightyellow"
        else:
            style = "style=filled, fillcolor=lightblue"
        lines.append(f"  {dot_id} [label={_quote(label)}, {style}];")
        if parent:
            lines.append(f"  {parent} -> {dot_id};")
        for child in data.get("children", ()):
            _render(child, dot_id)

    roots = span if isinstance(span, (list, tuple)) else [span]
    for root in roots:
        _render(root, "")
    for edge in (wake_edges or ()):
        if isinstance(edge, dict):
            notifier = edge.get("notifier_span")
            woken = edge.get("woken_span")
        else:
            notifier = edge.notifier_span
            woken = edge.woken_span
        if notifier in ids and woken in ids:
            lines.append(
                f"  {ids[notifier]} -> {ids[woken]} "
                f"[style=dashed, color=darkgreen, label=\"wakes\"];"
            )
    lines.append("}")
    return "\n".join(lines)


def plan_table(moderator: "object") -> str:
    """Summarize every method's compiled plan as a fixed-width table.

    One row per participating method: the effective pre-activation
    order, the executor the plan selected (fast/locked), and the lock
    domain — the at-a-glance answer to "what did compilation decide".
    """
    reports = moderator.explain()
    if not reports:
        return "(no participating methods)"
    rows = []
    for method_id in sorted(reports):
        report = reports[method_id]
        chain = " -> ".join(report["preactivation_order"]) or "(empty)"
        flags = []
        flags.append("fast" if report["never_blocks"] else "locked")
        if not report["fast_executor"]:
            flags.append("generic")
        if report["injector_armed"]:
            flags.append("injected")
        if any(cell["degraded"] for cell in report["cells"]):
            flags.append("degraded")
        profile = report.get("profile")
        if profile:
            if profile.get("reordered"):
                flags.append("reordered by profile")
            if profile.get("memoized"):
                flags.append("memoized")
            if profile.get("elided"):
                flags.append("elided:" + ",".join(profile["elided"]))
        rows.append(
            (method_id, chain, ",".join(flags), report["lock_domain"])
        )
    headers = ("method", "pre-activation order", "executor", "lock domain")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) + 2
        for i in range(4)
    ]
    lines = [
        "".join(f"{headers[i]:<{widths[i]}}" for i in range(4)).rstrip()
    ]
    for row in rows:
        lines.append(
            "".join(f"{row[i]:<{widths[i]}}" for i in range(4)).rstrip()
        )
    return "\n".join(lines)
