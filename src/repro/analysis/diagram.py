"""Architecture diagrams: render a cluster as Graphviz DOT (Figure 1).

The paper's Figure 1 draws the moderator/bank/factory/proxy/component
box diagram by hand. :func:`cluster_to_dot` renders the same picture
from a live cluster — the diagram can never drift from the code.
"""

from __future__ import annotations

from typing import List

from repro.core.registry import Cluster


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def cluster_to_dot(cluster: Cluster, name: str = "cluster") -> str:
    """Render the Figure 1 architecture of one cluster as DOT text.

    Nodes: the functional component, the proxy, the moderator, the
    factories, and one node per registered aspect; edges mirror the
    figure's arrows (proxy guards component, proxy delegates to
    moderator, moderator evaluates aspects, factories create aspects,
    bank cells labelled method x concern).
    """
    arch = cluster.architecture()
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=11];",
        f"  component [label={_quote(arch['functional_component'])}, "
        f"style=filled, fillcolor=lightyellow];",
        f"  proxy [label={_quote(arch['proxy'])}];",
        f"  moderator [label={_quote(arch['aspect_moderator'])}];",
    ]
    for index, factory_name in enumerate(arch["aspect_factory"]):
        lines.append(
            f"  factory{index} [label={_quote(factory_name)}, "
            f"shape=component];"
        )
    lines.append("  proxy -> component [label=\"invokes\"];")
    lines.append(
        "  proxy -> moderator [label=\"pre/post-activation\"];"
    )
    seen_aspects = {}
    for method_id, concern, aspect in cluster.bank:
        key = id(aspect)
        if key not in seen_aspects:
            node = f"aspect{len(seen_aspects)}"
            seen_aspects[key] = node
            lines.append(
                f"  {node} [label={_quote(aspect.describe())}, "
                f"shape=ellipse, style=filled, fillcolor=lightblue];"
            )
        node = seen_aspects[key]
        lines.append(
            f"  moderator -> {node} "
            f"[label={_quote(method_id + ' x ' + concern)}];"
        )
    for index in range(len(arch["aspect_factory"])):
        for node in set(seen_aspects.values()):
            # factories create aspects; draw one dashed creation edge
            lines.append(
                f"  factory{index} -> {node} [style=dashed, "
                f"label=\"creates\"];"
            )
            break  # one representative edge per factory keeps it readable
    lines.append("}")
    return "\n".join(lines)


def bank_to_table(cluster: Cluster) -> str:
    """Render the aspect bank as a fixed-width text table.

    The textual form of the "hierarchical two-dimensional composition"
    — rows are participating methods, columns are concerns.
    """
    grid = cluster.bank.grid()
    concerns: List[str] = []
    for row in grid.values():
        for concern in row:
            if concern not in concerns:
                concerns.append(concern)
    if not grid:
        return "(empty bank)"
    method_width = max(len(m) for m in grid) + 2
    widths = {
        concern: max(
            len(concern),
            *(len(row.get(concern, "")) for row in grid.values()),
        ) + 2
        for concern in concerns
    }
    header = " " * method_width + "".join(
        f"{concern:<{widths[concern]}}" for concern in concerns
    )
    lines = [header.rstrip()]
    for method, row in grid.items():
        line = f"{method:<{method_width}}" + "".join(
            f"{row.get(concern, '-'):<{widths[concern]}}"
            for concern in concerns
        )
        lines.append(line.rstrip())
    return "\n".join(lines)
