"""Architecture diagrams: render a cluster as Graphviz DOT (Figure 1).

The paper's Figure 1 draws the moderator/bank/factory/proxy/component
box diagram by hand. :func:`cluster_to_dot` renders the same picture
from a live cluster — the diagram can never drift from the code.
"""

from __future__ import annotations

from typing import List

from repro.core.registry import Cluster


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def cluster_to_dot(cluster: Cluster, name: str = "cluster") -> str:
    """Render the Figure 1 architecture of one cluster as DOT text.

    Nodes: the functional component, the proxy, the moderator, the
    factories, and one node per registered aspect; edges mirror the
    figure's arrows (proxy guards component, proxy delegates to
    moderator, moderator evaluates aspects, factories create aspects,
    bank cells labelled method x concern).
    """
    arch = cluster.architecture()
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=11];",
        f"  component [label={_quote(arch['functional_component'])}, "
        f"style=filled, fillcolor=lightyellow];",
        f"  proxy [label={_quote(arch['proxy'])}];",
        f"  moderator [label={_quote(arch['aspect_moderator'])}];",
    ]
    for index, factory_name in enumerate(arch["aspect_factory"]):
        lines.append(
            f"  factory{index} [label={_quote(factory_name)}, "
            f"shape=component];"
        )
    lines.append("  proxy -> component [label=\"invokes\"];")
    lines.append(
        "  proxy -> moderator [label=\"pre/post-activation\"];"
    )
    seen_aspects = {}
    for method_id, concern, aspect in cluster.bank:
        key = id(aspect)
        if key not in seen_aspects:
            node = f"aspect{len(seen_aspects)}"
            seen_aspects[key] = node
            lines.append(
                f"  {node} [label={_quote(aspect.describe())}, "
                f"shape=ellipse, style=filled, fillcolor=lightblue];"
            )
        node = seen_aspects[key]
        lines.append(
            f"  moderator -> {node} "
            f"[label={_quote(method_id + ' x ' + concern)}];"
        )
    for index in range(len(arch["aspect_factory"])):
        for node in set(seen_aspects.values()):
            # factories create aspects; draw one dashed creation edge
            lines.append(
                f"  factory{index} -> {node} [style=dashed, "
                f"label=\"creates\"];"
            )
            break  # one representative edge per factory keeps it readable
    lines.append("}")
    return "\n".join(lines)


def bank_to_table(cluster: Cluster) -> str:
    """Render the aspect bank as a fixed-width text table.

    The textual form of the "hierarchical two-dimensional composition"
    — rows are participating methods, columns are concerns.
    """
    grid = cluster.bank.grid()
    concerns: List[str] = []
    for row in grid.values():
        for concern in row:
            if concern not in concerns:
                concerns.append(concern)
    if not grid:
        return "(empty bank)"
    method_width = max(len(m) for m in grid) + 2
    widths = {
        concern: max(
            len(concern),
            *(len(row.get(concern, "")) for row in grid.values()),
        ) + 2
        for concern in concerns
    }
    header = " " * method_width + "".join(
        f"{concern:<{widths[concern]}}" for concern in concerns
    )
    lines = [header.rstrip()]
    for method, row in grid.items():
        line = f"{method:<{method_width}}" + "".join(
            f"{row.get(concern, '-'):<{widths[concern]}}"
            for concern in concerns
        )
        lines.append(line.rstrip())
    return "\n".join(lines)


def plan_to_dot(plan: "object", name: str = "plan") -> str:
    """Render one compiled activation plan as a DOT pipeline.

    Accepts an :class:`~repro.core.plan.ActivationPlan` or its
    ``explain()`` report. The rendering is the dynamic complement of
    :func:`cluster_to_dot`: Figure 1 shows who talks to whom, this shows
    what one activation of ``method_id`` will actually execute, in
    order — pre-activation left to right, post-activation implied in
    reverse. Degraded cells are drawn filled red with their quarantine
    policy, so a quarantined composition is visibly different from a
    healthy one.
    """
    report = plan.explain() if hasattr(plan, "explain") else dict(plan)
    method_id = report["method_id"]
    mode = "fast-path" if report["never_blocks"] else "locked"
    lines: List[str] = [
        f"digraph {name} {{",
        "  rankdir=LR;",
        "  node [shape=box, fontsize=11];",
        f"  method [label={_quote(method_id + ' (' + mode + ')')}, "
        f"style=filled, fillcolor=lightyellow];",
    ]
    previous = "method"
    for cell in report["cells"]:
        node = f"cell{cell['position']}"
        label = f"{cell['concern']}\\n{cell['aspect_class']}"
        if cell["degraded"]:
            label += f"\\nQUARANTINED ({cell['degraded']})"
            style = "style=filled, fillcolor=lightcoral"
        else:
            style = "style=filled, fillcolor=lightblue"
        lines.append(f"  {node} [label={_quote(label)}, {style}];")
        lines.append(f"  {previous} -> {node} [label=\"precondition\"];")
        previous = node
    note = (
        f"domain {report['lock_domain']}\\nordering {report['ordering']}"
    )
    lines.append(f"  key [shape=note, fontsize=9, label={_quote(note)}];")
    lines.append("}")
    return "\n".join(lines)


def plan_table(moderator: "object") -> str:
    """Summarize every method's compiled plan as a fixed-width table.

    One row per participating method: the effective pre-activation
    order, the executor the plan selected (fast/locked), and the lock
    domain — the at-a-glance answer to "what did compilation decide".
    """
    reports = moderator.explain()
    if not reports:
        return "(no participating methods)"
    rows = []
    for method_id in sorted(reports):
        report = reports[method_id]
        chain = " -> ".join(report["preactivation_order"]) or "(empty)"
        flags = []
        flags.append("fast" if report["never_blocks"] else "locked")
        if not report["fast_executor"]:
            flags.append("generic")
        if report["injector_armed"]:
            flags.append("injected")
        if any(cell["degraded"] for cell in report["cells"]):
            flags.append("degraded")
        rows.append(
            (method_id, chain, ",".join(flags), report["lock_domain"])
        )
    headers = ("method", "pre-activation order", "executor", "lock domain")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) + 2
        for i in range(4)
    ]
    lines = [
        "".join(f"{headers[i]:<{widths[i]}}" for i in range(4)).rstrip()
    ]
    for row in rows:
        lines.append(
            "".join(f"{row[i]:<{widths[i]}}" for i in range(4)).rstrip()
        )
    return "\n".join(lines)
