"""Analysis tools: separation-of-concerns metrics and trace verification."""

from .diagram import (
    bank_to_table,
    cluster_to_dot,
    plan_table,
    plan_to_dot,
    span_to_dot,
)
from .metrics import (
    CONCERN_KEYWORDS,
    ConcernReport,
    FunctionReport,
    SourceAnalyzer,
)
from .tracing import (
    FIGURE2_TEMPLATE,
    FIGURE3_TEMPLATE,
    MatchResult,
    match_activation,
    match_subsequence,
    postactivation_reverses_preactivation,
    render_figure,
    verify_figure2,
    verify_figure3,
)

__all__ = [
    "CONCERN_KEYWORDS",
    "bank_to_table",
    "cluster_to_dot",
    "plan_table",
    "plan_to_dot",
    "span_to_dot",
    "ConcernReport",
    "FIGURE2_TEMPLATE",
    "FIGURE3_TEMPLATE",
    "FunctionReport",
    "MatchResult",
    "SourceAnalyzer",
    "match_activation",
    "match_subsequence",
    "postactivation_reverses_preactivation",
    "render_figure",
    "verify_figure2",
    "verify_figure3",
]
