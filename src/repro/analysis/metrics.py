"""Separation-of-concerns metrics over Python source.

Quantifies the paper's qualitative claim — that the framework removes
code-tangling — with two standard metrics computed by static scanning:

* **scattering** of a concern: over how many functions (and modules) its
  implementation is spread;
* **tangling** of a function: how many distinct concerns appear in its
  body (a tangled method mixes sync + security + audit + domain logic;
  a separated one mentions exactly one).

Concern attribution is lexical (keyword sets per concern), which is the
classic approach of the early AOSD metrics literature and is exactly
reproducible. The T-SOC bench runs this analyzer over
``repro.baselines.tangled_ticketing`` vs. the framework's
``repro.apps.ticketing`` + aspect modules.
"""

from __future__ import annotations

import ast
import inspect
from dataclasses import dataclass, field
from types import ModuleType
from typing import Dict, Iterable, List, Set, Tuple

#: Lexical signatures of the interaction concerns (lower-cased substrings).
CONCERN_KEYWORDS: Dict[str, Tuple[str, ...]] = {
    "synchronization": (
        "lock", "condition", "wait", "notify", "acquire", "release",
        "block", "semaphore", "mutex", "not_full", "not_empty",
    ),
    "security": (
        "auth", "session", "credential", "login", "principal",
        "permission", "access", "denied",
    ),
    "audit": ("audit", "trail", "record_hash"),
    "timing": ("monotonic", "latenc", "timing", "duration", "elapsed"),
}


@dataclass
class FunctionReport:
    """Concern occurrences inside one function."""

    module: str
    qualname: str
    total_lines: int
    concern_lines: Dict[str, int] = field(default_factory=dict)

    @property
    def concerns(self) -> Set[str]:
        return {name for name, count in self.concern_lines.items() if count}

    @property
    def tangling(self) -> int:
        """Number of distinct concerns appearing in this function."""
        return len(self.concerns)


@dataclass
class ConcernReport:
    """Scattering of one concern across the analyzed code."""

    concern: str
    functions: List[str] = field(default_factory=list)
    modules: Set[str] = field(default_factory=set)
    lines: int = 0

    @property
    def scattering(self) -> int:
        """Functions this concern's implementation is spread over."""
        return len(self.functions)


class SourceAnalyzer:
    """Scan modules and compute scattering/tangling reports."""

    def __init__(self,
                 keywords: Dict[str, Tuple[str, ...]] = None) -> None:
        self.keywords = dict(keywords or CONCERN_KEYWORDS)

    # ------------------------------------------------------------------
    def _classify_line(self, line: str) -> Set[str]:
        lowered = line.lower()
        stripped = lowered.strip()
        if stripped.startswith("#") or not stripped:
            return set()
        return {
            concern
            for concern, words in self.keywords.items()
            if any(word in lowered for word in words)
        }

    def analyze_source(self, source: str,
                       module_name: str = "<source>") -> List[FunctionReport]:
        """Per-function concern occurrence for one module's source."""
        tree = ast.parse(source)
        lines = source.splitlines()
        reports: List[FunctionReport] = []

        class Visitor(ast.NodeVisitor):
            def __init__(self, analyzer: "SourceAnalyzer") -> None:
                self.analyzer = analyzer
                self.stack: List[str] = []

            def _visit_function(self, node) -> None:
                self.stack.append(node.name)
                qualname = ".".join(self.stack)
                start = node.lineno
                end = getattr(node, "end_lineno", start)
                body = lines[start - 1:end]
                concern_lines: Dict[str, int] = {}
                for line in body:
                    for concern in self.analyzer._classify_line(line):
                        concern_lines[concern] = (
                            concern_lines.get(concern, 0) + 1
                        )
                reports.append(FunctionReport(
                    module=module_name,
                    qualname=qualname,
                    total_lines=len(body),
                    concern_lines=concern_lines,
                ))
                self.generic_visit(node)
                self.stack.pop()

            def visit_FunctionDef(self, node) -> None:
                self._visit_function(node)

            def visit_AsyncFunctionDef(self, node) -> None:
                self._visit_function(node)

            def visit_ClassDef(self, node) -> None:
                self.stack.append(node.name)
                self.generic_visit(node)
                self.stack.pop()

        Visitor(self).visit(tree)
        return reports

    def analyze_module(self, module: ModuleType) -> List[FunctionReport]:
        source = inspect.getsource(module)
        return self.analyze_source(source, module_name=module.__name__)

    def analyze_modules(
        self, modules: Iterable[ModuleType]
    ) -> List[FunctionReport]:
        reports: List[FunctionReport] = []
        for module in modules:
            reports.extend(self.analyze_module(module))
        return reports

    # ------------------------------------------------------------------
    @staticmethod
    def concern_reports(
        function_reports: List[FunctionReport],
    ) -> Dict[str, ConcernReport]:
        """Aggregate per-function reports into per-concern scattering."""
        by_concern: Dict[str, ConcernReport] = {}
        for report in function_reports:
            for concern, count in report.concern_lines.items():
                if not count:
                    continue
                aggregate = by_concern.setdefault(
                    concern, ConcernReport(concern=concern)
                )
                aggregate.functions.append(
                    f"{report.module}:{report.qualname}"
                )
                aggregate.modules.add(report.module)
                aggregate.lines += count
        return by_concern

    @staticmethod
    def tangling_summary(
        function_reports: List[FunctionReport],
    ) -> Dict[str, float]:
        """Mean/max tangling over functions that touch any concern."""
        touched = [r for r in function_reports if r.tangling > 0]
        if not touched:
            return {"functions": 0, "mean_tangling": 0.0, "max_tangling": 0}
        tanglings = [r.tangling for r in touched]
        return {
            "functions": len(touched),
            "mean_tangling": sum(tanglings) / len(tanglings),
            "max_tangling": max(tanglings),
        }
