"""Sequence-trace analysis: regenerating the paper's Figures 2 and 3.

The UML sequence diagrams define *orders of protocol arrows*. This
module expresses those orders as checkable templates and verifies a
recorded :class:`~repro.core.events.Tracer` stream against them; the
FIG2/FIG3 tests and benches print the matched sequence — the executable
form of the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.events import TraceEvent, Tracer

#: Figure 2 — initialization phase: for each participating method the
#: proxy asks the factory to create the aspect, then registers it.
FIGURE2_TEMPLATE: Tuple[Tuple[str, str], ...] = (
    ("create_aspect", "open"),
    ("register_aspect", "open"),
    ("create_aspect", "assign"),
    ("register_aspect", "assign"),
)

#: Figure 3 — method invocation: preactivation -> precondition ->
#: invoke -> postactivation -> postaction -> notify.
FIGURE3_TEMPLATE: Tuple[str, ...] = (
    "preactivation",
    "precondition",
    "invoke",
    "postactivation",
    "postaction",
    "notify",
)


@dataclass
class MatchResult:
    """Outcome of matching a trace against a template."""

    matched: bool
    detail: str
    matched_events: List[TraceEvent]

    def __bool__(self) -> bool:
        return self.matched


def match_subsequence(events: Sequence[TraceEvent],
                      template: Sequence[Tuple[str, str]]) -> MatchResult:
    """Check that ``template`` (kind, method) pairs occur in order.

    Other events may interleave (the diagrams show the *relative* order
    of their arrows, not exclusivity).
    """
    matched: List[TraceEvent] = []
    cursor = 0
    for event in events:
        if cursor >= len(template):
            break
        kind, method = template[cursor]
        if event.kind == kind and (not method or event.method_id == method):
            matched.append(event)
            cursor += 1
    if cursor == len(template):
        return MatchResult(True, "all template arrows matched", matched)
    kind, method = template[cursor]
    return MatchResult(
        False,
        f"missing arrow {cursor}: {kind} {method}",
        matched,
    )


def match_activation(tracer: Tracer, activation_id: int,
                     template: Sequence[str] = FIGURE3_TEMPLATE
                     ) -> MatchResult:
    """Match one activation's events against a kind-only template."""
    events = tracer.for_activation(activation_id)
    pairs = [(kind, "") for kind in template]
    return match_subsequence(events, pairs)


def verify_figure2(tracer: Tracer) -> MatchResult:
    """Verify the initialization-phase order of Figure 2."""
    return match_subsequence(tracer.events, FIGURE2_TEMPLATE)


def verify_figure3(tracer: Tracer, method_id: str = "open") -> MatchResult:
    """Verify the invocation-phase order of Figure 3 for one method.

    Picks the first activation of ``method_id`` in the trace.
    """
    for event in tracer.events:
        if event.kind == "preactivation" and event.method_id == method_id:
            return match_activation(tracer, event.activation_id)
    return MatchResult(False, f"no activation of {method_id!r} traced", [])


def render_figure(tracer: Tracer, activation_id: Optional[int] = None,
                  title: str = "sequence") -> str:
    """Pretty-print a trace as the textual form of a sequence diagram."""
    events = (
        tracer.for_activation(activation_id)
        if activation_id is not None else tracer.events
    )
    lines = [f"--- {title} ---"]
    lines.extend(f"  {index:2d}. {event.format()}"
                 for index, event in enumerate(events))
    return "\n".join(lines)


def postactivation_reverses_preactivation(tracer: Tracer,
                                          activation_id: int) -> bool:
    """Check the stack discipline: postactions unwind preconditions.

    For one activation, the concern order of ``postaction`` events must
    be the exact reverse of the concern order of RESUMEd
    ``precondition`` events (paper Section 5.3).
    """
    events = tracer.for_activation(activation_id)
    pre = [
        event.concern for event in events
        if event.kind == "precondition" and event.detail == "resume"
    ]
    post = [event.concern for event in events if event.kind == "postaction"]
    # Only the final (fully RESUMEd) round of preconditions counts.
    if len(pre) > len(post):
        pre = pre[-len(post):] if post else []
    return pre == list(reversed(post))
