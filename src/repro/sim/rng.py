"""Seeded workload distributions for reproducible experiments.

Every benchmark draws its workload (inter-arrival times, service times,
key popularity, priorities) from a :class:`WorkloadRNG` seeded per
experiment id, so re-running a bench regenerates the identical request
stream.
"""

from __future__ import annotations

import math
import random
import zlib
from typing import List, Sequence


class WorkloadRNG:
    """A seeded bundle of the distributions the benchmarks need."""

    def __init__(self, seed: int = 42) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # basic draws
    # ------------------------------------------------------------------
    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, items: Sequence) -> object:
        return self._rng.choice(items)

    def shuffle(self, items: List) -> List:
        self._rng.shuffle(items)
        return items

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    # ------------------------------------------------------------------
    # arrival / service processes
    # ------------------------------------------------------------------
    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival with the given rate (events/sec)."""
        if rate <= 0:
            raise ValueError("rate must be positive")
        return self._rng.expovariate(rate)

    def poisson_arrivals(self, rate: float, horizon: float) -> List[float]:
        """Absolute arrival timestamps of a Poisson process on [0, horizon)."""
        arrivals: List[float] = []
        timestamp = 0.0
        while True:
            timestamp += self.exponential(rate)
            if timestamp >= horizon:
                return arrivals
            arrivals.append(timestamp)

    def lognormal(self, mean: float, sigma: float = 0.5) -> float:
        """Log-normal service time with the given *linear-space* mean."""
        if mean <= 0:
            raise ValueError("mean must be positive")
        mu = math.log(mean) - sigma * sigma / 2.0
        return self._rng.lognormvariate(mu, sigma)

    def pareto(self, shape: float = 1.5, scale: float = 1.0) -> float:
        """Heavy-tailed draw (shifted Pareto)."""
        return scale * (self._rng.paretovariate(shape))

    # ------------------------------------------------------------------
    # popularity
    # ------------------------------------------------------------------
    def zipf_index(self, n: int, s: float = 1.0) -> int:
        """Zipf-distributed index in [0, n) (rank 0 most popular)."""
        if n <= 0:
            raise ValueError("n must be positive")
        weights = [1.0 / ((rank + 1) ** s) for rank in range(n)]
        total = sum(weights)
        draw = self._rng.random() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            cumulative += weight
            if draw <= cumulative:
                return index
        return n - 1

    def fork(self, label: str) -> "WorkloadRNG":
        """A derived RNG with an independent, reproducible stream.

        Uses CRC32 rather than ``hash()`` because string hashing is
        salted per interpreter run and would break reproducibility.
        """
        derived_seed = zlib.crc32(f"{self.seed}:{label}".encode()) & 0x7FFFFFFF
        return WorkloadRNG(derived_seed)
