"""Discrete-event simulation engine.

A minimal, deterministic engine in the style of SimPy: a heap of timed
events, generator-based processes, and condition events. It exists so
tests and benchmarks can pin down *interleavings* — real threads give
the framework its concurrency; the simulator gives experiments their
reproducibility (same seed, same schedule, same numbers).

Determinism guarantees:

* events fire in nondecreasing virtual time;
* ties break by scheduling order (FIFO);
* no wall-clock or OS scheduling input anywhere.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.core.errors import SimulationError
from .clock import VirtualClock


class SimEvent:
    """A one-shot simulation event processes can wait on."""

    def __init__(self, engine: "Engine", name: str = "event") -> None:
        self.engine = engine
        self.name = name
        self.triggered = False
        self.value: Any = None
        self._waiters: List["Process"] = []

    def trigger(self, value: Any = None) -> None:
        """Fire the event now; wakes every waiting process."""
        if self.triggered:
            raise SimulationError(f"event {self.name!r} already triggered")
        self.triggered = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.engine._schedule_resume(process, value)

    def add_waiter(self, process: "Process") -> None:
        if self.triggered:
            self.engine._schedule_resume(process, self.value)
        else:
            self._waiters.append(process)

    def __repr__(self) -> str:
        return f"SimEvent({self.name!r}, triggered={self.triggered})"


class Process:
    """A generator-based simulated process.

    The generator may yield:

    * a non-negative number — sleep that many virtual seconds;
    * a :class:`SimEvent` — suspend until it triggers (receives its value);
    * another :class:`Process` — suspend until it finishes (receives its
      return value).

    The generator's ``return`` value becomes :attr:`result`.
    """

    def __init__(self, engine: "Engine",
                 generator: Generator[Any, Any, Any],
                 name: str = "process") -> None:
        self.engine = engine
        self.generator = generator
        self.name = name
        self.finished = False
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        self.completion = SimEvent(engine, name=f"{name}.done")

    def _step(self, send_value: Any = None) -> None:
        try:
            yielded = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.completion.trigger(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - recorded, re-raised on join
            self.finished = True
            self.failure = exc
            self.completion.trigger(None)
            if self.engine.strict:
                raise
            return
        self._dispatch(yielded)

    def _dispatch(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"negative sleep {yielded}")
            self.engine._schedule_resume(self, None, delay=float(yielded))
        elif isinstance(yielded, SimEvent):
            yielded.add_waiter(self)
        elif isinstance(yielded, Process):
            yielded.completion.add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {yielded!r}; expected "
                f"delay, SimEvent or Process"
            )

    def __repr__(self) -> str:
        return f"Process({self.name!r}, finished={self.finished})"


class Engine:
    """The event loop: a heap of (time, sequence, action) entries."""

    def __init__(self, strict: bool = True) -> None:
        self.clock = VirtualClock()
        #: re-raise process exceptions immediately (False stores them)
        self.strict = strict
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self.events_processed = 0
        self._trace: List[Tuple[float, str]] = []
        self.tracing = False

    @property
    def now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def call_at(self, timestamp: float, action: Callable[[], None],
                label: str = "call") -> None:
        if timestamp < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({timestamp} < {self.now})"
            )
        heapq.heappush(
            self._heap, (timestamp, next(self._sequence), action)
        )
        if self.tracing:
            self._trace.append((timestamp, f"scheduled {label}"))

    def call_after(self, delay: float, action: Callable[[], None],
                   label: str = "call") -> None:
        self.call_at(self.now + delay, action, label)

    def event(self, name: str = "event") -> SimEvent:
        return SimEvent(self, name=name)

    def process(self, generator: Generator[Any, Any, Any],
                name: str = "process", delay: float = 0.0) -> Process:
        """Register a generator as a process starting after ``delay``."""
        proc = Process(self, generator, name=name)
        self._schedule_resume(proc, None, delay=delay)
        return proc

    def _schedule_resume(self, process: Process, value: Any,
                         delay: float = 0.0) -> None:
        self.call_at(
            self.now + delay, lambda: process._step(value),
            label=f"resume {process.name}",
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None,
            max_events: int = 10_000_000) -> float:
        """Process events until the heap drains or virtual ``until``.

        Returns the final virtual time.

        ``max_events`` is a runaway-simulation guard counted **per
        call**: each ``run`` gets a fresh allowance, and events consumed
        by :meth:`step` or earlier ``run`` calls do not count against
        it. (Lifetime accounting lives in :attr:`events_processed`,
        which monotonically spans every ``run``/``step``.) Per-call is
        the deliberate choice — a test that drives the engine in phases,
        ``run(until=t1) ... run(until=t2)``, should not inherit a
        shrunken budget from its own earlier phases; the guard exists to
        catch an *individual* drive that never converges. A budget of N
        admits exactly N events: the guard trips only when an (N+1)-th
        in-range event remains, so a run that drains the heap (or
        reaches ``until``) on its last allowed event succeeds. Pinned by
        ``tests/unit/test_sim_engine_accounting.py``.
        """
        processed = 0
        while self._heap:
            timestamp, _seq, action = self._heap[0]
            if until is not None and timestamp > until:
                self.clock.advance_to(until)
                return self.now
            if processed >= max_events:
                # Only a *further* in-range event trips the guard: a
                # budget of N admits exactly N events, and a run that
                # drains the heap on its Nth is a success, not a runaway.
                raise SimulationError(
                    f"exceeded max_events={max_events}; runaway simulation?"
                )
            heapq.heappop(self._heap)
            self.clock.advance_to(timestamp)
            action()
            self.events_processed += 1
            processed += 1
        if until is not None and until > self.now:
            self.clock.advance_to(until)
        return self.now

    def step(self) -> bool:
        """Process exactly one event. Returns False when none remain."""
        if not self._heap:
            return False
        timestamp, _seq, action = heapq.heappop(self._heap)
        self.clock.advance_to(timestamp)
        action()
        self.events_processed += 1
        return True

    @property
    def pending(self) -> int:
        return len(self._heap)

    def trace(self) -> List[Tuple[float, str]]:
        return list(self._trace)
