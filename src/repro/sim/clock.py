"""Virtual time for the discrete-event simulation substrate."""

from __future__ import annotations

from repro.core.errors import ClockError


class VirtualClock:
    """A monotonically advancing virtual clock.

    Time is a float in arbitrary simulated units (seconds by
    convention). The clock never moves backwards; the engine is the only
    intended writer.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Advance to an absolute virtual timestamp."""
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: {timestamp} < {self._now}"
            )
        self._now = float(timestamp)

    def advance_by(self, delta: float) -> None:
        """Advance by a non-negative delta."""
        if delta < 0:
            raise ClockError(f"negative delta {delta}")
        self._now += float(delta)

    def __call__(self) -> float:
        """Clocks are callables so they can replace ``time.monotonic``."""
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
