"""Deterministic discrete-event simulation substrate."""

from .clock import VirtualClock
from .engine import Engine, Process, SimEvent
from .resources import SimResource, SimStore
from .rng import WorkloadRNG

__all__ = [
    "Engine",
    "Process",
    "SimEvent",
    "SimResource",
    "SimStore",
    "VirtualClock",
    "WorkloadRNG",
]
