"""Simulated resources: capacity-limited resources and item stores.

Built on :mod:`repro.sim.engine`; used by benchmark workloads that model
server capacity and by deterministic re-runs of the producer/consumer
scenarios.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.core.errors import SimulationError
from .engine import Engine, SimEvent


class SimResource:
    """A resource with ``capacity`` slots; FIFO acquisition.

    Usage inside a process generator::

        grant = resource.acquire()
        yield grant           # suspends until a slot is granted
        ...
        resource.release()
    """

    def __init__(self, engine: Engine, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiting: Deque[SimEvent] = deque()
        self.grants = 0
        self.peak_queue = 0

    def acquire(self) -> SimEvent:
        """Return an event that triggers when a slot is granted."""
        grant = self.engine.event(name=f"{self.name}.grant")
        if self.in_use < self.capacity:
            self.in_use += 1
            self.grants += 1
            grant.trigger()
        else:
            self._waiting.append(grant)
            self.peak_queue = max(self.peak_queue, len(self._waiting))
        return grant

    def release(self) -> None:
        if self.in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiting:
            grant = self._waiting.popleft()
            self.grants += 1
            grant.trigger()
        else:
            self.in_use -= 1

    @property
    def queue_length(self) -> int:
        return len(self._waiting)


class SimStore:
    """A bounded item store with blocking get/put, FIFO both ways.

    The simulated twin of the bounded buffer: the substrate for
    deterministic replays of the trouble-ticketing workload.
    """

    def __init__(self, engine: Engine, capacity: Optional[int] = None,
                 name: str = "store") -> None:
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimEvent] = deque()
        self._putters: Deque[tuple] = deque()
        self.total_put = 0
        self.total_got = 0

    def put(self, item: Any) -> SimEvent:
        """Event triggering once the item is stored."""
        done = self.engine.event(name=f"{self.name}.put")
        if self._getters:
            # Hand straight to the oldest waiting getter.
            getter = self._getters.popleft()
            self.total_put += 1
            self.total_got += 1
            done.trigger()
            getter.trigger(item)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.total_put += 1
            done.trigger()
        else:
            self._putters.append((item, done))
        return done

    def get(self) -> SimEvent:
        """Event triggering with the oldest item as its value."""
        got = self.engine.event(name=f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self.total_got += 1
            got.trigger(item)
            self._admit_putter()
        else:
            self._getters.append(got)
        return got

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            item, done = self._putters.popleft()
            self._items.append(item)
            self.total_put += 1
            done.trigger()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    @property
    def waiting_putters(self) -> int:
        return len(self._putters)

    def snapshot(self) -> List[Any]:
        return list(self._items)
