"""Simulated distributed runtime: nodes, network, RPC, naming, balancing."""

from .loadbalance import (
    BalancingPolicy,
    LeastLoaded,
    LoadBalancer,
    RandomChoice,
    RoundRobin,
    WeightedChoice,
)
from .failure_detector import (
    HeartbeatDetector,
    HeartbeatEmitter,
    detector_failover,
)
from .message import Message, WireFormatError, check_wire_safe
from .migration import MigrationError, MigrationReport, Migrator
from .naming import Binding, NameService, ShardedBinding
from .network import Network
from .node import Node
from .recovery import (
    FailoverReport,
    FileStore,
    MemoryStore,
    RecoveredService,
    RecoveryError,
    RecoveryPlan,
    RecoveryStore,
    SupervisedService,
    Supervisor,
    recover_service,
)
from .replication import FailoverMonitor, ReplicatedServant
from .sharding import (
    HashRing,
    RebalanceReport,
    Rebalancer,
    ShardRouter,
    first_argument_key,
)
from .resilience import (
    Deadline,
    DestinationBreakers,
    IdempotencyCache,
    RequestContext,
    ShedInbox,
    current_request,
    serving,
)
from .rpc import Client, RemoteError, RemoteProxy, RequestTimeout

__all__ = [
    "BalancingPolicy",
    "Binding",
    "Client",
    "FailoverMonitor",
    "FailoverReport",
    "FileStore",
    "HashRing",
    "HeartbeatDetector",
    "HeartbeatEmitter",
    "LeastLoaded",
    "LoadBalancer",
    "MemoryStore",
    "Message",
    "MigrationError",
    "MigrationReport",
    "Migrator",
    "NameService",
    "Network",
    "Node",
    "RandomChoice",
    "RebalanceReport",
    "Rebalancer",
    "RecoveredService",
    "RecoveryError",
    "RecoveryPlan",
    "RecoveryStore",
    "RemoteError",
    "RemoteProxy",
    "ReplicatedServant",
    "RequestContext",
    "RequestTimeout",
    "RoundRobin",
    "SupervisedService",
    "Supervisor",
    "ShardRouter",
    "ShardedBinding",
    "Deadline",
    "DestinationBreakers",
    "IdempotencyCache",
    "ShedInbox",
    "WeightedChoice",
    "WireFormatError",
    "current_request",
    "detector_failover",
    "check_wire_safe",
    "first_argument_key",
    "recover_service",
    "serving",
]
