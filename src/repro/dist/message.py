"""Messages for the simulated distributed runtime.

Messages are value objects copied on delivery (no shared mutable state
between "hosts" — the property a real wire gives you). Payloads must be
plain data (the :func:`check_wire_safe` predicate enforces the subset a
JSON-ish wire format could carry), which keeps the in-process simulation
honest: anything that wouldn't survive serialization is rejected at send
time, not silently shared by reference.
"""

from __future__ import annotations

import copy
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

_message_ids = itertools.count(1)

#: Types allowed on the simulated wire.
WIRE_SAFE_TYPES = (type(None), bool, int, float, str, bytes)


def check_wire_safe(value: Any, depth: int = 0) -> bool:
    """Whether ``value`` could survive a real serialization boundary."""
    if depth > 16:
        return False
    if isinstance(value, WIRE_SAFE_TYPES):
        return True
    if isinstance(value, (list, tuple)):
        return all(check_wire_safe(item, depth + 1) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and check_wire_safe(item, depth + 1)
            for key, item in value.items()
        )
    return False


class WireFormatError(TypeError):
    """Raised when a payload is not wire-safe."""


@dataclass(frozen=True)
class Message:
    """One message on the simulated network."""

    source: str
    dest: str
    kind: str  # "request" | "reply" | "error" | "event"
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    reply_to: Optional[int] = None
    sent_at: float = field(default_factory=time.monotonic)

    def __post_init__(self) -> None:
        if not check_wire_safe(self.payload):
            raise WireFormatError(
                f"payload of {self.kind} message {self.source}->{self.dest} "
                f"is not wire-safe"
            )

    def copy_for_delivery(self) -> "Message":
        """Deep-copied message, simulating deserialization at the receiver."""
        return Message(
            source=self.source,
            dest=self.dest,
            kind=self.kind,
            payload=copy.deepcopy(self.payload),
            msg_id=self.msg_id,
            reply_to=self.reply_to,
            sent_at=self.sent_at,
        )


def request(source: str, dest: str, service: str, method: str,
            args: Tuple[Any, ...] = (), kwargs: Optional[Dict[str, Any]] = None,
            caller: Optional[str] = None,
            trace: Optional[Dict[str, Any]] = None,
            deadline_budget: Optional[float] = None,
            idempotency_key: Optional[str] = None,
            attempt: int = 1,
            fence: Optional[int] = None) -> Message:
    """Build an RPC request message.

    ``trace`` is an optional wire-form trace context
    (:func:`repro.obs.propagation.to_wire`) — plain strings and floats,
    so it rides the payload through the same wire-safety check as
    everything else and lets the receiving node stitch its activation
    spans under the caller's trace.

    The resilience envelope (``docs/resilience.md``) is three more
    optional plain-data fields: ``deadline_budget`` is the remaining
    end-to-end budget in seconds at send time (absolute deadlines don't
    travel — monotonic clocks differ per host); ``idempotency_key``
    names the *logical* call so a server-side dedup cache can replay
    the original reply to a retry instead of re-executing; ``attempt``
    is the 1-based attempt number, carried for diagnostics.

    ``fence`` is the fencing epoch of the binding the caller resolved
    (``docs/recovery.md``): a node exported at a different epoch
    rejects the request with a retryable ``FencedOut`` instead of
    letting a stale binding land effects on a superseded location.
    """
    payload: Dict[str, Any] = {
        "service": service,
        "method": method,
        "args": list(args),
        "kwargs": dict(kwargs or {}),
        "caller": caller,
    }
    if trace is not None:
        payload["trace"] = trace
    if deadline_budget is not None:
        payload["deadline_budget"] = float(deadline_budget)
    if idempotency_key is not None:
        payload["idempotency_key"] = idempotency_key
    if attempt != 1:
        payload["attempt"] = attempt
    if fence is not None:
        payload["fence"] = int(fence)
    return Message(source=source, dest=dest, kind="request",
                   payload=payload)


def reply(to: Message, result: Any) -> Message:
    """Build a success reply to ``to``."""
    return Message(
        source=to.dest, dest=to.source, kind="reply",
        payload={"result": result}, reply_to=to.msg_id,
    )


def error_reply(to: Message, exc: BaseException,
                extra: Optional[Dict[str, Any]] = None) -> Message:
    """Build an error reply carrying the exception type and text.

    ``extra`` merges additional wire-safe fields into the payload —
    e.g. the ``retry_after`` hint on an ``Overloaded`` rejection.
    """
    payload: Dict[str, Any] = {
        "error_type": type(exc).__name__,
        "error": str(exc),
    }
    retry_after = getattr(exc, "retry_after", None)
    if isinstance(retry_after, (int, float)):
        payload["retry_after"] = retry_after
    wire = getattr(exc, "wire_payload", None)
    if callable(wire):
        # Errors that carry structured diagnostics (e.g.
        # ``ContractViolation`` with its blame verdict and checkpoint
        # evidence) contribute their own wire-safe fields, so the
        # client can rehydrate the typed error with evidence intact.
        payload.update(wire())
    if extra:
        payload.update(extra)
    return Message(
        source=to.dest, dest=to.source, kind="error",
        payload=payload,
        reply_to=to.msg_id,
    )
