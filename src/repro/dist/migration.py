"""Live service migration: move a servant between nodes.

Location transparency (paper Section 2) pays off when services *move*:
clients address a logical name, so migration is capture state → rebuild
on the target → rebind the name. The migrator enforces the honesty rule
of this simulated runtime: captured state must be **wire-safe** (it
would have to cross a real network), so in-process object handoff is
rejected — what works here works in a real deployment.

Quiescing: the optional ``quiesce`` / ``resume`` callbacks bracket the
capture. The natural implementation is a
:class:`~repro.aspects.coordination.PhaseAspect` transition — the same
separated concern that closes bookings also drains a service for
migration, which is exactly the reuse story the paper tells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.errors import NetworkError
from .message import check_wire_safe
from .naming import Binding, NameService
from .node import Node

#: extract wire-safe state from the running servant
CaptureFn = Callable[[Any], Dict[str, Any]]
#: build a fresh servant from captured state (runs "on the target")
RebuildFn = Callable[[Dict[str, Any]], Any]


class MigrationError(NetworkError):
    """Raised when a migration cannot proceed (bad state, dead target)."""


@dataclass(frozen=True)
class MigrationReport:
    """Outcome of one migration."""

    name: str
    source: str
    target: str
    state_keys: int
    downtime: float  # seconds between withdraw and rebind
    binding: Binding


class Migrator:
    """Moves named services between nodes with bounded downtime."""

    def __init__(self, names: NameService) -> None:
        self.names = names
        self.history: list = []

    def migrate(
        self,
        public_name: str,
        source: Node,
        target: Node,
        capture: CaptureFn,
        rebuild: RebuildFn,
        quiesce: Optional[Callable[[], None]] = None,
        resume: Optional[Callable[[], None]] = None,
        drain_timeout: float = 5.0,
    ) -> MigrationReport:
        """Move ``public_name`` from ``source`` to ``target``.

        Steps: resolve → quiesce → withdraw from source (opening the
        *moving window*: requests now bounce with a retryable
        ``Overloaded`` instead of a terminal error) → drain in-flight
        calls (``source.settle``, bounded by ``drain_timeout``) →
        capture (wire-safety enforced) → rebuild + export on target →
        rebind → resume. On any failure after the withdraw the servant
        is restored on the source and the name left untouched
        (migration is all-or-nothing from the clients' perspective),
        and ``resume`` runs on *every* exit — a failed capture or
        rebuild must never leave the service quiesced forever.
        """
        binding = self.names.resolve(public_name)
        if binding.node_id != source.node_id:
            raise MigrationError(
                f"{public_name!r} is bound to {binding.node_id!r}, "
                f"not to source {source.node_id!r}"
            )
        if not target.network.is_up(target.node_id):
            raise MigrationError(f"target {target.node_id!r} is down")

        if quiesce is not None:
            quiesce()
        try:
            try:
                servant = source.withdraw(binding.service, moving=True)
            except KeyError as exc:
                raise MigrationError(
                    f"service {binding.service!r} not on "
                    f"{source.node_id!r}"
                ) from exc
            withdrawn_at = time.monotonic()

            try:
                # Withdraw stopped new arrivals; the drain barrier
                # proves the in-flight ones finished, so the captured
                # state can miss no applied effect.
                if not source.settle(binding.service, drain_timeout):
                    raise MigrationError(
                        f"in-flight calls to {public_name!r} did not "
                        f"drain within {drain_timeout}s"
                    )
                state = capture(servant)
                if not isinstance(state, dict) \
                        or not check_wire_safe(state):
                    raise MigrationError(
                        f"captured state for {public_name!r} is not "
                        f"wire-safe"
                    )
                replacement = rebuild(state)
                target.export(binding.service, replacement)
            except MigrationError:
                source.export(binding.service, servant)  # roll back
                raise
            except Exception as exc:  # noqa: BLE001 - roll back, re-raise
                source.export(binding.service, servant)
                raise MigrationError(
                    f"rebuild failed for {public_name!r}: {exc}"
                ) from exc

            new_binding = self.names.rebind(
                public_name, target.node_id, binding.service
            )
            downtime = time.monotonic() - withdrawn_at
        except BaseException:
            # Rollback path: the servant (if withdrawn) is back on the
            # source — resume it so a failed migration leaves the
            # service *serving*, not parked behind a stale quiesce.
            if resume is not None:
                resume()
            raise
        if resume is not None:
            resume()
        report = MigrationReport(
            name=public_name,
            source=source.node_id,
            target=target.node_id,
            state_keys=len(state),
            downtime=downtime,
            binding=new_binding,
        )
        self.history.append(report)
        return report
