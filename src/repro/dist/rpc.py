"""RPC client: remote proxies over the simulated network.

A :class:`Client` owns an endpoint on the network and matches replies to
outstanding requests by message id. :class:`RemoteProxy` is the stub —
attribute access yields remote methods, so calling a remote ticket
server looks exactly like calling the local proxy (the paper's servant/
client symmetry, Section 2). Names resolve through the naming service
*per call*, giving location transparency across rebinds.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

from repro.concurrency.primitives import Future, WaitQueue
from repro.core.errors import MethodAborted, NetworkError
from repro.obs import propagation
from .message import request
from .naming import NameService
from .network import Network


class RemoteError(NetworkError):
    """A remote invocation failed on the server side."""

    def __init__(self, error_type: str, detail: str) -> None:
        self.error_type = error_type
        self.detail = detail
        super().__init__(f"{error_type}: {detail}")


class RequestTimeout(NetworkError, TimeoutError):
    """No reply within the deadline (lost message or dead node)."""


class Client:
    """A client endpoint: sends requests, demultiplexes replies."""

    def __init__(self, client_id: str, network: Network,
                 names: Optional[NameService] = None,
                 default_timeout: float = 5.0) -> None:
        self.client_id = client_id
        self.network = network
        self.names = names
        self.default_timeout = default_timeout
        self.inbox = network.register(client_id)
        self._pending: Dict[int, "Future[Message]"] = {}
        self._lock = threading.Lock()
        self._running = True
        self._thread = threading.Thread(
            target=self._reply_loop, name=f"{client_id}-replies", daemon=True
        )
        self._thread.start()
        self.calls = 0
        self.timeouts = 0

    def _reply_loop(self) -> None:
        while self._running:
            try:
                message = self.inbox.get(timeout=0.2)
            except TimeoutError:
                continue
            except WaitQueue.Closed:
                return
            if message.reply_to is None:
                continue
            with self._lock:
                future = self._pending.pop(message.reply_to, None)
            if future is not None and not future.done:
                future.set_result(message)

    # ------------------------------------------------------------------
    def call_node(self, node_id: str, service: str, method: str,
                  *args: Any, caller: Optional[str] = None,
                  timeout: Optional[float] = None, **kwargs: Any) -> Any:
        """Invoke ``service.method`` on an explicit node."""
        context = propagation.current()
        message = request(
            self.client_id, node_id, service, method,
            args=args, kwargs=kwargs, caller=caller,
            # Carry the caller's trace across the wire: the server
            # activates it around the servant call, so both sides'
            # span recorders stitch into one trace.
            trace=propagation.to_wire(context)
            if context is not None else None,
        )
        future: "Future[Message]" = Future()
        with self._lock:
            self._pending[message.msg_id] = future
        self.calls += 1
        self.network.send(message)
        effective = timeout if timeout is not None else self.default_timeout
        try:
            response = future.result(effective)
        except TimeoutError:
            with self._lock:
                self._pending.pop(message.msg_id, None)
            self.timeouts += 1
            raise RequestTimeout(
                f"no reply from {node_id}/{service}.{method} "
                f"within {effective}s"
            ) from None
        if response.kind == "error":
            error_type = response.payload.get("error_type", "RemoteError")
            detail = response.payload.get("error", "")
            if error_type == "MethodAborted":
                raise MethodAborted(method, reason=detail)
            raise RemoteError(error_type, detail)
        return response.payload.get("result")

    def call_name(self, name: str, method: str, *args: Any,
                  caller: Optional[str] = None,
                  timeout: Optional[float] = None, **kwargs: Any) -> Any:
        """Invoke through the naming service (location-transparent)."""
        if self.names is None:
            raise NetworkError("client has no naming service configured")
        binding = self.names.resolve(name)
        return self.call_node(
            binding.node_id, binding.service, method, *args,
            caller=caller, timeout=timeout, **kwargs,
        )

    def proxy(self, name: str, caller: Optional[str] = None,
              timeout: Optional[float] = None) -> "RemoteProxy":
        """A stub whose attribute calls go to the named remote service."""
        return RemoteProxy(self, name, caller=caller, timeout=timeout)

    def close(self) -> None:
        self._running = False
        self.network.unregister(self.client_id)
        self._thread.join(timeout=1.0)


class RemoteProxy:
    """Attribute-level stub: ``stub.open(ticket)`` -> remote invocation."""

    def __init__(self, client: Client, name: str,
                 caller: Optional[str] = None,
                 timeout: Optional[float] = None) -> None:
        self._client = client
        self._name = name
        self._caller = caller
        self._timeout = timeout

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def remote_method(*args: Any, **kwargs: Any) -> Any:
            return self._client.call_name(
                self._name, method, *args,
                caller=self._caller, timeout=self._timeout, **kwargs,
            )

        remote_method.__name__ = method
        return remote_method

    def __repr__(self) -> str:
        return f"<RemoteProxy {self._name} via {self._client.client_id}>"
