"""RPC client: remote proxies over the simulated network.

A :class:`Client` owns an endpoint on the network and matches replies to
outstanding requests by message id. :class:`RemoteProxy` is the stub —
attribute access yields remote methods, so calling a remote ticket
server looks exactly like calling the local proxy (the paper's servant/
client symmetry, Section 2). Names resolve through the naming service
*per call*, giving location transparency across rebinds.

Resilience (``docs/resilience.md``): a client may be armed with a
:class:`~repro.aspects.retry.RetryPolicy` (driving a backoff/jitter
retry loop around each *logical* call) and per-destination circuit
breakers (:class:`~repro.dist.resilience.DestinationBreakers`). Every
retried call carries an idempotency key so the server's dedup cache
replays the original reply instead of re-executing — retries are safe
even for mutating methods. Deadlines (absolute budgets) ride the wire
as remaining seconds and bound every wait, sleep, and server-side park.
An unarmed client (no policy, no breakers, no deadline) takes a fast
path identical to the pre-resilience call sequence.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.aspects.retry import RetryPolicy
from repro.concurrency.primitives import Future, FutureError, WaitQueue
from repro.core.errors import (
    CircuitOpen,
    ClientClosed,
    ContractViolation,
    DeadlineExceeded,
    FencedOut,
    FrameworkError,
    MethodAborted,
    NetworkError,
    Overloaded,
)
from repro.obs import propagation
from repro.obs.metrics import MetricsRegistry
from .message import Message, request
from .naming import NameService
from .network import Network
from .resilience import Deadline, DestinationBreakers

#: jitter seed for client retry loops ("RPCC"); a fixed private seed
#: keeps retry schedules replayable without touching global ``random``
_CLIENT_JITTER_SEED = 0x52504343


class RemoteError(NetworkError):
    """A remote invocation failed on the server side."""

    def __init__(self, error_type: str, detail: str) -> None:
        self.error_type = error_type
        self.detail = detail
        super().__init__(f"{error_type}: {detail}")


class RequestTimeout(NetworkError, TimeoutError):
    """No reply within the deadline (lost message or dead node)."""


#: counters every client keeps (prefix ``repro_rpc_``)
_CLIENT_COUNTERS = (
    "calls", "timeouts", "retries", "breaker_rejections",
    "deadline_expired",
)


class Client:
    """A client endpoint: sends requests, demultiplexes replies.

    ``retry_policy`` arms the retry loop for every call (overridable
    per call); ``breakers`` arms per-destination circuit breaking;
    ``registry`` supplies the metrics registry the client reports
    through (a private one is created when omitted, so the legacy
    ``client.calls`` / ``client.timeouts`` integers keep working).
    """

    def __init__(self, client_id: str, network: Network,
                 names: Optional[NameService] = None,
                 default_timeout: float = 5.0,
                 retry_policy: Optional[RetryPolicy] = None,
                 breakers: Optional[DestinationBreakers] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.client_id = client_id
        self.network = network
        self.names = names
        self.default_timeout = default_timeout
        self.retry_policy = retry_policy
        self.breakers = breakers
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = self.registry.counter_block(
            _CLIENT_COUNTERS, prefix="repro_rpc_"
        )
        # bound single-counter increment: the unarmed fast path's only
        # accounting cost, so spare it the attribute chain per call
        self._inc = self._counters.inc
        self._budget_hist = self.registry.histogram(
            "repro_rpc_remaining_budget_seconds",
            help="remaining deadline budget when each attempt is sent",
        ).labels()
        self.inbox = network.register(client_id)
        self._pending: Dict[int, "Future[Message]"] = {}
        self._lock = threading.Lock()
        self._seq = itertools.count(1)
        self._rng = random.Random(_CLIENT_JITTER_SEED)
        self._sleep: Callable[[float], None] = time.sleep
        self._running = True
        self._thread = threading.Thread(
            target=self._reply_loop, name=f"{client_id}-replies", daemon=True
        )
        self._thread.start()

    # -- legacy counter facade (exact under the striped registry) ------
    @property
    def calls(self) -> int:
        """Requests sent (every attempt counts)."""
        return int(self._counters.value("calls"))

    @property
    def timeouts(self) -> int:
        """Attempts that timed out awaiting a reply."""
        return int(self._counters.value("timeouts"))

    @property
    def retries(self) -> int:
        """Attempts that were retried after a transient failure."""
        return int(self._counters.value("retries"))

    def _reply_loop(self) -> None:
        while self._running:
            try:
                message = self.inbox.get(timeout=0.2)
            except TimeoutError:
                continue
            except WaitQueue.Closed:
                return
            if message.reply_to is None:
                continue
            with self._lock:
                future = self._pending.pop(message.reply_to, None)
            if future is not None and not future.done:
                future.set_result(message)

    # ------------------------------------------------------------------
    def call_node(self, node_id: str, service: str, method: str,
                  *args: Any, caller: Optional[str] = None,
                  timeout: Optional[float] = None,
                  deadline: "Deadline | float | None" = None,
                  idempotency_key: Optional[str] = None,
                  retry_policy: Optional[RetryPolicy] = None,
                  **kwargs: Any) -> Any:
        """Invoke ``service.method`` on an explicit node.

        ``deadline`` is an end-to-end budget for the *logical* call (a
        :class:`Deadline` or a float budget in seconds) spanning every
        retry; ``timeout`` stays the per-attempt reply wait.
        """
        policy = retry_policy if retry_policy is not None \
            else self.retry_policy
        if (policy is None and deadline is None and idempotency_key is None
                and self.breakers is None):
            # Unarmed fast path: the legacy call sequence inline, with
            # none of the armed path's deadline/key/breaker plumbing.
            context = propagation.current()
            message = request(
                self.client_id, node_id, service, method,
                args=args, kwargs=kwargs, caller=caller,
                trace=propagation.to_wire(context)
                if context is not None else None,
            )
            future: "Future[Message]" = Future()
            with self._lock:
                if not self._running:
                    raise ClientClosed(
                        f"client {self.client_id!r} is closed"
                    )
                self._pending[message.msg_id] = future
            self._inc("calls")
            self.network.send(message)
            effective = timeout if timeout is not None \
                else self.default_timeout
            try:
                response = future.result(effective)
            except TimeoutError:
                with self._lock:
                    self._pending.pop(message.msg_id, None)
                self._inc("timeouts")
                raise RequestTimeout(
                    f"no reply from {node_id}/{service}.{method} "
                    f"within {effective}s"
                ) from None
            if response.kind == "error":
                raise self._error_from_reply(method, response)
            return response.payload.get("result")
        return self._call(
            lambda: (node_id, service, None), method, args, kwargs,
            caller=caller, timeout=timeout,
            deadline=Deadline.coerce(deadline),
            idempotency_key=idempotency_key, policy=policy,
        )

    def call_name(self, name: str, method: str, *args: Any,
                  caller: Optional[str] = None,
                  timeout: Optional[float] = None,
                  deadline: "Deadline | float | None" = None,
                  idempotency_key: Optional[str] = None,
                  retry_policy: Optional[RetryPolicy] = None,
                  **kwargs: Any) -> Any:
        """Invoke through the naming service (location-transparent).

        The name resolves *per attempt*, so a retry after a
        :class:`~repro.dist.replication.FailoverMonitor` rebind follows
        the binding to the new primary instead of re-dialing the dead
        node.
        """
        if self.names is None:
            raise NetworkError("client has no naming service configured")
        policy = retry_policy if retry_policy is not None \
            else self.retry_policy
        if (policy is None and deadline is None and idempotency_key is None
                and self.breakers is None):
            binding = self.names.resolve(name)
            return self._send_once(binding.node_id, binding.service, method,
                                   args, kwargs, caller, timeout,
                                   None, None, 1, None)

        def resolve() -> Tuple[str, str, Optional[int]]:
            # The binding's epoch rides the armed request as its fence
            # (docs/recovery.md): re-resolving per attempt means a
            # retry after a failover rebind both follows the binding
            # *and* carries the new epoch — while a node exported at a
            # different epoch rejects the attempt with a retryable
            # FencedOut instead of applying a stale-bound effect.
            binding = self.names.resolve(name)
            return binding.node_id, binding.service, binding.epoch

        return self._call(
            resolve, method, args, kwargs,
            caller=caller, timeout=timeout,
            deadline=Deadline.coerce(deadline),
            idempotency_key=idempotency_key, policy=policy,
        )

    # ------------------------------------------------------------------
    def _call(self, resolve: Callable[[], Tuple[str, str, Optional[int]]],
              method: str,
              args: Tuple[Any, ...], kwargs: Dict[str, Any], *,
              caller: Optional[str], timeout: Optional[float],
              deadline: Optional[Deadline], idempotency_key: Optional[str],
              policy: Optional[RetryPolicy]) -> Any:
        """One logical call: resolve → attempt → classify → retry.

        Callers short-circuit the unarmed case straight to
        :meth:`_send_once`; this loop only runs when at least one
        resilience feature is armed.
        """
        key = idempotency_key
        if key is None and policy is not None:
            # Retries without dedup double-apply mutations; every
            # retry-armed call therefore gets a key. Client id + local
            # sequence makes keys globally unique, so server caches
            # need no per-caller namespace.
            key = f"{self.client_id}:{next(self._seq)}"

        attempt = 0
        while True:
            attempt += 1
            if deadline is not None and deadline.expired:
                self._counters.bump("deadline_expired")
                raise DeadlineExceeded(
                    f"deadline elapsed before attempt {attempt} "
                    f"of {method!r}"
                )
            node_id, service, fence = resolve()
            token = None
            if self.breakers is not None:
                try:
                    token = self.breakers.admit(node_id)
                except CircuitOpen as exc:
                    self._counters.bump("breaker_rejections")
                    # Retryable: after a failover rebind, the next
                    # resolve may point somewhere the circuit is closed.
                    self._maybe_retry(policy, attempt, exc, deadline)
                    continue
            try:
                return self._send_once(
                    node_id, service, method, args, kwargs,
                    caller, timeout, deadline, key, attempt, token,
                    fence=fence,
                )
            except (DeadlineExceeded, ClientClosed):
                raise  # budget spent / client gone: never retried
            except BaseException as exc:
                self._maybe_retry(policy, attempt, exc, deadline)

    def _maybe_retry(self, policy: Optional[RetryPolicy], attempt: int,
                     exc: BaseException,
                     deadline: Optional[Deadline]) -> None:
        """Sleep before the next attempt, or re-raise ``exc``."""
        if policy is None or not policy.should_retry(attempt, exc):
            raise exc
        delay = policy.delay_for(attempt + 1, self._rng)
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            # A shedding node's hint floors our own backoff.
            delay = max(delay, retry_after)
        if deadline is not None and delay >= deadline.remaining():
            self._counters.bump("deadline_expired")
            raise DeadlineExceeded(
                f"deadline would elapse during {delay:.3f}s backoff "
                f"before attempt {attempt + 1}"
            ) from exc
        self._counters.bump("retries")
        if delay > 0:
            self._sleep(delay)

    def _send_once(self, node_id: str, service: str, method: str,
                   args: Tuple[Any, ...], kwargs: Dict[str, Any],
                   caller: Optional[str], timeout: Optional[float],
                   deadline: Optional[Deadline], key: Optional[str],
                   attempt: int, token: Optional[Any],
                   fence: Optional[int] = None) -> Any:
        """Send one attempt and await its reply."""
        context = propagation.current()
        budget = deadline.to_wire() if deadline is not None else None
        message = request(
            self.client_id, node_id, service, method,
            args=args, kwargs=kwargs, caller=caller,
            # Carry the caller's trace across the wire: the server
            # activates it around the servant call, so both sides'
            # span recorders stitch into one trace.
            trace=propagation.to_wire(context)
            if context is not None else None,
            deadline_budget=budget, idempotency_key=key, attempt=attempt,
            fence=fence,
        )
        future: "Future[Message]" = Future()
        with self._lock:
            if not self._running:
                raise ClientClosed(f"client {self.client_id!r} is closed")
            self._pending[message.msg_id] = future
        self._counters.bump("calls")
        if budget is not None:
            self._budget_hist.observe(budget)
        try:
            self.network.send(message)
        except BaseException as exc:
            with self._lock:
                self._pending.pop(message.msg_id, None)
            if token is not None:
                DestinationBreakers.record(token, exc)
            raise
        effective = timeout if timeout is not None else self.default_timeout
        if deadline is not None:
            effective = min(effective, max(0.0, deadline.remaining()))
        try:
            response = future.result(effective)
        except TimeoutError:
            with self._lock:
                self._pending.pop(message.msg_id, None)
            self._counters.bump("timeouts")
            if deadline is not None and deadline.expired:
                exc: BaseException = DeadlineExceeded(
                    f"deadline elapsed awaiting reply from "
                    f"{node_id}/{service}.{method}"
                )
            else:
                exc = RequestTimeout(
                    f"no reply from {node_id}/{service}.{method} "
                    f"within {effective}s"
                )
            if token is not None:
                DestinationBreakers.record(token, exc)
            raise exc from None
        if token is not None:
            # Any reply — even an error — proves the node is alive.
            DestinationBreakers.record(token, None)
        if response.kind == "error":
            raise self._error_from_reply(method, response)
        return response.payload.get("result")

    @staticmethod
    def _error_from_reply(method: str, response: Message) -> FrameworkError:
        """Rehydrate a typed error from an error reply's payload."""
        payload = response.payload
        error_type = payload.get("error_type", "RemoteError")
        detail = payload.get("error", "")
        if error_type == "MethodAborted":
            return MethodAborted(method, reason=detail)
        if error_type == "DeadlineExceeded":
            return DeadlineExceeded(detail)
        if error_type == "FencedOut":
            # Retryable like its Overloaded parent: re-resolving lands
            # the retry on the current epoch holder.
            return FencedOut(
                detail,
                stale_epoch=payload.get("stale_epoch", 0),
                current_epoch=payload.get("current_epoch", 0),
                retry_after=payload.get("retry_after"),
            )
        if error_type == "Overloaded":
            return Overloaded(
                detail, retry_after=payload.get("retry_after")
            )
        if error_type == "ContractViolation":
            # Typed rehydration with the blame verdict and checkpoint
            # evidence the server attached (``wire_payload`` fields in
            # :func:`repro.dist.message.error_reply`): the caller can
            # inspect ``blame``/``evidence`` and hand the records to
            # the causal slicer exactly as a local caller would.
            return ContractViolation(
                payload.get("contract_method", method),
                clause=payload.get("contract_clause", ""),
                kind=payload.get("contract_kind", ""),
                blame=payload.get("contract_blame", "component"),
                evidence=payload.get("contract_evidence", ()),
                activation_id=payload.get("contract_activation", 0),
            )
        return RemoteError(error_type, detail)

    def shard_router(self, name: str,
                     shard_keys: Optional[Dict[str, Any]] = None,
                     registry: Optional[MetricsRegistry] = None) -> Any:
        """A :class:`~repro.dist.sharding.ShardRouter` for a sharded name.

        The sharded sibling of :meth:`proxy`: attribute calls extract a
        shard key, route through the consistent-hash ring, and dispatch
        via :meth:`call_name` — so retry/deadline/idempotency arming
        applies per shard exactly as for plain names.
        """
        from .sharding import ShardRouter

        return ShardRouter(self, name, shard_keys=shard_keys,
                           registry=registry)

    def proxy(self, name: str, caller: Optional[str] = None,
              timeout: Optional[float] = None,
              deadline: Optional[float] = None) -> "RemoteProxy":
        """A stub whose attribute calls go to the named remote service.

        ``deadline`` is a per-call budget in seconds: every logical
        call through the stub gets a fresh deadline of that budget.
        """
        return RemoteProxy(self, name, caller=caller, timeout=timeout,
                           deadline=deadline)

    def metrics(self) -> Dict[str, int]:
        """Consistent snapshot of the client's resilience counters."""
        return self._counters.as_dict()

    def close(self) -> None:
        """Shut down; in-flight callers fail fast with ClientClosed.

        Idempotent. Unregistering closes the inbox, so the reply loop
        exits on ``WaitQueue.Closed`` immediately instead of polling
        out its 0.2s timeout; pending futures are failed so callers
        blocked in ``call_node`` wake promptly rather than burning
        their full timeout.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            pending = list(self._pending.values())
            self._pending.clear()
        self.network.unregister(self.client_id)
        for future in pending:
            if not future.done:
                try:
                    future.set_exception(
                        ClientClosed(f"client {self.client_id!r} closed "
                                     f"with the call in flight")
                    )
                except FutureError:
                    pass  # lost the race to a late reply: caller has it
        self._thread.join(timeout=1.0)


class RemoteProxy:
    """Attribute-level stub: ``stub.open(ticket)`` -> remote invocation."""

    def __init__(self, client: Client, name: str,
                 caller: Optional[str] = None,
                 timeout: Optional[float] = None,
                 deadline: Optional[float] = None) -> None:
        self._client = client
        self._name = name
        self._caller = caller
        self._timeout = timeout
        self._deadline = deadline

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def remote_method(*args: Any, **kwargs: Any) -> Any:
            return self._client.call_name(
                self._name, method, *args,
                caller=self._caller, timeout=self._timeout,
                deadline=self._deadline, **kwargs,
            )

        remote_method.__name__ = method
        return remote_method

    def __repr__(self) -> str:
        return f"<RemoteProxy {self._name} via {self._client.client_id}>"
