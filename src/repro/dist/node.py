"""Nodes: hosts for component clusters on the simulated network.

A node owns an inbox on the network, a set of exported servants
(typically :class:`~repro.core.proxy.ComponentProxy` objects, so every
remote invocation flows through the full moderation stack), and a pool
of server threads draining the inbox. Requests carry a ``caller``
principal which the node attaches to the servant call — this is how the
authentication aspect sees remote identities.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List

from repro.concurrency.primitives import WaitQueue
from repro.core.errors import MethodAborted
from repro.core.proxy import ComponentProxy
from repro.obs import propagation
from .message import Message, error_reply, reply
from .network import Network


class Node:
    """One host on the simulated network."""

    def __init__(self, node_id: str, network: Network,
                 workers: int = 1) -> None:
        self.node_id = node_id
        self.network = network
        self.inbox = network.register(node_id)
        self._servants: Dict[str, Any] = {}
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._running = False
        self.requests_served = 0
        self.requests_failed = 0
        self._workers = workers

    # ------------------------------------------------------------------
    # servants
    # ------------------------------------------------------------------
    def export(self, service: str, servant: Any) -> None:
        """Expose ``servant`` under a local service name."""
        with self._lock:
            if service in self._servants:
                raise ValueError(
                    f"service {service!r} already exported on {self.node_id}"
                )
            self._servants[service] = servant

    def withdraw(self, service: str) -> Any:
        with self._lock:
            return self._servants.pop(service)

    def services(self) -> List[str]:
        with self._lock:
            return sorted(self._servants)

    @property
    def load(self) -> int:
        """Queued requests — the least-loaded balancer's signal."""
        return len(self.inbox)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def start(self) -> "Node":
        if self._running:
            return self
        self._running = True
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._serve_loop,
                name=f"{self.node_id}-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _serve_loop(self) -> None:
        while self._running:
            try:
                message = self.inbox.get(timeout=0.2)
            except TimeoutError:
                continue
            except WaitQueue.Closed:
                return
            if message.kind == "request":
                self._handle_request(message)
            # replies are routed by client stubs sharing the inbox of a
            # client endpoint; a serving node ignores stray replies.

    def _handle_request(self, message: Message) -> None:
        payload = message.payload
        service = payload.get("service", "")
        method = payload.get("method", "")
        args = tuple(payload.get("args", ()))
        kwargs = dict(payload.get("kwargs", {}))
        caller = payload.get("caller")
        # Propagated trace context (if any): activated around the
        # servant call so this node's span recorder roots the resulting
        # activation under the caller's span — one stitched trace.
        context = propagation.from_wire(payload.get("trace"))
        with self._lock:
            servant = self._servants.get(service)
        try:
            if servant is None:
                raise LookupError(
                    f"no service {service!r} on node {self.node_id}"
                )
            with propagation.activate(context):
                if isinstance(servant, ComponentProxy):
                    result = servant.call(
                        method, *args, caller=caller, **kwargs
                    )
                else:
                    target = getattr(servant, method)
                    if caller is not None and self._accepts_caller(target):
                        kwargs.setdefault("caller", caller)
                    result = target(*args, **kwargs)
            response = reply(message, self._wire_result(result))
            self.requests_served += 1
        except MethodAborted as exc:
            self.requests_failed += 1
            response = error_reply(message, exc)
        except BaseException as exc:  # noqa: BLE001 - marshalled to caller
            self.requests_failed += 1
            response = error_reply(message, exc)
        try:
            self.network.send(response)
        except Exception:  # noqa: BLE001 - reply to a vanished client
            pass

    @staticmethod
    def _accepts_caller(target: Any) -> bool:
        """Whether a servant method can receive the request principal."""
        import inspect

        try:
            parameters = inspect.signature(target).parameters
        except (TypeError, ValueError):
            return False
        return "caller" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()
        )

    @staticmethod
    def _wire_result(result: Any) -> Any:
        """Coerce servant results into wire-safe data."""
        from .message import check_wire_safe

        if check_wire_safe(result):
            return result
        if hasattr(result, "__dict__"):
            flat = {
                key: value for key, value in vars(result).items()
                if check_wire_safe(value)
            }
            flat["__type__"] = type(result).__name__
            return flat
        return repr(result)

    def stop(self) -> None:
        self._running = False
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads.clear()

    def crash(self) -> None:
        """Fail-stop: the node stops serving and the network drops traffic."""
        self.network.take_down(self.node_id)
        self.stop()

    def recover(self) -> None:
        self.network.bring_up(self.node_id)
        self.start()

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id} services={self.services()} "
            f"served={self.requests_served}>"
        )
