"""Nodes: hosts for component clusters on the simulated network.

A node owns an inbox on the network, a set of exported servants
(typically :class:`~repro.core.proxy.ComponentProxy` objects, so every
remote invocation flows through the full moderation stack), and a pool
of server threads draining the inbox. Requests carry a ``caller``
principal which the node attaches to the servant call — this is how the
authentication aspect sees remote identities.

Resilience (``docs/resilience.md``): a node rejects already-expired
requests with :class:`~repro.core.errors.DeadlineExceeded` before doing
any work, dedups retried logical calls through a bounded
:class:`~repro.dist.resilience.IdempotencyCache` (replays return the
original reply instead of re-executing — at-most-once *effects*), caps
moderator BLOCK parks at the request's remaining budget, and may bound
its inbox with a load-shedding :class:`~repro.dist.resilience.ShedInbox`
so overload degrades into typed ``Overloaded`` rejections instead of
unbounded queues.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.concurrency.primitives import WaitQueue
from repro.core.errors import (
    ActivationTimeout,
    DeadlineExceeded,
    FencedOut,
    MethodAborted,
    Overloaded,
)
from repro.core.proxy import ComponentProxy
from repro.obs import propagation
from repro.obs.metrics import MetricsRegistry
from .message import Message, error_reply, reply
from .network import Network
from .resilience import (
    Deadline,
    DedupEntry,
    IdempotencyCache,
    RequestContext,
    ShedInbox,
    serving,
)

#: counters every node keeps (prefix ``repro_node_``)
_NODE_COUNTERS = (
    "requests_served", "requests_failed", "shed", "dedup_hits",
    "deadline_expired",
)

#: counters a node keeps once recovery is armed (prefix
#: ``repro_recovery_``); registered lazily on the first
#: :meth:`Node.attach_recovery` / epoch-carrying export, so an
#: unarmed node's registry is byte-for-byte the legacy one
_RECOVERY_COUNTERS = ("journal_appends", "checkpoints",
                      "fenced_rejections")

#: how long a duplicate of a still-executing call waits for the original
#: to finish when the request carries no deadline of its own
_DEFAULT_DUP_WAIT = 5.0


class _NodeCrashed(BaseException):
    """Control-flow signal: this serving thread's node just fail-stopped.

    Deliberately a ``BaseException``: the serving paths convert every
    ``Exception`` into an error reply, and a crashed node must not
    reply — the silence *is* the failure mode the recovery plane
    exists for. Raised by :meth:`Node._crash_point`, re-raised past
    the reply machinery, and caught only in :meth:`Node._serve_loop`.
    """

    def __init__(self, spec: Any) -> None:
        self.spec = spec
        super().__init__(f"node crashed by fault plan: {spec}")


class Node:
    """One host on the simulated network.

    ``inbox_limit`` arms admission control: at most that many requests
    queue; excess is shed per ``shed_policy`` (``"reject"`` answers
    ``Overloaded`` carrying the ``retry_after`` hint; ``"drop_oldest"``
    evicts the stalest queued request in favour of the arrival).
    ``dedup_capacity`` bounds the idempotency cache; ``registry``
    supplies the metrics registry the node reports through.
    """

    def __init__(self, node_id: str, network: Network,
                 workers: int = 1,
                 inbox_limit: Optional[int] = None,
                 shed_policy: str = "reject",
                 retry_after: float = 0.05,
                 dedup_capacity: int = 1024,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.node_id = node_id
        self.network = network
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = self.registry.counter_block(
            _NODE_COUNTERS, prefix="repro_node_"
        )
        # bound single-counter increment: the unarmed fast path's only
        # accounting cost, so spare it the attribute chain per call
        self._inc = self._counters.inc
        self.retry_after = retry_after
        inbox: Optional[ShedInbox] = None
        if inbox_limit is not None:
            inbox = ShedInbox(inbox_limit, policy=shed_policy,
                              on_shed=self._on_shed)
        self.inbox = network.register(node_id, inbox=inbox)
        self.dedup = IdempotencyCache(dedup_capacity)
        self._servants: Dict[str, Any] = {}
        #: service -> attached continuation runtime
        #: (:class:`repro.core.continuation.ContinuationRuntime`).
        #: Moderated calls of such services ride the reactor: a BLOCKed
        #: activation parks as a heap continuation and the server thread
        #: returns to the inbox immediately, so the node holds orders of
        #: magnitude more in-flight requests than it has threads. Empty
        #: by default — and then every serving path is byte-for-byte the
        #: threaded one.
        self._runtimes: Dict[str, Any] = {}
        #: service -> attached recovery plan
        #: (:class:`repro.dist.recovery.RecoveryPlan`). Mutations of
        #: such services are journaled to the plan's durable store
        #: before their reply is sent; empty by default — and then
        #: every serving path is byte-for-byte the legacy one.
        self._journals: Dict[str, Any] = {}
        #: service -> fencing epoch it was exported at (the binding
        #: version the supervisor minted); armed requests carrying a
        #: different epoch are rejected with ``FencedOut``
        self._epochs: Dict[str, int] = {}
        #: set after :meth:`crash` with ``lose_memory=True``: the node
        #: can no longer prove anything about in-flight work, so
        #: :meth:`settle`'s drain barrier reports failure until
        #: :meth:`recover`
        self._crashed = False
        self._recovery_counters: Optional[Any] = None
        #: crash-site hook (:class:`repro.faults.FaultInjector`);
        #: installed via ``injector.install(node)`` like the network's
        self.fault_injector: Optional[Any] = None
        self._lock = threading.Lock()
        #: services withdrawn for a live migration: requests for them are
        #: answered with a *transient* Overloaded (+retry_after) so the
        #: client retry loop re-resolves onto the new binding, instead of
        #: the terminal LookupError an unknown service earns
        self._moving: set = set()
        #: per-service count of requests currently executing a servant
        #: call — what a migrator's drain (:meth:`settle`) waits on
        self._inflight: Dict[str, int] = {}
        self._idle = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._running = False
        self._workers = workers

    # -- legacy counter facade (exact under the striped registry) ------
    @property
    def requests_served(self) -> int:
        return int(self._counters.value("requests_served"))

    @property
    def requests_failed(self) -> int:
        return int(self._counters.value("requests_failed"))

    @property
    def requests_shed(self) -> int:
        return int(self._counters.value("shed"))

    @property
    def dedup_hits(self) -> int:
        return int(self._counters.value("dedup_hits"))

    def metrics(self) -> Dict[str, int]:
        """Consistent snapshot of the node's resilience counters."""
        return self._counters.as_dict()

    # ------------------------------------------------------------------
    # servants
    # ------------------------------------------------------------------
    def export(self, service: str, servant: Any,
               runtime: Optional[Any] = None,
               epoch: Optional[int] = None) -> None:
        """Expose ``servant`` under a local service name.

        ``runtime`` (a :class:`repro.core.continuation.ContinuationRuntime`
        attached to the servant proxy's moderator) opts the service into
        reactor serving: moderated calls are submitted as continuations
        and the reply is sent from the completion callback, so a BLOCKed
        request holds no server thread while parked. Only participating
        methods of a :class:`~repro.core.proxy.ComponentProxy` servant
        ride the reactor; everything else (plain servants, passthrough
        methods) keeps the synchronous path.

        ``epoch`` stamps the fencing epoch this export is authoritative
        for (``docs/recovery.md``): armed requests carrying a different
        epoch are rejected with a retryable
        :class:`~repro.core.errors.FencedOut`, so traffic aimed at a
        superseded binding cannot land effects here.
        """
        if runtime is not None and isinstance(servant, ComponentProxy) \
                and runtime._moderator is not servant._moderator:
            raise ValueError(
                "runtime is attached to a different moderator than "
                f"servant of {service!r}"
            )
        with self._lock:
            if service in self._servants:
                raise ValueError(
                    f"service {service!r} already exported on {self.node_id}"
                )
            if runtime is not None and service in self._journals:
                raise ValueError(
                    f"service {service!r} is journaled; journaled "
                    "services serialize mutations and cannot be "
                    "reactor-served"
                )
            self._servants[service] = servant
            if runtime is not None:
                self._runtimes[service] = runtime
            else:
                self._runtimes.pop(service, None)
            if epoch is not None:
                self._epochs[service] = int(epoch)
            self._moving.discard(service)
        if epoch is not None:
            self._recovery_metrics()

    def expect(self, service: str) -> None:
        """Open the retryable window for a service about to arrive.

        A failover rebinds the name *before* the recovered servant is
        exported here; requests racing into that gap are answered with
        the retryable moving ``Overloaded`` instead of the terminal
        ``LookupError`` an unknown service earns. No-op if the service
        is already exported.
        """
        with self._lock:
            if service not in self._servants:
                self._moving.add(service)

    def withdraw(self, service: str, moving: bool = False) -> Any:
        """Remove a servant; ``moving=True`` opens the migration window.

        While a service is marked moving (until the next :meth:`export`
        of that name, here or nowhere), requests for it are rejected
        with a retryable ``Overloaded`` instead of ``LookupError`` — the
        client's retry loop backs off, re-resolves, and lands on the
        rebound location. The pop and the mark are atomic, so no request
        can slip between them and observe a terminal error.
        """
        with self._lock:
            servant = self._servants.pop(service)
            if moving:
                self._moving.add(service)
            return servant

    def settle(self, service: str,
               timeout: Optional[float] = None) -> bool:
        """Wait until no request is executing ``service``'s servant.

        The migrator's drain barrier: after ``withdraw(moving=True)`` no
        *new* request can reach the servant, and ``settle`` returning
        True proves the in-flight ones finished — only then is captured
        state complete. False on timeout — or after a memory-losing
        crash, because an amnesiac node cannot prove anything about
        work that was in flight when it died.
        """
        with self._idle:
            drained = self._idle.wait_for(
                lambda: (self._crashed
                         or self._inflight.get(service, 0) == 0),
                timeout,
            )
            return drained and not self._crashed

    def _release(self, service: str) -> None:
        # the in-flight count was taken while fetching the servant
        with self._idle:
            count = self._inflight.get(service, 0) - 1
            if count > 0:
                self._inflight[service] = count
            else:
                self._inflight.pop(service, None)
                self._idle.notify_all()

    def _unavailable(self, service: str, moving: bool) -> BaseException:
        """The right rejection for a request naming no local servant."""
        if moving:
            return Overloaded(
                f"service {service!r} is migrating off {self.node_id}",
                retry_after=self.retry_after,
            )
        return LookupError(
            f"no service {service!r} on node {self.node_id}"
        )

    def services(self) -> List[str]:
        with self._lock:
            return sorted(self._servants)

    @property
    def load(self) -> int:
        """Queued requests — the least-loaded balancer's signal."""
        return len(self.inbox)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _on_shed(self, message: Message, action: str) -> None:
        """A request was shed at admission; tell its caller.

        Runs on the network dispatcher thread, outside the inbox lock.
        Both policies answer the shed request's caller with
        ``Overloaded`` so it wakes promptly and backs off, instead of
        burning its full timeout (under ``drop_oldest`` the *evicted*
        request is the one answered; the arrival was enqueued).
        """
        self._counters.bump("shed")
        response = error_reply(
            message,
            Overloaded(f"node {self.node_id} shed request "
                       f"({action})", retry_after=self.retry_after),
            extra={"retry_after": self.retry_after},
        )
        try:
            self.network.send(response)
        except Exception:  # noqa: BLE001 - reply to a vanished client
            pass

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def start(self) -> "Node":
        if self._running:
            return self
        self._running = True
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._serve_loop,
                name=f"{self.node_id}-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _serve_loop(self) -> None:
        while self._running:
            try:
                message = self.inbox.get(timeout=0.2)
            except TimeoutError:
                continue
            except WaitQueue.Closed:
                return
            if message.kind == "request":
                try:
                    self._handle_request(message)
                except _NodeCrashed:
                    # The fault plan fail-stopped this node mid-request:
                    # no reply, no cleanup — the thread just dies, like
                    # the process it stands in for.
                    return
            # replies are routed by client stubs sharing the inbox of a
            # client endpoint; a serving node ignores stray replies.

    def _handle_request(self, message: Message) -> None:
        payload = message.payload
        budget = payload.get("deadline_budget")
        key = payload.get("idempotency_key")

        if key is None and budget is None:
            # Unarmed request: no dedup claim, no deadline check, no
            # per-thread envelope — the legacy-shaped serving sequence,
            # inline so the fast path pays no extra call frames.
            service = payload.get("service", "")
            method = payload.get("method", "")
            if self._journals and self._journal_plan(service, method) \
                    is not None:
                # A journaled mutation must hit the durable log even
                # when the caller sent it unarmed: route it through the
                # armed handler (without envelope) so effect + append
                # stay one atomic step.
                self._handle_armed(message, payload, service, method,
                                   None, None, None)
                return
            if self._runtimes and self._serve_on_reactor(
                message, payload, service, method, None, None, None
            ):
                return
            args = tuple(payload.get("args", ()))
            kwargs = dict(payload.get("kwargs", {}))
            caller = payload.get("caller")
            context = propagation.from_wire(payload.get("trace"))
            with self._lock:
                servant = self._servants.get(service)
                if servant is None:
                    moving = service in self._moving
                else:
                    self._inflight[service] = \
                        self._inflight.get(service, 0) + 1
            try:
                if servant is None:
                    raise self._unavailable(service, moving)
                try:
                    with propagation.activate(context):
                        if isinstance(servant, ComponentProxy):
                            result = servant.call(method, *args,
                                                  caller=caller, **kwargs)
                        else:
                            target = getattr(servant, method)
                            if (caller is not None
                                    and self._accepts_caller(target)):
                                kwargs.setdefault("caller", caller)
                            result = target(*args, **kwargs)
                finally:
                    self._release(service)
                response = reply(message, self._wire_result(result))
                self._inc("requests_served")
            except BaseException as exc:  # noqa: BLE001 - to the caller
                self._inc("requests_failed")
                response = error_reply(message, exc)
            try:
                self.network.send(response)
            except Exception:  # noqa: BLE001 - reply to a vanished client
                pass
            return

        service = payload.get("service", "")
        method = payload.get("method", "")

        fence = payload.get("fence")
        if fence is not None and self._epochs:
            local = self._epochs.get(service)
            if local is not None and fence != local:
                # The caller resolved a binding whose epoch this export
                # does not hold: either we are the zombie (stale local
                # epoch) or the caller is (stale binding). Rejecting is
                # retryable — the caller re-resolves onto the current
                # epoch holder — and happens before the dedup claim so
                # a fenced request can never pin a dedup slot here.
                self._counters.bump("requests_failed")
                self._recovery_metrics().bump("fenced_rejections")
                self._send_response(error_reply(message, FencedOut(
                    f"request for {service!r} carries epoch {fence}; "
                    f"node {self.node_id} holds epoch {local}",
                    stale_epoch=int(fence), current_epoch=local,
                    retry_after=self.retry_after,
                )))
                return

        deadline = (Deadline.from_wire(budget, anchor=message.sent_at)
                    if budget is not None else None)

        # Reject dead work before touching the servant: an expired
        # request's caller has already given up, so executing it can
        # only waste capacity (and double-apply if the caller retried).
        if deadline is not None and deadline.expired:
            self._counters.bump("requests_failed", "deadline_expired")
            self._send_response(error_reply(message, DeadlineExceeded(
                f"request {service}.{method} expired before execution"
            )))
            return

        entry: Optional[DedupEntry] = None
        if key is not None:
            entry = self._claim(message, key, deadline)
            if entry is None:
                return  # duplicate: a cached/parked reply was sent

        self._handle_armed(message, payload, service, method,
                           deadline, key, entry)

    def _handle_armed(self, message: Message, payload: Dict[str, Any],
                      service: str, method: str,
                      deadline: Optional[Deadline], key: Optional[str],
                      entry: Optional[DedupEntry]) -> None:
        """Serve a claimed request under its resilience envelope."""
        if self._runtimes and self._serve_on_reactor(
            message, payload, service, method, deadline, key, entry
        ):
            return
        plan = self._journal_plan(service, method) if self._journals \
            else None
        injector = self.fault_injector
        try:
            if injector is not None:
                self._crash_point(injector, "serve")
            if plan is None:
                result = self._invoke(payload, deadline, key)
                if injector is not None:
                    self._crash_point(injector, "applied")
                response = reply(message, self._wire_result(result))
            else:
                # Effect and journal append are one atomic step under
                # the plan lock: a concurrent checkpoint can therefore
                # never capture an effect whose journal record lands
                # after the recorded sequence (which would double-apply
                # it on recovery).
                with plan.lock:
                    result = self._invoke(payload, deadline, key)
                    if injector is not None:
                        self._crash_point(injector, "applied")
                    response = reply(message, self._wire_result(result))
                    self._journal_effect(plan, service, payload, key,
                                         response)
                if injector is not None:
                    self._crash_point(injector, "journaled")
            self._counters.bump("requests_served")
            if entry is not None:
                # Cache the reply: a retry of this logical call replays
                # it instead of re-executing (at-most-once effects).
                self.dedup.finish(key, response.kind, response.payload)
        except _NodeCrashed:
            raise
        except BaseException as exc:  # noqa: BLE001 - marshalled to caller
            if (isinstance(exc, ActivationTimeout) and deadline is not None
                    and deadline.expired):
                # The park was cut short by the request's budget, not
                # the local timeout: surface the end-to-end semantics.
                exc = DeadlineExceeded(
                    f"deadline elapsed while {service}.{method} was "
                    f"blocked in moderation"
                )
            counted = ["requests_failed"]
            if isinstance(exc, DeadlineExceeded):
                counted.append("deadline_expired")
            self._counters.bump(*counted)
            response = error_reply(message, exc)
            if entry is not None:
                if self._not_applied(exc):
                    # The attempt provably never ran the method body:
                    # drop the slot so a retry may execute it.
                    self.dedup.abandon(key)
                else:
                    # The body ran (or may have): pin this outcome.
                    self.dedup.finish(key, response.kind, response.payload)
        self._send_response(response)
        if injector is not None:
            self._crash_point(injector, "replied")

    def _invoke(self, payload: Dict[str, Any],
                deadline: Optional[Deadline],
                key: Optional[str]) -> Any:
        """Execute the servant call a request payload describes."""
        service = payload.get("service", "")
        method = payload.get("method", "")
        args = tuple(payload.get("args", ()))
        kwargs = dict(payload.get("kwargs", {}))
        caller = payload.get("caller")
        # Propagated trace context (if any): activated around the
        # servant call so this node's span recorder roots the resulting
        # activation under the caller's span — one stitched trace.
        context = propagation.from_wire(payload.get("trace"))
        with self._lock:
            servant = self._servants.get(service)
            if servant is None:
                moving = service in self._moving
            else:
                self._inflight[service] = \
                    self._inflight.get(service, 0) + 1
        if servant is None:
            raise self._unavailable(service, moving)
        # Ambient per-thread envelope: replication forwarders pick the
        # key/deadline up from here so a forwarded apply shares the
        # original logical call's identity and budget.
        request_context = RequestContext(
            idempotency_key=key, deadline=deadline, caller=caller
        )
        try:
            with propagation.activate(context), serving(request_context):
                return self._dispatch(servant, method, args, kwargs,
                                      caller, deadline)
        finally:
            self._release(service)

    def _dispatch(self, servant: Any, method: str, args: tuple,
                  kwargs: Dict[str, Any], caller: Optional[str],
                  deadline: Optional[Deadline]) -> Any:
        if isinstance(servant, ComponentProxy):
            if deadline is not None:
                # Moderator BLOCK parks are capped at the budget.
                return servant.call(
                    method, *args, caller=caller,
                    deadline=deadline, **kwargs
                )
            return servant.call(method, *args, caller=caller, **kwargs)
        target = getattr(servant, method)
        if caller is not None and self._accepts_caller(target):
            kwargs.setdefault("caller", caller)
        return target(*args, **kwargs)

    # ------------------------------------------------------------------
    # reactor serving (continuation runtime)
    # ------------------------------------------------------------------
    def _serve_on_reactor(self, message: Message, payload: Dict[str, Any],
                          service: str, method: str,
                          deadline: Optional[Deadline],
                          key: Optional[str],
                          entry: Optional[DedupEntry]) -> bool:
        """Submit a moderated call to the service's continuation runtime.

        Returns True when the request was taken (the reply will be sent
        from the completion callback); False when this request must use
        the synchronous path — no runtime for the service, a non-proxy
        servant, a passthrough method, or a closed runtime. The
        in-flight count is taken here and released in the callback, so
        :meth:`settle`'s drain barrier covers parked continuations too.
        """
        runtime = self._runtimes.get(service)
        if runtime is None:
            return False
        args = tuple(payload.get("args", ()))
        kwargs = dict(payload.get("kwargs", {}))
        caller = payload.get("caller")
        context = propagation.from_wire(payload.get("trace"))
        with self._lock:
            servant = self._servants.get(service)
            if not isinstance(servant, ComponentProxy) \
                    or not servant.is_participating(method):
                return False
            self._inflight[service] = self._inflight.get(service, 0) + 1
        if caller is None:
            caller = servant._caller
        request_context = (
            RequestContext(idempotency_key=key, deadline=deadline,
                           caller=caller)
            if key is not None or deadline is not None else None
        )

        def wrap() -> Any:
            # Re-established around every segment run: the worker that
            # resumes a parked suffix is not the thread that started the
            # activation, and both trace propagation and the serving
            # envelope are thread-local ambience.
            return self._reactor_ambience(context, request_context)

        try:
            future = runtime.submit(
                method, getattr(servant._component, method), *args,
                component=servant._component, caller=caller,
                timeout=servant._timeout, deadline=deadline, wrap=wrap,
                **kwargs,
            )
        except RuntimeError:
            # Runtime closed under us: undo the claim, serve threaded.
            self._release(service)
            return False
        future.add_callback(
            lambda fut: self._finish_reactor(
                fut, message, service, method, deadline, key, entry
            )
        )
        return True

    @contextmanager
    def _reactor_ambience(
        self, context: Optional[Any],
        request_context: Optional[RequestContext],
    ) -> Iterator[None]:
        """Per-segment thread-local envelope for reactor-served calls."""
        with propagation.activate(context):
            if request_context is None:
                yield
            else:
                with serving(request_context):
                    yield

    def _finish_reactor(self, future: Any, message: Message, service: str,
                        method: str, deadline: Optional[Deadline],
                        key: Optional[str],
                        entry: Optional[DedupEntry]) -> None:
        """Completion callback: reply exactly as the threaded path would.

        Mirrors the unarmed inline path (no dedup, plain counters) and
        :meth:`_handle_armed` (deadline mapping, dedup finish/abandon)
        depending on how the request arrived.
        """
        self._release(service)
        exc = future.exception()
        if exc is None:
            response = reply(message, self._wire_result(future.result()))
            self._inc("requests_served")
            if entry is not None:
                self.dedup.finish(key, response.kind, response.payload)
        else:
            if (isinstance(exc, ActivationTimeout) and deadline is not None
                    and deadline.expired):
                # The park was cut short by the request's budget, not
                # the local timeout: surface the end-to-end semantics.
                exc = DeadlineExceeded(
                    f"deadline elapsed while {service}.{method} was "
                    f"blocked in moderation"
                )
            counted = ["requests_failed"]
            if isinstance(exc, DeadlineExceeded):
                counted.append("deadline_expired")
            self._counters.bump(*counted)
            response = error_reply(message, exc)
            if entry is not None:
                if self._not_applied(exc):
                    self.dedup.abandon(key)
                else:
                    self.dedup.finish(key, response.kind, response.payload)
        self._send_response(response)

    def _claim(self, message: Message, key: str,
               deadline: Optional[Deadline]) -> Optional[DedupEntry]:
        """Claim ``key`` for execution, or answer the duplicate.

        Returns the owned entry when this delivery should execute the
        call; ``None`` when a reply has already been sent (cached
        replay, parked-then-replayed, or gave up waiting).
        """
        while True:
            state, entry = self.dedup.begin(key)
            if state == "new":
                return entry
            self._counters.bump("dedup_hits")
            if state == "done":
                self._send_response(self._replay(message, entry))
                return None
            # The original delivery is still executing: park this
            # duplicate until it finishes (bounded by the budget) and
            # replay its reply — never run the body twice concurrently.
            budget = (deadline.remaining() if deadline is not None
                      else _DEFAULT_DUP_WAIT)
            if budget > 0:
                entry.wait(budget)
            if entry.done and entry.payload is not None:
                self._send_response(self._replay(message, entry))
                return None
            if not entry.done:
                self._counters.bump("requests_failed")
                self._send_response(error_reply(message, TimeoutError(
                    f"duplicate of in-flight call {key!r} gave up "
                    f"waiting for the original to finish"
                )))
                return None
            # Abandoned (completed without a payload): the original
            # attempt provably did not apply — loop and re-claim.

    def _replay(self, message: Message, entry: DedupEntry) -> Message:
        """The cached reply, re-addressed to this duplicate's caller."""
        return Message(
            source=self.node_id, dest=message.source,
            kind=entry.kind or "reply", payload=dict(entry.payload or {}),
            reply_to=message.msg_id,
        )

    @staticmethod
    def _not_applied(exc: BaseException) -> bool:
        """Whether a failure proves the method body never ran.

        ABORTed activations, timed-out BLOCK parks, deadline
        rejections, missing servants, and admission rejections
        (``Overloaded`` — including the migration window's moving
        answer) all fail *before* invocation — a retry may safely
        re-execute. Anything else may have applied side effects, so the
        error is pinned in the dedup cache and a retry replays it
        instead of re-running the body.
        """
        return isinstance(
            exc,
            (MethodAborted, ActivationTimeout, DeadlineExceeded,
             LookupError, Overloaded),
        )

    def _send_response(self, response: Message) -> None:
        try:
            self.network.send(response)
        except Exception:  # noqa: BLE001 - reply to a vanished client
            pass

    @staticmethod
    def _accepts_caller(target: Any) -> bool:
        """Whether a servant method can receive the request principal."""
        import inspect

        try:
            parameters = inspect.signature(target).parameters
        except (TypeError, ValueError):
            return False
        return "caller" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()
        )

    @staticmethod
    def _wire_result(result: Any) -> Any:
        """Coerce servant results into wire-safe data."""
        from .message import check_wire_safe

        if check_wire_safe(result):
            return result
        if hasattr(result, "__dict__"):
            flat = {
                key: value for key, value in vars(result).items()
                if check_wire_safe(value)
            }
            flat["__type__"] = type(result).__name__
            return flat
        return repr(result)

    # ------------------------------------------------------------------
    # recovery plane (docs/recovery.md)
    # ------------------------------------------------------------------
    def attach_recovery(self, service: str, plan: Any) -> None:
        """Arm the durable effect journal for a service.

        ``plan`` is a :class:`repro.dist.recovery.RecoveryPlan`. From
        the next request on, every call of a method the plan declares
        mutating is journaled to the plan's store *before* its reply is
        sent — the write-ahead guarantee recovery's exactly-once replay
        rests on. With no plans attached every serving path stays
        byte-for-byte the legacy one.
        """
        with self._lock:
            if service in self._runtimes:
                raise ValueError(
                    f"service {service!r} rides a continuation runtime; "
                    "journaled services serialize mutations and cannot "
                    "be reactor-served"
                )
            self._journals[service] = plan
        self._recovery_metrics()

    def detach_recovery(self, service: str) -> Optional[Any]:
        """Disarm journaling for a service; returns the plan, if any."""
        with self._lock:
            return self._journals.pop(service, None)

    def checkpoint(self, service: str) -> int:
        """Durably checkpoint a journaled service's state now.

        Captures the servant state plus the sharding handoff bundle
        (completed idempotency entries, optional aspect state) under
        the plan lock — so the recorded journal sequence is exactly the
        last effect the captured state contains — then prunes the
        journal up to it. Returns the checkpointed sequence.
        """
        plan = self._journals.get(service)
        if plan is None:
            raise KeyError(
                f"service {service!r} has no recovery plan on "
                f"{self.node_id}"
            )
        with self._lock:
            servant = self._servants.get(service)
        if servant is None:
            raise KeyError(
                f"no service {service!r} on node {self.node_id}"
            )
        with plan.lock:
            return self._checkpoint_locked(plan, service, servant)

    def _checkpoint_locked(self, plan: Any, service: str,
                           servant: Any = None) -> int:
        # under plan.lock (never under self._lock: lock order is
        # plan.lock -> self._lock)
        from .sharding import HANDOFF_KEY

        if servant is None:
            with self._lock:
                servant = self._servants.get(service)
            if servant is None:  # withdrawn mid-flight: nothing to save
                return plan.store.last_seq(service)
        state = dict(plan.capture(servant))
        handoff: Dict[str, Any] = {
            "dedup": self.dedup.export_completed(),
        }
        if plan.aspect_capture is not None:
            handoff["aspects"] = plan.aspect_capture(servant)
        state[HANDOFF_KEY] = handoff
        epoch = self._epochs.get(service, 0)
        seq = plan.store.last_seq(service)
        plan.store.save_checkpoint(
            service, {"state": state, "seq": seq, "epoch": epoch},
            epoch=epoch,
        )
        plan.store.prune(service, seq)
        self._recovery_metrics().bump("checkpoints")
        return seq

    def _journal_plan(self, service: str, method: str) -> Optional[Any]:
        """The recovery plan journaling this call, or None."""
        plan = self._journals.get(service)
        if plan is None or not plan.journals(method):
            return None
        return plan

    def _journal_effect(self, plan: Any, service: str,
                        payload: Dict[str, Any], key: Optional[str],
                        response: Message) -> None:
        # under plan.lock, after the servant applied the effect
        record = {
            "method": payload.get("method", ""),
            "args": list(payload.get("args", ())),
            "kwargs": dict(payload.get("kwargs", {})),
            "caller": payload.get("caller"),
            "key": key,
            "reply": {"kind": response.kind,
                      "payload": dict(response.payload)},
        }
        epoch = self._epochs.get(service, 0)
        try:
            plan.store.append(service, record, epoch=epoch)
        except FencedOut:
            # The durable plane refused our epoch: a replacement was
            # promoted while we served. The local apply mutated doomed
            # state only (this node's memory is no longer
            # authoritative); step aside so retries re-resolve onto
            # the current holder, where dedup/journal govern.
            self._recovery_metrics().bump("fenced_rejections")
            try:
                self.withdraw(service, moving=True)
            except KeyError:
                pass
            raise
        self._recovery_metrics().bump("journal_appends")
        plan.appended += 1
        if plan.checkpoint_every and \
                plan.appended % plan.checkpoint_every == 0:
            self._checkpoint_locked(plan, service)

    def _recovery_metrics(self) -> Any:
        if self._recovery_counters is None:
            self._recovery_counters = self.registry.counter_block(
                _RECOVERY_COUNTERS, prefix="repro_recovery_"
            )
        return self._recovery_counters

    def _crash_point(self, injector: Any, point: str) -> None:
        """Consult the fault plan at one serving checkpoint.

        ``raise`` fail-stops the node here (volatile state discarded,
        network traffic dropped); ``delay`` widens the race window;
        ``skip`` is a no-op at crash sites.
        """
        spec = injector.crash_due(self.node_id, point)
        if spec is None:
            return
        if spec.action == "delay":
            injector._sleep(spec.arg)  # noqa: SLF001 - shared clock hook
            return
        if spec.action == "skip":
            return
        self._crash_now()
        raise _NodeCrashed(spec)

    def _crash_now(self) -> None:
        # Fail-stop from a serving thread: no joins (we may *be* a
        # serving thread), just drop off the network, stop the loops,
        # and lose the memory a real process death would lose.
        self.network.take_down(self.node_id)
        self._running = False
        self._lose_memory()

    def _lose_memory(self) -> None:
        """Discard every piece of volatile state, as process death does."""
        with self._lock:
            self._servants.clear()
            self._runtimes.clear()
            self._journals.clear()
            self._epochs.clear()
            self._moving.clear()
            self._inflight.clear()
            self._crashed = True
        # a fresh, empty cache: the acknowledged replies the old one
        # held survive only via the journal/checkpoint handoff
        self.dedup = IdempotencyCache(self.dedup.capacity)
        with self._idle:
            self._idle.notify_all()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self, timeout: float = 1.0) -> List[threading.Thread]:
        """Stop serving; returns the threads still alive afterwards.

        Like ``WorkerPool.shutdown``, stragglers (serve threads wedged
        in a servant call past ``timeout``) are *surfaced*, not
        silently dropped: the caller decides whether a non-empty list
        is a leak to fail on. The calling thread itself is reported as
        a straggler rather than joined (a servant stopping its own
        node must not deadlock).
        """
        self._running = False
        current = threading.current_thread()
        stragglers: List[threading.Thread] = []
        for thread in self._threads:
            if thread is current:
                stragglers.append(thread)
                continue
            thread.join(timeout=timeout)
            if thread.is_alive():
                stragglers.append(thread)
        self._threads.clear()
        return stragglers

    def crash(self, lose_memory: bool = False) -> List[threading.Thread]:
        """Fail-stop: the node stops serving and the network drops traffic.

        ``lose_memory=True`` is a *real* process crash: servants,
        attached runtimes and journals, fencing epochs, the idempotency
        cache, and the migration bookkeeping are all discarded — only
        what reached a durable :class:`~repro.dist.recovery`
        store survives. The default keeps memory (partition + pause),
        which models a network-isolated or suspended process that may
        come back as a zombie. Returns :meth:`stop`'s stragglers.
        """
        self.network.take_down(self.node_id)
        stragglers = self.stop()
        if lose_memory:
            self._lose_memory()
        return stragglers

    def recover(self) -> None:
        self._crashed = False
        self.network.bring_up(self.node_id)
        self.start()

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id} services={self.services()} "
            f"served={self.requests_served}>"
        )
