"""Nodes: hosts for component clusters on the simulated network.

A node owns an inbox on the network, a set of exported servants
(typically :class:`~repro.core.proxy.ComponentProxy` objects, so every
remote invocation flows through the full moderation stack), and a pool
of server threads draining the inbox. Requests carry a ``caller``
principal which the node attaches to the servant call — this is how the
authentication aspect sees remote identities.

Resilience (``docs/resilience.md``): a node rejects already-expired
requests with :class:`~repro.core.errors.DeadlineExceeded` before doing
any work, dedups retried logical calls through a bounded
:class:`~repro.dist.resilience.IdempotencyCache` (replays return the
original reply instead of re-executing — at-most-once *effects*), caps
moderator BLOCK parks at the request's remaining budget, and may bound
its inbox with a load-shedding :class:`~repro.dist.resilience.ShedInbox`
so overload degrades into typed ``Overloaded`` rejections instead of
unbounded queues.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.concurrency.primitives import WaitQueue
from repro.core.errors import (
    ActivationTimeout,
    DeadlineExceeded,
    MethodAborted,
    Overloaded,
)
from repro.core.proxy import ComponentProxy
from repro.obs import propagation
from repro.obs.metrics import MetricsRegistry
from .message import Message, error_reply, reply
from .network import Network
from .resilience import (
    Deadline,
    DedupEntry,
    IdempotencyCache,
    RequestContext,
    ShedInbox,
    serving,
)

#: counters every node keeps (prefix ``repro_node_``)
_NODE_COUNTERS = (
    "requests_served", "requests_failed", "shed", "dedup_hits",
    "deadline_expired",
)

#: how long a duplicate of a still-executing call waits for the original
#: to finish when the request carries no deadline of its own
_DEFAULT_DUP_WAIT = 5.0


class Node:
    """One host on the simulated network.

    ``inbox_limit`` arms admission control: at most that many requests
    queue; excess is shed per ``shed_policy`` (``"reject"`` answers
    ``Overloaded`` carrying the ``retry_after`` hint; ``"drop_oldest"``
    evicts the stalest queued request in favour of the arrival).
    ``dedup_capacity`` bounds the idempotency cache; ``registry``
    supplies the metrics registry the node reports through.
    """

    def __init__(self, node_id: str, network: Network,
                 workers: int = 1,
                 inbox_limit: Optional[int] = None,
                 shed_policy: str = "reject",
                 retry_after: float = 0.05,
                 dedup_capacity: int = 1024,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.node_id = node_id
        self.network = network
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = self.registry.counter_block(
            _NODE_COUNTERS, prefix="repro_node_"
        )
        # bound single-counter increment: the unarmed fast path's only
        # accounting cost, so spare it the attribute chain per call
        self._inc = self._counters.inc
        self.retry_after = retry_after
        inbox: Optional[ShedInbox] = None
        if inbox_limit is not None:
            inbox = ShedInbox(inbox_limit, policy=shed_policy,
                              on_shed=self._on_shed)
        self.inbox = network.register(node_id, inbox=inbox)
        self.dedup = IdempotencyCache(dedup_capacity)
        self._servants: Dict[str, Any] = {}
        #: service -> attached continuation runtime
        #: (:class:`repro.core.continuation.ContinuationRuntime`).
        #: Moderated calls of such services ride the reactor: a BLOCKed
        #: activation parks as a heap continuation and the server thread
        #: returns to the inbox immediately, so the node holds orders of
        #: magnitude more in-flight requests than it has threads. Empty
        #: by default — and then every serving path is byte-for-byte the
        #: threaded one.
        self._runtimes: Dict[str, Any] = {}
        self._lock = threading.Lock()
        #: services withdrawn for a live migration: requests for them are
        #: answered with a *transient* Overloaded (+retry_after) so the
        #: client retry loop re-resolves onto the new binding, instead of
        #: the terminal LookupError an unknown service earns
        self._moving: set = set()
        #: per-service count of requests currently executing a servant
        #: call — what a migrator's drain (:meth:`settle`) waits on
        self._inflight: Dict[str, int] = {}
        self._idle = threading.Condition(self._lock)
        self._threads: List[threading.Thread] = []
        self._running = False
        self._workers = workers

    # -- legacy counter facade (exact under the striped registry) ------
    @property
    def requests_served(self) -> int:
        return int(self._counters.value("requests_served"))

    @property
    def requests_failed(self) -> int:
        return int(self._counters.value("requests_failed"))

    @property
    def requests_shed(self) -> int:
        return int(self._counters.value("shed"))

    @property
    def dedup_hits(self) -> int:
        return int(self._counters.value("dedup_hits"))

    def metrics(self) -> Dict[str, int]:
        """Consistent snapshot of the node's resilience counters."""
        return self._counters.as_dict()

    # ------------------------------------------------------------------
    # servants
    # ------------------------------------------------------------------
    def export(self, service: str, servant: Any,
               runtime: Optional[Any] = None) -> None:
        """Expose ``servant`` under a local service name.

        ``runtime`` (a :class:`repro.core.continuation.ContinuationRuntime`
        attached to the servant proxy's moderator) opts the service into
        reactor serving: moderated calls are submitted as continuations
        and the reply is sent from the completion callback, so a BLOCKed
        request holds no server thread while parked. Only participating
        methods of a :class:`~repro.core.proxy.ComponentProxy` servant
        ride the reactor; everything else (plain servants, passthrough
        methods) keeps the synchronous path.
        """
        if runtime is not None and isinstance(servant, ComponentProxy) \
                and runtime._moderator is not servant._moderator:
            raise ValueError(
                "runtime is attached to a different moderator than "
                f"servant of {service!r}"
            )
        with self._lock:
            if service in self._servants:
                raise ValueError(
                    f"service {service!r} already exported on {self.node_id}"
                )
            self._servants[service] = servant
            if runtime is not None:
                self._runtimes[service] = runtime
            else:
                self._runtimes.pop(service, None)
            self._moving.discard(service)

    def withdraw(self, service: str, moving: bool = False) -> Any:
        """Remove a servant; ``moving=True`` opens the migration window.

        While a service is marked moving (until the next :meth:`export`
        of that name, here or nowhere), requests for it are rejected
        with a retryable ``Overloaded`` instead of ``LookupError`` — the
        client's retry loop backs off, re-resolves, and lands on the
        rebound location. The pop and the mark are atomic, so no request
        can slip between them and observe a terminal error.
        """
        with self._lock:
            servant = self._servants.pop(service)
            if moving:
                self._moving.add(service)
            return servant

    def settle(self, service: str,
               timeout: Optional[float] = None) -> bool:
        """Wait until no request is executing ``service``'s servant.

        The migrator's drain barrier: after ``withdraw(moving=True)`` no
        *new* request can reach the servant, and ``settle`` returning
        True proves the in-flight ones finished — only then is captured
        state complete. False on timeout.
        """
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight.get(service, 0) == 0, timeout
            )

    def _release(self, service: str) -> None:
        # the in-flight count was taken while fetching the servant
        with self._idle:
            count = self._inflight.get(service, 0) - 1
            if count > 0:
                self._inflight[service] = count
            else:
                self._inflight.pop(service, None)
                self._idle.notify_all()

    def _unavailable(self, service: str, moving: bool) -> BaseException:
        """The right rejection for a request naming no local servant."""
        if moving:
            return Overloaded(
                f"service {service!r} is migrating off {self.node_id}",
                retry_after=self.retry_after,
            )
        return LookupError(
            f"no service {service!r} on node {self.node_id}"
        )

    def services(self) -> List[str]:
        with self._lock:
            return sorted(self._servants)

    @property
    def load(self) -> int:
        """Queued requests — the least-loaded balancer's signal."""
        return len(self.inbox)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _on_shed(self, message: Message, action: str) -> None:
        """A request was shed at admission; tell its caller.

        Runs on the network dispatcher thread, outside the inbox lock.
        Both policies answer the shed request's caller with
        ``Overloaded`` so it wakes promptly and backs off, instead of
        burning its full timeout (under ``drop_oldest`` the *evicted*
        request is the one answered; the arrival was enqueued).
        """
        self._counters.bump("shed")
        response = error_reply(
            message,
            Overloaded(f"node {self.node_id} shed request "
                       f"({action})", retry_after=self.retry_after),
            extra={"retry_after": self.retry_after},
        )
        try:
            self.network.send(response)
        except Exception:  # noqa: BLE001 - reply to a vanished client
            pass

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def start(self) -> "Node":
        if self._running:
            return self
        self._running = True
        for index in range(self._workers):
            thread = threading.Thread(
                target=self._serve_loop,
                name=f"{self.node_id}-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def _serve_loop(self) -> None:
        while self._running:
            try:
                message = self.inbox.get(timeout=0.2)
            except TimeoutError:
                continue
            except WaitQueue.Closed:
                return
            if message.kind == "request":
                self._handle_request(message)
            # replies are routed by client stubs sharing the inbox of a
            # client endpoint; a serving node ignores stray replies.

    def _handle_request(self, message: Message) -> None:
        payload = message.payload
        budget = payload.get("deadline_budget")
        key = payload.get("idempotency_key")

        if key is None and budget is None:
            # Unarmed request: no dedup claim, no deadline check, no
            # per-thread envelope — the legacy-shaped serving sequence,
            # inline so the fast path pays no extra call frames.
            service = payload.get("service", "")
            method = payload.get("method", "")
            if self._runtimes and self._serve_on_reactor(
                message, payload, service, method, None, None, None
            ):
                return
            args = tuple(payload.get("args", ()))
            kwargs = dict(payload.get("kwargs", {}))
            caller = payload.get("caller")
            context = propagation.from_wire(payload.get("trace"))
            with self._lock:
                servant = self._servants.get(service)
                if servant is None:
                    moving = service in self._moving
                else:
                    self._inflight[service] = \
                        self._inflight.get(service, 0) + 1
            try:
                if servant is None:
                    raise self._unavailable(service, moving)
                try:
                    with propagation.activate(context):
                        if isinstance(servant, ComponentProxy):
                            result = servant.call(method, *args,
                                                  caller=caller, **kwargs)
                        else:
                            target = getattr(servant, method)
                            if (caller is not None
                                    and self._accepts_caller(target)):
                                kwargs.setdefault("caller", caller)
                            result = target(*args, **kwargs)
                finally:
                    self._release(service)
                response = reply(message, self._wire_result(result))
                self._inc("requests_served")
            except BaseException as exc:  # noqa: BLE001 - to the caller
                self._inc("requests_failed")
                response = error_reply(message, exc)
            try:
                self.network.send(response)
            except Exception:  # noqa: BLE001 - reply to a vanished client
                pass
            return

        service = payload.get("service", "")
        method = payload.get("method", "")
        deadline = (Deadline.from_wire(budget, anchor=message.sent_at)
                    if budget is not None else None)

        # Reject dead work before touching the servant: an expired
        # request's caller has already given up, so executing it can
        # only waste capacity (and double-apply if the caller retried).
        if deadline is not None and deadline.expired:
            self._counters.bump("requests_failed", "deadline_expired")
            self._send_response(error_reply(message, DeadlineExceeded(
                f"request {service}.{method} expired before execution"
            )))
            return

        entry: Optional[DedupEntry] = None
        if key is not None:
            entry = self._claim(message, key, deadline)
            if entry is None:
                return  # duplicate: a cached/parked reply was sent

        self._handle_armed(message, payload, service, method,
                           deadline, key, entry)

    def _handle_armed(self, message: Message, payload: Dict[str, Any],
                      service: str, method: str,
                      deadline: Optional[Deadline], key: Optional[str],
                      entry: Optional[DedupEntry]) -> None:
        """Serve a claimed request under its resilience envelope."""
        if self._runtimes and self._serve_on_reactor(
            message, payload, service, method, deadline, key, entry
        ):
            return
        try:
            result = self._invoke(payload, deadline, key)
            response = reply(message, self._wire_result(result))
            self._counters.bump("requests_served")
            if entry is not None:
                # Cache the reply: a retry of this logical call replays
                # it instead of re-executing (at-most-once effects).
                self.dedup.finish(key, response.kind, response.payload)
        except BaseException as exc:  # noqa: BLE001 - marshalled to caller
            if (isinstance(exc, ActivationTimeout) and deadline is not None
                    and deadline.expired):
                # The park was cut short by the request's budget, not
                # the local timeout: surface the end-to-end semantics.
                exc = DeadlineExceeded(
                    f"deadline elapsed while {service}.{method} was "
                    f"blocked in moderation"
                )
            counted = ["requests_failed"]
            if isinstance(exc, DeadlineExceeded):
                counted.append("deadline_expired")
            self._counters.bump(*counted)
            response = error_reply(message, exc)
            if entry is not None:
                if self._not_applied(exc):
                    # The attempt provably never ran the method body:
                    # drop the slot so a retry may execute it.
                    self.dedup.abandon(key)
                else:
                    # The body ran (or may have): pin this outcome.
                    self.dedup.finish(key, response.kind, response.payload)
        self._send_response(response)

    def _invoke(self, payload: Dict[str, Any],
                deadline: Optional[Deadline],
                key: Optional[str]) -> Any:
        """Execute the servant call a request payload describes."""
        service = payload.get("service", "")
        method = payload.get("method", "")
        args = tuple(payload.get("args", ()))
        kwargs = dict(payload.get("kwargs", {}))
        caller = payload.get("caller")
        # Propagated trace context (if any): activated around the
        # servant call so this node's span recorder roots the resulting
        # activation under the caller's span — one stitched trace.
        context = propagation.from_wire(payload.get("trace"))
        with self._lock:
            servant = self._servants.get(service)
            if servant is None:
                moving = service in self._moving
            else:
                self._inflight[service] = \
                    self._inflight.get(service, 0) + 1
        if servant is None:
            raise self._unavailable(service, moving)
        # Ambient per-thread envelope: replication forwarders pick the
        # key/deadline up from here so a forwarded apply shares the
        # original logical call's identity and budget.
        request_context = RequestContext(
            idempotency_key=key, deadline=deadline, caller=caller
        )
        try:
            with propagation.activate(context), serving(request_context):
                return self._dispatch(servant, method, args, kwargs,
                                      caller, deadline)
        finally:
            self._release(service)

    def _dispatch(self, servant: Any, method: str, args: tuple,
                  kwargs: Dict[str, Any], caller: Optional[str],
                  deadline: Optional[Deadline]) -> Any:
        if isinstance(servant, ComponentProxy):
            if deadline is not None:
                # Moderator BLOCK parks are capped at the budget.
                return servant.call(
                    method, *args, caller=caller,
                    deadline=deadline, **kwargs
                )
            return servant.call(method, *args, caller=caller, **kwargs)
        target = getattr(servant, method)
        if caller is not None and self._accepts_caller(target):
            kwargs.setdefault("caller", caller)
        return target(*args, **kwargs)

    # ------------------------------------------------------------------
    # reactor serving (continuation runtime)
    # ------------------------------------------------------------------
    def _serve_on_reactor(self, message: Message, payload: Dict[str, Any],
                          service: str, method: str,
                          deadline: Optional[Deadline],
                          key: Optional[str],
                          entry: Optional[DedupEntry]) -> bool:
        """Submit a moderated call to the service's continuation runtime.

        Returns True when the request was taken (the reply will be sent
        from the completion callback); False when this request must use
        the synchronous path — no runtime for the service, a non-proxy
        servant, a passthrough method, or a closed runtime. The
        in-flight count is taken here and released in the callback, so
        :meth:`settle`'s drain barrier covers parked continuations too.
        """
        runtime = self._runtimes.get(service)
        if runtime is None:
            return False
        args = tuple(payload.get("args", ()))
        kwargs = dict(payload.get("kwargs", {}))
        caller = payload.get("caller")
        context = propagation.from_wire(payload.get("trace"))
        with self._lock:
            servant = self._servants.get(service)
            if not isinstance(servant, ComponentProxy) \
                    or not servant.is_participating(method):
                return False
            self._inflight[service] = self._inflight.get(service, 0) + 1
        if caller is None:
            caller = servant._caller
        request_context = (
            RequestContext(idempotency_key=key, deadline=deadline,
                           caller=caller)
            if key is not None or deadline is not None else None
        )

        def wrap() -> Any:
            # Re-established around every segment run: the worker that
            # resumes a parked suffix is not the thread that started the
            # activation, and both trace propagation and the serving
            # envelope are thread-local ambience.
            return self._reactor_ambience(context, request_context)

        try:
            future = runtime.submit(
                method, getattr(servant._component, method), *args,
                component=servant._component, caller=caller,
                timeout=servant._timeout, deadline=deadline, wrap=wrap,
                **kwargs,
            )
        except RuntimeError:
            # Runtime closed under us: undo the claim, serve threaded.
            self._release(service)
            return False
        future.add_callback(
            lambda fut: self._finish_reactor(
                fut, message, service, method, deadline, key, entry
            )
        )
        return True

    @contextmanager
    def _reactor_ambience(
        self, context: Optional[Any],
        request_context: Optional[RequestContext],
    ) -> Iterator[None]:
        """Per-segment thread-local envelope for reactor-served calls."""
        with propagation.activate(context):
            if request_context is None:
                yield
            else:
                with serving(request_context):
                    yield

    def _finish_reactor(self, future: Any, message: Message, service: str,
                        method: str, deadline: Optional[Deadline],
                        key: Optional[str],
                        entry: Optional[DedupEntry]) -> None:
        """Completion callback: reply exactly as the threaded path would.

        Mirrors the unarmed inline path (no dedup, plain counters) and
        :meth:`_handle_armed` (deadline mapping, dedup finish/abandon)
        depending on how the request arrived.
        """
        self._release(service)
        exc = future.exception()
        if exc is None:
            response = reply(message, self._wire_result(future.result()))
            self._inc("requests_served")
            if entry is not None:
                self.dedup.finish(key, response.kind, response.payload)
        else:
            if (isinstance(exc, ActivationTimeout) and deadline is not None
                    and deadline.expired):
                # The park was cut short by the request's budget, not
                # the local timeout: surface the end-to-end semantics.
                exc = DeadlineExceeded(
                    f"deadline elapsed while {service}.{method} was "
                    f"blocked in moderation"
                )
            counted = ["requests_failed"]
            if isinstance(exc, DeadlineExceeded):
                counted.append("deadline_expired")
            self._counters.bump(*counted)
            response = error_reply(message, exc)
            if entry is not None:
                if self._not_applied(exc):
                    self.dedup.abandon(key)
                else:
                    self.dedup.finish(key, response.kind, response.payload)
        self._send_response(response)

    def _claim(self, message: Message, key: str,
               deadline: Optional[Deadline]) -> Optional[DedupEntry]:
        """Claim ``key`` for execution, or answer the duplicate.

        Returns the owned entry when this delivery should execute the
        call; ``None`` when a reply has already been sent (cached
        replay, parked-then-replayed, or gave up waiting).
        """
        while True:
            state, entry = self.dedup.begin(key)
            if state == "new":
                return entry
            self._counters.bump("dedup_hits")
            if state == "done":
                self._send_response(self._replay(message, entry))
                return None
            # The original delivery is still executing: park this
            # duplicate until it finishes (bounded by the budget) and
            # replay its reply — never run the body twice concurrently.
            budget = (deadline.remaining() if deadline is not None
                      else _DEFAULT_DUP_WAIT)
            if budget > 0:
                entry.wait(budget)
            if entry.done and entry.payload is not None:
                self._send_response(self._replay(message, entry))
                return None
            if not entry.done:
                self._counters.bump("requests_failed")
                self._send_response(error_reply(message, TimeoutError(
                    f"duplicate of in-flight call {key!r} gave up "
                    f"waiting for the original to finish"
                )))
                return None
            # Abandoned (completed without a payload): the original
            # attempt provably did not apply — loop and re-claim.

    def _replay(self, message: Message, entry: DedupEntry) -> Message:
        """The cached reply, re-addressed to this duplicate's caller."""
        return Message(
            source=self.node_id, dest=message.source,
            kind=entry.kind or "reply", payload=dict(entry.payload or {}),
            reply_to=message.msg_id,
        )

    @staticmethod
    def _not_applied(exc: BaseException) -> bool:
        """Whether a failure proves the method body never ran.

        ABORTed activations, timed-out BLOCK parks, deadline
        rejections, missing servants, and admission rejections
        (``Overloaded`` — including the migration window's moving
        answer) all fail *before* invocation — a retry may safely
        re-execute. Anything else may have applied side effects, so the
        error is pinned in the dedup cache and a retry replays it
        instead of re-running the body.
        """
        return isinstance(
            exc,
            (MethodAborted, ActivationTimeout, DeadlineExceeded,
             LookupError, Overloaded),
        )

    def _send_response(self, response: Message) -> None:
        try:
            self.network.send(response)
        except Exception:  # noqa: BLE001 - reply to a vanished client
            pass

    @staticmethod
    def _accepts_caller(target: Any) -> bool:
        """Whether a servant method can receive the request principal."""
        import inspect

        try:
            parameters = inspect.signature(target).parameters
        except (TypeError, ValueError):
            return False
        return "caller" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values()
        )

    @staticmethod
    def _wire_result(result: Any) -> Any:
        """Coerce servant results into wire-safe data."""
        from .message import check_wire_safe

        if check_wire_safe(result):
            return result
        if hasattr(result, "__dict__"):
            flat = {
                key: value for key, value in vars(result).items()
                if check_wire_safe(value)
            }
            flat["__type__"] = type(result).__name__
            return flat
        return repr(result)

    def stop(self) -> None:
        self._running = False
        for thread in self._threads:
            thread.join(timeout=1.0)
        self._threads.clear()

    def crash(self) -> None:
        """Fail-stop: the node stops serving and the network drops traffic."""
        self.network.take_down(self.node_id)
        self.stop()

    def recover(self) -> None:
        self.network.bring_up(self.node_id)
        self.start()

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id} services={self.services()} "
            f"served={self.requests_served}>"
        )
