"""Sharded moderated clusters: consistent-hash routing + live rebalance.

The paper's composition story stops at one moderator per process — the
scale ceiling named in ROADMAP. This module removes it by making
*placement* a separated concern, the same move the paper makes for
replication and load balancing:

* :class:`HashRing` — consistent hashing with virtual nodes. Hashes are
  ``blake2b`` (never the builtin ``hash``, which is salted per process:
  every router must derive the identical ring from the identical
  binding).
* :class:`ShardRouter` — the client-side stub. A shard key is extracted
  per call (declared per method, e.g. ``lock_domain``; default: first
  positional argument), looked up on the ring, and the call goes out
  through :meth:`~repro.dist.rpc.Client.call_name` to the shard's plain
  binding ``"<name>#<shard>"`` — so the PR-5 retry / re-resolve /
  idempotency machinery applies unchanged, per shard.
* :class:`Rebalancer` — moves one shard live on top of
  :class:`~repro.dist.migration.Migrator`: quiesce, drain, capture, and
  additionally hand off the source node's idempotency-cache entries (and
  optional aspect state) inside the captured wire-safe dict, seeding the
  target *before* it starts serving. A client retry that raced the move
  therefore replays its original reply at the new home instead of
  re-executing — exactly-once effects survive the rebalance (proved by
  ``tests/properties/test_rebalance_chaos.py``).

Unsharded names never touch this module: the naming service keeps the
sharded registry apart, and ``resolve()`` stays byte-for-byte the legacy
path (``benchmarks/bench_sharding.py`` holds the ≤2% line).
"""

from __future__ import annotations

import hashlib
import time
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.aspects.retry import RetryPolicy
from repro.obs import propagation
from repro.obs.metrics import MetricsRegistry
from .migration import MigrationError, Migrator
from .naming import NameService, ShardedBinding
from .node import Node
from .rpc import Client

#: key the rebalancer smuggles its handoff bundle under inside the
#: captured state dict (dedup entries + aspect state); stripped before
#: the user's ``rebuild`` sees the dict
HANDOFF_KEY = "__handoff__"

#: extracts the shard key from one call's arguments
ShardKeyFn = Callable[[Tuple[Any, ...], Dict[str, Any]], str]

_SHARD_COUNTERS = ("rebalances", "failed_rebalances", "dedup_entries_moved")


def _point(data: str) -> int:
    """Deterministic 64-bit ring position for a string."""
    digest = hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def first_argument_key(args: Tuple[Any, ...],
                       kwargs: Dict[str, Any]) -> str:
    """Default shard key: the first positional argument, stringified."""
    if not args:
        raise ValueError(
            "cannot shard a call with no positional arguments; declare "
            "a shard key function for this method"
        )
    return str(args[0])


class HashRing:
    """Consistent-hash ring over shard ids, with virtual nodes.

    Each shard owns ``vnodes`` points on a 64-bit ring; a key routes to
    the shard owning the first point at or after the key's own hash.
    Adding/removing one shard therefore remaps only the keys in the
    arcs it gains/loses (~1/N of the space), not the whole keyspace —
    the property a live rebalancer depends on.
    """

    def __init__(self, shard_ids: Sequence[str], vnodes: int = 64) -> None:
        ids = tuple(shard_ids)
        if not ids:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids!r}")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self._shard_ids = ids
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for shard in ids:
            for replica in range(vnodes):
                points.append((_point(f"{shard}/{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    @classmethod
    def from_binding(cls, binding: ShardedBinding) -> "HashRing":
        """The ring a sharded binding describes (same for every router)."""
        return cls(binding.shard_ids, vnodes=binding.vnodes)

    def shards(self) -> Tuple[str, ...]:
        return self._shard_ids

    def lookup(self, key: str) -> str:
        """The shard owning ``key``."""
        index = bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def spread(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """Group ``keys`` by owning shard (balance checks, benches)."""
        assignment: Dict[str, List[str]] = {s: [] for s in self._shard_ids}
        for key in keys:
            assignment[self.lookup(key)].append(key)
        return assignment

    def __repr__(self) -> str:
        return (
            f"<HashRing shards={list(self._shard_ids)} "
            f"vnodes={self.vnodes}>"
        )


class ShardRouter:
    """Client-side stub for a sharded name.

    ``shard_keys`` maps method name → :data:`ShardKeyFn`; methods not
    listed use ``default_key`` (first positional argument). The ring is
    rebuilt whenever the sharded binding's version moves (a reshard via
    :meth:`~repro.dist.naming.NameService.update_sharded`), so routers
    follow topology changes without being told.

    Resilience parameters (``deadline`` / ``retry_policy`` /
    ``idempotency_key`` / ``timeout`` / ``caller``) pass straight
    through to :meth:`~repro.dist.rpc.Client.call_name`: a sharded call
    retries, re-resolves, and dedups exactly like a plain one — the
    re-resolve lands on the shard's rebound location mid-rebalance.
    """

    def __init__(self, client: Client, name: str,
                 shard_keys: Optional[Dict[str, ShardKeyFn]] = None,
                 default_key: ShardKeyFn = first_argument_key,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if client.names is None:
            raise ValueError("shard routing needs a naming service")
        self.client = client
        self.name = name
        self.shard_keys = dict(shard_keys or {})
        self.default_key = default_key
        self.registry = registry if registry is not None else client.registry
        self._routes = self.registry.counter(
            "repro_shard_routes",
            help="calls routed per (name, shard)",
            labelnames=("name", "shard"),
        )
        self._ring: Optional[HashRing] = None
        self._ring_version = -1

    def ring(self) -> HashRing:
        """The current ring (cached per sharded-binding version)."""
        binding = self.client.names.resolve_sharded(self.name)
        if self._ring is None or binding.version != self._ring_version:
            self._ring = HashRing.from_binding(binding)
            self._ring_version = binding.version
        return self._ring

    def shard_for(self, method: str, args: Tuple[Any, ...],
                  kwargs: Dict[str, Any]) -> str:
        """Which shard a call with these arguments routes to."""
        key_fn = self.shard_keys.get(method, self.default_key)
        return self.ring().lookup(key_fn(args, kwargs))

    def call(self, method: str, *args: Any,
             caller: Optional[str] = None,
             timeout: Optional[float] = None,
             deadline: Any = None,
             idempotency_key: Optional[str] = None,
             retry_policy: Optional[RetryPolicy] = None,
             **kwargs: Any) -> Any:
        """Route one invocation to its shard and dispatch it."""
        shard = self.shard_for(method, args, kwargs)
        self._routes.labels(self.name, shard).inc()
        shard_name = f"{self.name}#{shard}"
        context = propagation.current()
        if context is not None:
            # Stamp the shard into the trace baggage: the server-side
            # span recorder annotates the activation root with it.
            context = replace(
                context,
                baggage=context.baggage + (("shard", shard),),
            )
        with propagation.activate(context):
            return self.client.call_name(
                shard_name, method, *args,
                caller=caller, timeout=timeout, deadline=deadline,
                idempotency_key=idempotency_key,
                retry_policy=retry_policy, **kwargs,
            )

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def routed(*args: Any, **kwargs: Any) -> Any:
            return self.call(method, *args, **kwargs)

        routed.__name__ = method
        return routed

    def __repr__(self) -> str:
        return f"<ShardRouter {self.name} via {self.client.client_id}>"


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one live shard move."""

    name: str
    shard_id: str
    source: str
    target: str
    downtime: float
    dedup_entries_moved: int
    state_keys: int


class Rebalancer:
    """Moves shards between nodes live, on top of the migrator.

    The migrator already gives all-or-nothing moves with a bounded
    downtime window (withdraw → drain → capture → rebuild → rebind),
    and the moving-window ``Overloaded`` keeps racing client retries
    alive through it. What the rebalancer adds is the *handoff*: the
    source node's completed idempotency-cache entries (and optional
    aspect state) travel inside the captured wire-safe dict and are
    seeded into the target's cache before the target serves its first
    request — a retry of an already-applied call replays instead of
    re-executing, so effects stay exactly-once across the move.
    """

    def __init__(self, names: NameService,
                 migrator: Optional[Migrator] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.names = names
        self.migrator = migrator if migrator is not None \
            else Migrator(names)
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = self.registry.counter_block(
            _SHARD_COUNTERS, prefix="repro_shard_"
        )
        self._downtime = self.registry.histogram(
            "repro_shard_rebalance_downtime_seconds",
            help="seconds each rebalanced shard was withdrawn",
        ).labels()
        self.history: List[RebalanceReport] = []

    def rebalance(self, name: str, shard_id: str,
                  source: Node, target: Node,
                  capture: Callable[[Any], Dict[str, Any]],
                  rebuild: Callable[[Dict[str, Any]], Any],
                  quiesce: Optional[Callable[[], None]] = None,
                  resume: Optional[Callable[[], None]] = None,
                  aspect_capture: Optional[
                      Callable[[Any], Dict[str, Any]]] = None,
                  aspect_restore: Optional[
                      Callable[[Any, Dict[str, Any]], None]] = None,
                  drain_timeout: float = 5.0) -> RebalanceReport:
        """Move shard ``shard_id`` of sharded ``name`` source → target.

        ``capture`` / ``rebuild`` see only the servant's own state dict;
        the handoff bundle (dedup entries, ``aspect_capture`` output) is
        added and stripped by the rebalancer. On failure the migrator
        rolls back (servant re-exported at the source, name untouched,
        ``resume`` run) and the target cache keeps any seeded entries —
        replaying a cached reply twice is harmless, re-executing is not.
        """
        sharded = self.names.resolve_sharded(name)
        if shard_id not in sharded.shard_ids:
            raise MigrationError(
                f"{name!r} has no shard {shard_id!r} "
                f"(shards: {list(sharded.shard_ids)})"
            )
        shard_name = sharded.shard_name(shard_id)
        moved = 0

        def capture_with_handoff(servant: Any) -> Dict[str, Any]:
            state = capture(servant)
            handoff: Dict[str, Any] = {
                "dedup": source.dedup.export_completed(),
            }
            if aspect_capture is not None:
                handoff["aspects"] = aspect_capture(servant)
            state = dict(state)
            state[HANDOFF_KEY] = handoff
            return state

        def rebuild_with_handoff(state: Dict[str, Any]) -> Any:
            nonlocal moved
            state = dict(state)
            handoff = state.pop(HANDOFF_KEY, {})
            # Seed the dedup cache *before* the servant exists on the
            # target: the first request it serves may already be a
            # retry of a call the source applied.
            moved = target.dedup.seed(handoff.get("dedup", {}))
            servant = rebuild(state)
            if aspect_restore is not None:
                aspect_restore(servant, handoff.get("aspects", {}))
            return servant

        started = time.monotonic()
        try:
            report = self.migrator.migrate(
                shard_name, source, target,
                capture_with_handoff, rebuild_with_handoff,
                quiesce=quiesce, resume=resume,
                drain_timeout=drain_timeout,
            )
        except BaseException:
            self._counters.bump("failed_rebalances")
            raise
        self._counters.bump("rebalances")
        if moved:
            self._counters.bump("dedup_entries_moved", amount=moved)
        self._downtime.observe(report.downtime)
        outcome = RebalanceReport(
            name=name, shard_id=shard_id,
            source=source.node_id, target=target.node_id,
            downtime=report.downtime, dedup_entries_moved=moved,
            # the handoff key was part of the captured dict; report the
            # servant's own keys
            state_keys=max(0, report.state_keys - 1),
        )
        self.history.append(outcome)
        return outcome

    def __repr__(self) -> str:
        return f"<Rebalancer moves={len(self.history)}>"
