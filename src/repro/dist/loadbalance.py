"""Load balancing: dispatch across replicas as a separated concern.

"Load balancing" heads the paper's Section 2 concern list. Here it is a
policy object plus a dispatcher servant: clients call the balancer's
logical name; the balancer forwards to one backend according to the
policy. Swapping policies (round-robin / random / least-loaded /
weighted) touches neither clients nor backends — the separation claim,
demonstrated at the distribution layer.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.errors import NetworkError
from .rpc import Client, RemoteError, RequestTimeout

#: A backend is a (logical name, load probe) pair; probe may be None.
Backend = str
LoadProbe = Callable[[Backend], float]


class BalancingPolicy:
    """Strategy interface: pick a backend for the next call."""

    def choose(self, backends: Sequence[Backend]) -> Backend:
        raise NotImplementedError


class RoundRobin(BalancingPolicy):
    """Cycle through backends in order.

    Rotation is anchored to stable backend *identity*, not to the
    position in whatever candidate list a caller passes: during
    failover the balancer filters out already-tried backends, and a
    cursor taken modulo the filtered list's length would skew the
    rotation whenever one backend is down (the survivors after the hole
    get double the traffic). Instead the policy remembers each backend
    in first-seen order and scans from its cursor for the first one
    currently offered.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._order: List[Backend] = []

    def choose(self, backends: Sequence[Backend]) -> Backend:
        if not backends:
            raise NetworkError("no backend available")
        with self._lock:
            for backend in backends:
                if backend not in self._order:
                    self._order.append(backend)
            offered = set(backends)
            for step in range(len(self._order)):
                index = (self._next + step) % len(self._order)
                backend = self._order[index]
                if backend in offered:
                    self._next = index + 1
                    return backend
            # Unreachable: every offered backend was added to _order.
            raise NetworkError("no backend available")


class RandomChoice(BalancingPolicy):
    """Uniform random backend (seeded for reproducibility)."""

    def __init__(self, seed: int = 11) -> None:
        self._rng = random.Random(seed)

    def choose(self, backends: Sequence[Backend]) -> Backend:
        return self._rng.choice(list(backends))


class LeastLoaded(BalancingPolicy):
    """Pick the backend whose probe reports the smallest load."""

    def __init__(self, probe: LoadProbe) -> None:
        self._probe = probe

    def choose(self, backends: Sequence[Backend]) -> Backend:
        return min(backends, key=self._probe)


class WeightedChoice(BalancingPolicy):
    """Static weights (capacity-proportional dispatch)."""

    def __init__(self, weights: Dict[Backend, float], seed: int = 13) -> None:
        if not weights or any(w <= 0 for w in weights.values()):
            raise ValueError("weights must be positive")
        self._weights = dict(weights)
        self._rng = random.Random(seed)

    def choose(self, backends: Sequence[Backend]) -> Backend:
        candidates = [b for b in backends if b in self._weights]
        if not candidates:
            raise NetworkError("no weighted backend available")
        total = sum(self._weights[b] for b in candidates)
        draw = self._rng.random() * total
        cumulative = 0.0
        for backend in candidates:
            cumulative += self._weights[backend]
            if draw <= cumulative:
                return backend
        return candidates[-1]


class LoadBalancer:
    """Client-side balancer forwarding named calls to backend replicas.

    Args:
        client: RPC client used for forwarding.
        backends: logical names of the replicas.
        policy: a :class:`BalancingPolicy`.
        retries: how many *other* backends to try after a delivery
            failure (timeout / unreachable) — fault tolerance composed
            with load balancing.
    """

    def __init__(self, client: Client, backends: Sequence[Backend],
                 policy: Optional[BalancingPolicy] = None,
                 retries: int = 1) -> None:
        if not backends:
            raise ValueError("at least one backend required")
        self.client = client
        self.backends = list(backends)
        self.policy = policy if policy is not None else RoundRobin()
        self.retries = retries
        self._lock = threading.Lock()
        self.dispatched: Dict[Backend, int] = {b: 0 for b in self.backends}
        self.failovers = 0

    def call(self, method: str, *args: Any, caller: Optional[str] = None,
             **kwargs: Any) -> Any:
        """Forward one invocation according to the policy."""
        tried: List[Backend] = []
        last_error: Optional[Exception] = None
        attempts = 1 + max(0, self.retries)
        for _ in range(attempts):
            candidates = [b for b in self.backends if b not in tried]
            if not candidates:
                break
            backend = self.policy.choose(candidates)
            tried.append(backend)
            try:
                result = self.client.call_name(
                    backend, method, *args, caller=caller, **kwargs
                )
                with self._lock:
                    self.dispatched[backend] = (
                        self.dispatched.get(backend, 0) + 1
                    )
                return result
            except (RequestTimeout, NetworkError) as exc:
                if isinstance(exc, RemoteError):
                    raise  # application errors do not fail over
                last_error = exc
                with self._lock:
                    self.failovers += 1
        raise last_error if last_error else NetworkError("dispatch failed")

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)

        def dispatched(*args: Any, **kwargs: Any) -> Any:
            return self.call(method, *args, **kwargs)

        dispatched.__name__ = method
        return dispatched

    def distribution(self) -> Dict[Backend, int]:
        """Dispatch histogram (for the balance-quality benches)."""
        with self._lock:
            return dict(self.dispatched)
