"""Naming service: location transparency (paper Section 2).

Services are addressed by logical name; the naming service maps names to
``(node, service)`` locations. Client stubs resolve per call, so
rebinding a name (migration, failover) transparently redirects traffic —
the "location transparency" concern as infrastructure rather than
tangled lookup code.

Sharded names (``docs/sharding.md``): one logical name may instead be
bound to a *set of shards* under a consistent-hash ring
(:meth:`NameService.bind_sharded`). The sharded registry is kept apart
from the plain bindings, so the unsharded :meth:`resolve` path is
byte-for-byte what it was before sharding existed. Each shard is itself
a plain binding under ``"<name>#<shard_id>"`` — shard moves therefore
reuse the whole rebind/version/wait_for machinery (and the migrator)
unchanged.

Versioning is monotonic **per name, forever**: rebinds bump, unbinds
bump (watchers receive a tombstone with empty ``node_id``), and a bind
after an unbind continues from the high-water mark. Watcher delivery is
version-ordered per name: two racing rebinds can never leave a watcher
holding the stale binding as its last observation.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import NameNotFound


@dataclass(frozen=True)
class Binding:
    """A resolved name.

    A binding with an empty ``node_id`` and ``service`` is a *tombstone*:
    the notification watchers receive when the name is unbound.
    """

    name: str
    node_id: str
    service: str
    version: int

    @property
    def unbound(self) -> bool:
        """Whether this is an unbind tombstone, not a live location."""
        return not self.node_id

    @property
    def epoch(self) -> int:
        """The fencing epoch this binding mints (its version).

        Versions are monotonic per name forever, so every rebind — a
        failover in particular — mints a strictly greater epoch. The
        recovery plane (``docs/recovery.md``) fences the durable
        journal and the serving node at this value: armed requests
        carry it on the wire, and a zombie node holding an older epoch
        gets its late writes and replies rejected instead of corrupting
        the replacement.
        """
        return self.version


@dataclass(frozen=True)
class ShardedBinding:
    """One logical name spread over a set of shards.

    The binding names the shard ids and the ring geometry (virtual
    nodes per shard); the key→shard mapping itself is computed by a
    :class:`~repro.dist.sharding.HashRing` built from these fields, so
    every router derives the identical ring from the identical binding.
    Each shard's location is the plain binding :meth:`shard_name`.
    """

    name: str
    shard_ids: Tuple[str, ...]
    vnodes: int
    version: int

    def shard_name(self, shard_id: str) -> str:
        """The plain binding name one shard's location lives under."""
        return f"{self.name}#{shard_id}"

    def shard_names(self) -> List[str]:
        return [self.shard_name(shard_id) for shard_id in self.shard_ids]


class _NotifyGate:
    """Per-name watcher dispatch state: version-ordered delivery.

    ``lock`` serializes deliveries for one name (reentrant, so a watcher
    that rebinds the same name from its callback does not deadlock);
    ``delivered`` is the highest version handed to watchers — a late
    notification carrying an older version is dropped instead of
    delivered out of order.
    """

    __slots__ = ("lock", "delivered")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.delivered = 0


class NameService:
    """Thread-safe name -> location registry with rebind versioning."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._bindings: Dict[str, Binding] = {}
        self._sharded: Dict[str, ShardedBinding] = {}
        self._watchers: Dict[str, List[Callable[[Binding], None]]] = {}
        self._gates: Dict[str, _NotifyGate] = {}
        #: per-name high-water version mark — survives unbind, so a
        #: re-bound name can never reuse a version watchers already saw
        self._versions: Dict[str, int] = {}

    def _next_version(self, name: str) -> int:
        # under self._lock
        version = self._versions.get(name, 0) + 1
        self._versions[name] = version
        return version

    def bind(self, name: str, node_id: str, service: str) -> Binding:
        """Bind a fresh name; raises ``ValueError`` if already bound."""
        with self._lock:
            if name in self._bindings:
                raise ValueError(f"name {name!r} already bound")
            if name in self._sharded:
                raise ValueError(f"name {name!r} is bound sharded")
            binding = Binding(name=name, node_id=node_id,
                              service=service,
                              version=self._next_version(name))
            self._bindings[name] = binding
            self._changed.notify_all()
        self._notify(binding)
        return binding

    def rebind(self, name: str, node_id: str, service: str) -> Binding:
        """Bind or replace a name (migration / failover path)."""
        with self._lock:
            if name in self._sharded:
                raise ValueError(f"name {name!r} is bound sharded")
            binding = Binding(
                name=name, node_id=node_id, service=service,
                version=self._next_version(name),
            )
            self._bindings[name] = binding
            self._changed.notify_all()
        self._notify(binding)
        return binding

    def unbind(self, name: str) -> None:
        """Remove a name; watchers receive an unbind tombstone."""
        with self._lock:
            if name not in self._bindings:
                raise NameNotFound(name)
            del self._bindings[name]
            tombstone = Binding(name=name, node_id="", service="",
                                version=self._next_version(name))
            self._changed.notify_all()
        self._notify(tombstone)

    def resolve(self, name: str) -> Binding:
        with self._lock:
            binding = self._bindings.get(name)
        if binding is None:
            raise NameNotFound(name)
        return binding

    def wait_for(self, name: str, version: int = 1,
                 timeout: Optional[float] = None) -> Optional[Binding]:
        """Block until ``name`` is bound at ``version`` or newer.

        Returns the satisfying binding, or ``None`` on timeout. Lets a
        caller await a failover rebind (version bump) without polling
        ``resolve`` in a sleep loop.
        """
        def satisfied() -> Optional[Binding]:
            binding = self._bindings.get(name)
            if binding is not None and binding.version >= version:
                return binding
            return None

        with self._changed:
            if self._changed.wait_for(satisfied, timeout):
                return satisfied()
            return None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._bindings)

    # ------------------------------------------------------------------
    # sharded bindings (docs/sharding.md)
    # ------------------------------------------------------------------
    def bind_sharded(self, name: str, shard_ids: Sequence[str],
                     vnodes: int = 64) -> ShardedBinding:
        """Bind ``name`` as a sharded name over ``shard_ids``.

        The shard *locations* are not placed here: the caller binds each
        ``ShardedBinding.shard_name(shard_id)`` as a plain name (and
        rebinds it on every shard move). This keeps one machinery —
        resolve / rebind / version / ``wait_for`` — serving both plain
        names and every individual shard.
        """
        ids = tuple(shard_ids)
        if not ids:
            raise ValueError("a sharded binding needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids!r}")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        with self._lock:
            if name in self._bindings:
                raise ValueError(f"name {name!r} already bound (plain)")
            if name in self._sharded:
                raise ValueError(f"name {name!r} already bound sharded")
            sharded = ShardedBinding(
                name=name, shard_ids=ids, vnodes=vnodes,
                version=self._next_version(name),
            )
            self._sharded[name] = sharded
            self._changed.notify_all()
        return sharded

    def update_sharded(self, name: str,
                       shard_ids: Sequence[str]) -> ShardedBinding:
        """Replace the shard set of a sharded name (reshard).

        Bumps the sharded version so routers rebuild their rings; the
        vnode count is preserved.
        """
        ids = tuple(shard_ids)
        if not ids:
            raise ValueError("a sharded binding needs at least one shard")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate shard ids in {ids!r}")
        with self._lock:
            current = self._sharded.get(name)
            if current is None:
                raise NameNotFound(name)
            sharded = ShardedBinding(
                name=name, shard_ids=ids, vnodes=current.vnodes,
                version=self._next_version(name),
            )
            self._sharded[name] = sharded
            self._changed.notify_all()
        return sharded

    def resolve_sharded(self, name: str) -> ShardedBinding:
        with self._lock:
            sharded = self._sharded.get(name)
        if sharded is None:
            raise NameNotFound(name)
        return sharded

    def is_sharded(self, name: str) -> bool:
        with self._lock:
            return name in self._sharded

    def unbind_sharded(self, name: str) -> None:
        """Remove a sharded name (the per-shard plain bindings remain)."""
        with self._lock:
            if name not in self._sharded:
                raise NameNotFound(name)
            del self._sharded[name]
            self._next_version(name)
            self._changed.notify_all()

    # ------------------------------------------------------------------
    def watch(self, name: str, callback: Callable[[Binding], None]) -> None:
        """Call ``callback`` on every (re/un)bind of ``name``.

        Deliveries are version-ordered per name: a callback's last-seen
        binding is always the newest delivered, never a stale one that
        lost a rebind race (shard routers cache routes off exactly this
        guarantee). Unbinds deliver a tombstone (``binding.unbound``).
        """
        with self._lock:
            self._watchers.setdefault(name, []).append(callback)

    def unwatch(self, name: str,
                callback: Callable[[Binding], None]) -> bool:
        """Deregister a watcher; returns whether it was registered."""
        with self._lock:
            callbacks = self._watchers.get(name)
            if not callbacks or callback not in callbacks:
                return False
            callbacks.remove(callback)
            if not callbacks:
                del self._watchers[name]
            return True

    def _notify(self, binding: Binding) -> None:
        # Runs outside self._lock (callbacks may re-enter the service);
        # the per-name gate serializes deliveries and drops stale
        # versions, so concurrent rebinds cannot be observed reordered.
        with self._lock:
            watchers = list(self._watchers.get(binding.name, ()))
            gate = self._gates.get(binding.name)
            if gate is None:
                gate = self._gates[binding.name] = _NotifyGate()
        with gate.lock:
            if binding.version <= gate.delivered:
                return
            gate.delivered = binding.version
            for callback in watchers:
                callback(binding)
