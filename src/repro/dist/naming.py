"""Naming service: location transparency (paper Section 2).

Services are addressed by logical name; the naming service maps names to
``(node, service)`` locations. Client stubs resolve per call, so
rebinding a name (migration, failover) transparently redirects traffic —
the "location transparency" concern as infrastructure rather than
tangled lookup code.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.errors import NameNotFound


@dataclass(frozen=True)
class Binding:
    """A resolved name."""

    name: str
    node_id: str
    service: str
    version: int


class NameService:
    """Thread-safe name -> location registry with rebind versioning."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._bindings: Dict[str, Binding] = {}
        self._watchers: Dict[str, List[Callable[[Binding], None]]] = {}

    def bind(self, name: str, node_id: str, service: str) -> Binding:
        """Bind a fresh name; raises ``ValueError`` if already bound."""
        with self._lock:
            if name in self._bindings:
                raise ValueError(f"name {name!r} already bound")
            binding = Binding(name=name, node_id=node_id,
                              service=service, version=1)
            self._bindings[name] = binding
            self._changed.notify_all()
        self._notify(binding)
        return binding

    def rebind(self, name: str, node_id: str, service: str) -> Binding:
        """Bind or replace a name (migration / failover path)."""
        with self._lock:
            current = self._bindings.get(name)
            binding = Binding(
                name=name, node_id=node_id, service=service,
                version=(current.version + 1) if current else 1,
            )
            self._bindings[name] = binding
            self._changed.notify_all()
        self._notify(binding)
        return binding

    def unbind(self, name: str) -> None:
        with self._lock:
            if name not in self._bindings:
                raise NameNotFound(name)
            del self._bindings[name]

    def resolve(self, name: str) -> Binding:
        with self._lock:
            binding = self._bindings.get(name)
        if binding is None:
            raise NameNotFound(name)
        return binding

    def wait_for(self, name: str, version: int = 1,
                 timeout: Optional[float] = None) -> Optional[Binding]:
        """Block until ``name`` is bound at ``version`` or newer.

        Returns the satisfying binding, or ``None`` on timeout. Lets a
        caller await a failover rebind (version bump) without polling
        ``resolve`` in a sleep loop.
        """
        def satisfied() -> Optional[Binding]:
            binding = self._bindings.get(name)
            if binding is not None and binding.version >= version:
                return binding
            return None

        with self._changed:
            if self._changed.wait_for(satisfied, timeout):
                return satisfied()
            return None

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._bindings)

    # ------------------------------------------------------------------
    def watch(self, name: str, callback: Callable[[Binding], None]) -> None:
        """Call ``callback`` on every (re)bind of ``name``."""
        with self._lock:
            self._watchers.setdefault(name, []).append(callback)

    def _notify(self, binding: Binding) -> None:
        with self._lock:
            watchers = list(self._watchers.get(binding.name, ()))
        for callback in watchers:
            callback(binding)
