"""Crash-restart recovery: durable effects, fencing, supervised failover.

The paper composes cross-cutting concerns as moderated aspects;
persistence/recovery is the canonical concern this module makes
composable rather than hand-woven (Munoz et al. classify state
capture/restore as an *invasive* pattern — exactly what must run at the
moderation seams, not inside components). Four pieces
(``docs/recovery.md``):

* **A real crash model** — ``Node.crash(lose_memory=True)`` discards
  every piece of volatile state (servants, runtimes, idempotency cache,
  epochs, journal attachments), and the faults plane gains ``"crash"``
  sites (:func:`repro.faults.crash_sites`) so chaos schedules can kill
  a node at a named point *inside* one request's serving sequence.
* **Durability** — a write-ahead effect journal plus periodic
  checkpoints behind a pluggable :class:`RecoveryStore`
  (:class:`MemoryStore` for tests/simulation, :class:`FileStore` for
  real runs). The checkpoint reuses the sharding handoff bundle
  verbatim (``__handoff__`` with ``IdempotencyCache.export_completed``
  inside the captured state dict), so :func:`recover_service` rebuilds
  the servant from the last checkpoint, replays the journal suffix, and
  returns the dedup seed that makes re-application exactly-once: a
  client retry of an effect the dead node already acknowledged replays
  the journaled reply instead of re-executing.
* **Fencing** — the naming service's binding version doubles as a
  monotonic fencing epoch (:attr:`~repro.dist.naming.Binding.epoch`).
  It rides armed requests on the wire and gates every journal append
  and checkpoint save, so a zombie node returning after it was declared
  dead gets its late writes and replies rejected
  (:class:`~repro.core.errors.FencedOut` — retryable, because
  re-resolving lands the caller on the current epoch holder).
* **Supervision** — :class:`Supervisor` turns
  :class:`~repro.dist.failure_detector.HeartbeatDetector` dead verdicts
  into automatic failover with per-service backoff and a failover cap:
  open the moving window on the target, rebind (minting the epoch),
  fence the store, recover from checkpoint + journal, seed the dedup
  cache, export. The fence is the linearization point — zombie appends
  that raced in before it are part of the replayed view, appends after
  it are rejected, so the handover is exactly-once by construction.

Journaled services serialize their mutating activations under the plan
lock (effect + journal append must be one atomic step or a checkpoint
could capture an effect whose record lands after the recorded
sequence). Blocking coordination *between* mutating methods of one
journaled service therefore cannot be journaled; journal the
non-blocking mutators and checkpoint around the rest.
"""

from __future__ import annotations

import copy
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional
from urllib.parse import quote

from repro.core.errors import FencedOut, NameNotFound, NetworkError
from repro.core.proxy import ComponentProxy
from repro.obs.metrics import MetricsRegistry
from .message import WireFormatError, check_wire_safe
from .naming import Binding, NameService
from .node import Node

#: counters the supervisor keeps (prefix ``repro_recovery_``); nodes
#: keep their own block (journal appends / checkpoints / fenced
#: rejections) — see ``repro.dist.node``
_SUPERVISOR_COUNTERS = (
    "failovers", "failed_failovers", "effects_replayed", "dedup_seeded",
)


class RecoveryError(NetworkError):
    """Recovery could not produce a consistent servant (fail loud)."""


# ----------------------------------------------------------------------
# stores
# ----------------------------------------------------------------------
class RecoveryStore:
    """The durable plane behind journals and checkpoints.

    Per service it holds an append-only *effect journal* (monotonic
    sequence numbers that survive pruning), at most one *checkpoint*
    (``{"state": ..., "seq": ..., "epoch": ...}``), and a *fence*
    high-water epoch. ``append`` and ``save_checkpoint`` reject epochs
    below the fence with :class:`~repro.core.errors.FencedOut` — the
    durable backstop that stops a zombie from corrupting the journal
    even when its local epoch check cannot know it was superseded.

    Records and checkpoint state must be wire-safe
    (:func:`~repro.dist.message.check_wire_safe`): durability through a
    store is a serialization boundary, same as the wire.
    """

    def append(self, service: str, record: Dict[str, Any],
               epoch: int = 0) -> int:
        """Durably append one effect record; returns its sequence."""
        raise NotImplementedError

    def entries(self, service: str, after: int = 0) -> List[Dict[str, Any]]:
        """Journal entries with ``seq > after``, oldest first."""
        raise NotImplementedError

    def last_seq(self, service: str) -> int:
        """Highest sequence ever appended (survives pruning)."""
        raise NotImplementedError

    def save_checkpoint(self, service: str, checkpoint: Dict[str, Any],
                        epoch: int = 0) -> None:
        """Replace the service's checkpoint (atomic)."""
        raise NotImplementedError

    def load_checkpoint(self, service: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def fence(self, service: str, epoch: int) -> int:
        """Raise the fence high-water to ``epoch``; returns the fence."""
        raise NotImplementedError

    def fenced_epoch(self, service: str) -> int:
        raise NotImplementedError

    def prune(self, service: str, upto: int) -> int:
        """Drop journal entries with ``seq <= upto``; returns how many."""
        raise NotImplementedError

    # shared guards -----------------------------------------------------
    @staticmethod
    def _check_record(service: str, record: Dict[str, Any]) -> None:
        if not check_wire_safe(record):
            raise WireFormatError(
                f"journal record for {service!r} is not wire-safe"
            )

    @staticmethod
    def _check_checkpoint(service: str, checkpoint: Dict[str, Any]) -> None:
        if not check_wire_safe(checkpoint):
            raise WireFormatError(
                f"checkpoint for {service!r} is not wire-safe"
            )

    @staticmethod
    def _check_fence(service: str, epoch: int, fence: int) -> None:
        if epoch < fence:
            raise FencedOut(
                f"durable write for {service!r} at epoch {epoch} "
                f"rejected: store fenced at {fence}",
                stale_epoch=epoch, current_epoch=fence,
            )


class MemoryStore(RecoveryStore):
    """In-memory durable store for tests and simulation.

    "Durable" here means: survives :meth:`Node.crash` with
    ``lose_memory=True`` — the store object lives outside any node, the
    way a disk outlives a process. Everything is deep-copied on the way
    in and out, keeping the serialization boundary honest.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._journals: Dict[str, List[Dict[str, Any]]] = {}
        self._checkpoints: Dict[str, Dict[str, Any]] = {}
        self._fences: Dict[str, int] = {}
        self._seqs: Dict[str, int] = {}

    def append(self, service: str, record: Dict[str, Any],
               epoch: int = 0) -> int:
        self._check_record(service, record)
        with self._lock:
            self._check_fence(service, epoch,
                              self._fences.get(service, 0))
            seq = self._seqs.get(service, 0) + 1
            self._seqs[service] = seq
            self._journals.setdefault(service, []).append({
                "seq": seq, "epoch": int(epoch),
                "record": copy.deepcopy(record),
            })
            return seq

    def entries(self, service: str, after: int = 0) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                copy.deepcopy(entry)
                for entry in self._journals.get(service, ())
                if entry["seq"] > after
            ]

    def last_seq(self, service: str) -> int:
        with self._lock:
            return self._seqs.get(service, 0)

    def save_checkpoint(self, service: str, checkpoint: Dict[str, Any],
                        epoch: int = 0) -> None:
        self._check_checkpoint(service, checkpoint)
        with self._lock:
            self._check_fence(service, epoch,
                              self._fences.get(service, 0))
            self._checkpoints[service] = copy.deepcopy(checkpoint)

    def load_checkpoint(self, service: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            checkpoint = self._checkpoints.get(service)
            return copy.deepcopy(checkpoint) if checkpoint is not None \
                else None

    def fence(self, service: str, epoch: int) -> int:
        with self._lock:
            fence = max(self._fences.get(service, 0), int(epoch))
            self._fences[service] = fence
            return fence

    def fenced_epoch(self, service: str) -> int:
        with self._lock:
            return self._fences.get(service, 0)

    def prune(self, service: str, upto: int) -> int:
        with self._lock:
            journal = self._journals.get(service, [])
            kept = [e for e in journal if e["seq"] > upto]
            dropped = len(journal) - len(kept)
            self._journals[service] = kept
            return dropped


class FileStore(RecoveryStore):
    """File-backed store: one journal/checkpoint/fence file per service.

    The journal is JSONL (one ``{"seq", "epoch", "record"}`` object per
    line), fsynced per append — an acknowledged effect is on disk
    before the reply leaves the node. Checkpoints and fences are whole
    JSON files replaced atomically (write-temp-then-rename). Service
    names are percent-encoded into file names, so sharded services
    (``"kv#s0"``) store cleanly.
    """

    def __init__(self, root: str) -> None:
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self._lock = threading.Lock()
        self._seqs: Dict[str, int] = {}
        self._fences: Dict[str, int] = {}

    def _path(self, service: str, kind: str) -> str:
        return os.path.join(self.root, f"{quote(service, safe='')}.{kind}")

    def _write_atomic(self, path: str, data: Dict[str, Any]) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def _read_json(self, path: str) -> Optional[Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def _journal_lines(self, service: str) -> List[Dict[str, Any]]:
        # under self._lock
        path = self._path(service, "journal")
        entries: List[Dict[str, Any]] = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        entries.append(json.loads(line))
        except OSError:
            pass
        return entries

    def _ensure_seq(self, service: str) -> int:
        # under self._lock
        if service not in self._seqs:
            seq = 0
            checkpoint = self._read_json(self._path(service, "checkpoint"))
            if checkpoint:
                seq = int(checkpoint.get("seq", 0))
            for entry in self._journal_lines(service):
                seq = max(seq, int(entry.get("seq", 0)))
            self._seqs[service] = seq
        return self._seqs[service]

    def _ensure_fence(self, service: str) -> int:
        # under self._lock
        if service not in self._fences:
            data = self._read_json(self._path(service, "fence"))
            self._fences[service] = int((data or {}).get("epoch", 0))
        return self._fences[service]

    def append(self, service: str, record: Dict[str, Any],
               epoch: int = 0) -> int:
        self._check_record(service, record)
        with self._lock:
            self._check_fence(service, epoch, self._ensure_fence(service))
            seq = self._ensure_seq(service) + 1
            self._seqs[service] = seq
            entry = {"seq": seq, "epoch": int(epoch), "record": record}
            with open(self._path(service, "journal"), "a",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(entry) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            return seq

    def entries(self, service: str, after: int = 0) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                entry for entry in self._journal_lines(service)
                if int(entry.get("seq", 0)) > after
            ]

    def last_seq(self, service: str) -> int:
        with self._lock:
            return self._ensure_seq(service)

    def save_checkpoint(self, service: str, checkpoint: Dict[str, Any],
                        epoch: int = 0) -> None:
        self._check_checkpoint(service, checkpoint)
        with self._lock:
            self._check_fence(service, epoch, self._ensure_fence(service))
            self._write_atomic(self._path(service, "checkpoint"),
                               checkpoint)

    def load_checkpoint(self, service: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._read_json(self._path(service, "checkpoint"))

    def fence(self, service: str, epoch: int) -> int:
        with self._lock:
            fence = max(self._ensure_fence(service), int(epoch))
            self._fences[service] = fence
            self._write_atomic(self._path(service, "fence"),
                               {"epoch": fence})
            return fence

    def fenced_epoch(self, service: str) -> int:
        with self._lock:
            return self._ensure_fence(service)

    def prune(self, service: str, upto: int) -> int:
        with self._lock:
            self._ensure_seq(service)
            entries = self._journal_lines(service)
            kept = [e for e in entries if int(e.get("seq", 0)) > upto]
            dropped = len(entries) - len(kept)
            path = self._path(service, "journal")
            tmp = f"{path}.tmp"
            with open(tmp, "w", encoding="utf-8") as handle:
                for entry in kept:
                    handle.write(json.dumps(entry) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            return dropped


# ----------------------------------------------------------------------
# plans and recovery
# ----------------------------------------------------------------------
class RecoveryPlan:
    """How one service journals, checkpoints, and rebuilds.

    ``capture`` / ``rebuild`` see only the servant's own wire-safe
    state dict — the handoff bundle (dedup export, ``aspect_capture``
    output) is added and stripped by the plane, exactly as the
    rebalancer does. ``mutating`` names the methods whose effects must
    be journaled (``None`` journals every method — safe but noisy for
    read-heavy services; the mutating set **must** cover every
    state-changing method or recovery silently loses the uncovered
    effects). ``checkpoint_every`` takes an automatic checkpoint after
    that many journal appends (0 = manual checkpoints only).

    The plan ``lock`` serializes a journaled service's mutations with
    its checkpoints; it is shared by every node the plan is attached to
    across the service's lifetime, so a failover target keeps the same
    atomicity the source had.
    """

    def __init__(self, store: RecoveryStore,
                 capture: Callable[[Any], Dict[str, Any]],
                 rebuild: Callable[[Dict[str, Any]], Any], *,
                 mutating: Optional[Iterable[str]] = None,
                 aspect_capture: Optional[
                     Callable[[Any], Dict[str, Any]]] = None,
                 aspect_restore: Optional[
                     Callable[[Any, Dict[str, Any]], None]] = None,
                 checkpoint_every: int = 0) -> None:
        self.store = store
        self.capture = capture
        self.rebuild = rebuild
        self.mutating = frozenset(mutating) if mutating is not None \
            else None
        self.aspect_capture = aspect_capture
        self.aspect_restore = aspect_restore
        self.checkpoint_every = int(checkpoint_every)
        self.lock = threading.RLock()
        self.appended = 0

    def journals(self, method: str) -> bool:
        """Whether calls of ``method`` must hit the journal."""
        return self.mutating is None or method in self.mutating


@dataclass
class RecoveredService:
    """What :func:`recover_service` hands the supervisor."""

    servant: Any
    #: idempotency entries to seed into the new home's dedup cache:
    #: the checkpoint's handoff export plus one entry per replayed
    #: journal record that carried a key — a client retry of an effect
    #: the dead node acknowledged replays instead of re-executing
    dedup_seed: Dict[str, Dict[str, Any]]
    replayed: int
    checkpoint_seq: int


def replay_effect(servant: Any, record: Dict[str, Any]) -> Any:
    """Re-apply one journaled effect to a rebuilt servant."""
    method = record.get("method", "")
    args = tuple(record.get("args", ()))
    kwargs = dict(record.get("kwargs", {}))
    caller = record.get("caller")
    if isinstance(servant, ComponentProxy):
        return servant.call(method, *args, caller=caller, **kwargs)
    target = getattr(servant, method)
    if caller is not None and Node._accepts_caller(target):
        kwargs.setdefault("caller", caller)
    return target(*args, **kwargs)


def recover_service(plan: RecoveryPlan, service: str,
                    bootstrap: Optional[Callable[[], Any]] = None,
                    ) -> RecoveredService:
    """Rebuild a servant from its checkpoint + journal suffix.

    Loads the last checkpoint (or calls ``bootstrap`` for a service
    that never checkpointed), strips and applies the handoff bundle,
    then replays every journal entry past the checkpoint sequence in
    order. Records carrying an idempotency key contribute their
    journaled reply to the dedup seed — re-application stays
    exactly-once even for effects whose acknowledgement the client
    never saw. A replay failure is a :class:`RecoveryError`: a
    partially recovered servant is corruption, not degraded service.
    """
    from .sharding import HANDOFF_KEY

    checkpoint = plan.store.load_checkpoint(service)
    dedup_seed: Dict[str, Dict[str, Any]] = {}
    if checkpoint is not None:
        state = dict(checkpoint.get("state", {}))
        handoff = state.pop(HANDOFF_KEY, {}) or {}
        dedup_seed.update(handoff.get("dedup", {}))
        servant = plan.rebuild(state)
        if plan.aspect_restore is not None:
            plan.aspect_restore(servant, handoff.get("aspects", {}))
        after = int(checkpoint.get("seq", 0))
    else:
        if bootstrap is None:
            raise RecoveryError(
                f"service {service!r} has no checkpoint and no bootstrap"
            )
        servant = bootstrap()
        after = 0
    replayed = 0
    for entry in plan.store.entries(service, after=after):
        record = entry.get("record", {})
        try:
            replay_effect(servant, record)
        except BaseException as exc:  # noqa: BLE001 - fail loud
            raise RecoveryError(
                f"replay of journal entry {entry.get('seq')} "
                f"({record.get('method')!r}) for {service!r} failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        key = record.get("key")
        if key:
            journaled_reply = record.get("reply") or {}
            dedup_seed.setdefault(key, {
                "kind": journaled_reply.get("kind") or "reply",
                "payload": dict(journaled_reply.get("payload") or {}),
            })
        replayed += 1
    return RecoveredService(servant=servant, dedup_seed=dedup_seed,
                            replayed=replayed, checkpoint_seq=after)


# ----------------------------------------------------------------------
# supervision
# ----------------------------------------------------------------------
@dataclass
class FailoverReport:
    """Outcome of one automatic (or manual) failover."""

    name: str
    service: str
    from_node: str
    to_node: str
    epoch: int
    replayed: int
    seeded: int
    duration: float


class SupervisedService:
    """One name under supervision: plan, replicas, restart policy."""

    def __init__(self, name: str, service: str, plan: RecoveryPlan,
                 candidates: List[Node],
                 bootstrap: Optional[Callable[[], Any]] = None,
                 backoff: float = 0.5, max_failovers: int = 8) -> None:
        self.name = name
        self.service = service
        self.plan = plan
        self.candidates = list(candidates)
        self.bootstrap = bootstrap
        #: minimum seconds between failover attempts of this service —
        #: the restart policy's damper, so a flapping detector cannot
        #: bounce the service across the cluster
        self.backoff = backoff
        #: give-up threshold: after this many failovers the supervisor
        #: stops moving the service and reports failed_failovers
        self.max_failovers = max_failovers
        self.failovers = 0
        self.gave_up = False
        self.last_attempt = float("-inf")


class Supervisor:
    """Turns detector dead verdicts into checkpoint-seeded failovers.

    The failover sequence (``docs/recovery.md``) is ordered so the
    fence is the linearization point::

        target.expect(service)        # retryable window opens
        rebind(name, target)          # mints the fencing epoch
        store.fence(service, epoch)   # zombie writes now rejected
        recover_service(plan)         # checkpoint + journal replay
        target.dedup.seed(...)        # retries replay, not re-execute
        target.attach_recovery(...)
        target.export(..., epoch=...)

    Zombie appends that land *before* the fence are included in the
    journal read during recovery — still exactly-once; appends after it
    raise :class:`~repro.core.errors.FencedOut` at the store. Dead
    verdicts come from the heartbeat detector (arm its ``confirm_dead``
    hysteresis to keep one delayed heartbeat from triggering a spurious
    move); candidates must be emitting heartbeats, because only an
    *alive* candidate is ever chosen as the new home.
    """

    def __init__(self, names: NameService, detector: Any,
                 registry: Optional[MetricsRegistry] = None,
                 events: Optional[Any] = None,
                 clock: Callable[[], float] = time.monotonic,
                 on_error: Optional[
                     Callable[[BaseException], None]] = None) -> None:
        self.names = names
        self.detector = detector
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self._counters = self.registry.counter_block(
            _SUPERVISOR_COUNTERS, prefix="repro_recovery_"
        )
        #: optional protocol event bus: failovers surface as
        #: ``recovery`` events next to the detector's ``node_state``
        self.events = events
        self.on_error = on_error
        self._clock = clock
        self._services: List[SupervisedService] = []
        self._lock = threading.Lock()
        self.history: List[FailoverReport] = []
        self._running = False
        self._thread: Optional[threading.Thread] = None

    def supervise(self, name: str, service: str, plan: RecoveryPlan,
                  candidates: List[Node],
                  bootstrap: Optional[Callable[[], Any]] = None,
                  backoff: float = 0.5,
                  max_failovers: int = 8) -> SupervisedService:
        """Register a name for automatic failover."""
        spec = SupervisedService(
            name, service, plan, candidates, bootstrap=bootstrap,
            backoff=backoff, max_failovers=max_failovers,
        )
        with self._lock:
            self._services.append(spec)
        return spec

    # ------------------------------------------------------------------
    def place(self, spec: SupervisedService, target: Node) -> Binding:
        """Run the full placement sequence onto ``target``.

        Used both for initial placement (no checkpoint yet — the
        bootstrap builds the servant, and a baseline checkpoint is
        taken immediately) and for failover. Returns the new binding;
        its version is the fencing epoch the service now holds.
        """
        target.expect(spec.service)
        binding = self.names.rebind(spec.name, target.node_id,
                                    spec.service)
        epoch = binding.epoch
        spec.plan.store.fence(spec.service, epoch)
        recovered = recover_service(spec.plan, spec.service,
                                    bootstrap=spec.bootstrap)
        seeded = target.dedup.seed(recovered.dedup_seed)
        target.attach_recovery(spec.service, spec.plan)
        target.export(spec.service, recovered.servant, epoch=epoch)
        # Baseline checkpoint at the new home: the replayed journal
        # suffix is folded into durable state and pruned, so the *next*
        # recovery starts from here instead of replaying history.
        target.checkpoint(spec.service)
        if recovered.replayed:
            self._counters.bump("effects_replayed",
                                amount=recovered.replayed)
        if seeded:
            self._counters.bump("dedup_seeded", amount=seeded)
        spec._last_recovered = recovered  # noqa: SLF001 - report detail
        return binding

    def failover(self, spec: SupervisedService, target: Node,
                 from_node: str = "") -> FailoverReport:
        """Fail ``spec`` over to ``target`` now (also usable manually)."""
        started = self._clock()
        binding = self.place(spec, target)
        spec.failovers += 1
        spec.last_attempt = self._clock()
        recovered = getattr(spec, "_last_recovered", None)
        report = FailoverReport(
            name=spec.name, service=spec.service, from_node=from_node,
            to_node=target.node_id, epoch=binding.epoch,
            replayed=recovered.replayed if recovered else 0,
            seeded=len(recovered.dedup_seed) if recovered else 0,
            duration=self._clock() - started,
        )
        self._counters.bump("failovers")
        self.history.append(report)
        if self.events is not None:
            try:
                self.events.emit(
                    "recovery", method_id=spec.name,
                    detail=(f"failover {from_node or '?'} -> "
                            f"{target.node_id} epoch {binding.epoch} "
                            f"replayed {report.replayed}"),
                    duration=report.duration,
                )
            except Exception as exc:  # noqa: BLE001 - bus must not kill us
                self._report(exc)
        return report

    def _pick(self, spec: SupervisedService,
              exclude: str) -> Optional[Node]:
        for node in spec.candidates:
            if node.node_id == exclude:
                continue
            if self.detector.state_of(node.node_id) == "alive":
                return node
        return None

    def check_once(self) -> List[FailoverReport]:
        """One supervision round: fail over every dead-bound service."""
        with self._lock:
            specs = list(self._services)
        reports: List[FailoverReport] = []
        for spec in specs:
            if spec.gave_up:
                continue
            try:
                binding = self.names.resolve(spec.name)
            except NameNotFound:
                continue
            if binding.unbound:
                continue
            if self.detector.state_of(binding.node_id) != "dead":
                continue
            now = self._clock()
            if now - spec.last_attempt < spec.backoff:
                continue
            spec.last_attempt = now
            if spec.failovers >= spec.max_failovers:
                spec.gave_up = True
                self._counters.bump("failed_failovers")
                continue
            target = self._pick(spec, exclude=binding.node_id)
            if target is None:
                self._counters.bump("failed_failovers")
                continue
            try:
                reports.append(self.failover(
                    spec, target, from_node=binding.node_id))
            except Exception as exc:  # noqa: BLE001 - keep supervising
                self._counters.bump("failed_failovers")
                self._report(exc)
        return reports

    def _report(self, exc: BaseException) -> None:
        if self.on_error is not None:
            try:
                self.on_error(exc)
            except Exception:  # noqa: BLE001 - hook must not kill the loop
                pass

    # ------------------------------------------------------------------
    def start(self, interval: float = 0.05) -> "Supervisor":
        """Run :meth:`check_once` on a daemon loop every ``interval``."""
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, args=(interval,), name="supervisor",
            daemon=True,
        )
        self._thread.start()
        return self

    def _loop(self, interval: float) -> None:
        while self._running:
            try:
                self.check_once()
            except Exception as exc:  # noqa: BLE001 - loop must survive
                self._report(exc)
            time.sleep(interval)

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=1.0)
            self._thread = None

    def metrics(self) -> Dict[str, int]:
        """Consistent snapshot of the supervisor's recovery counters."""
        return self._counters.as_dict()

    def __repr__(self) -> str:
        return (
            f"<Supervisor services={len(self._services)} "
            f"failovers={len(self.history)}>"
        )
