"""Heartbeat failure detection over the simulated network.

The :class:`~repro.dist.replication.FailoverMonitor` asks the network
whether a node is up — fine in simulation, impossible in deployment. A
real system infers liveness from messages. This module provides:

* :class:`HeartbeatEmitter` — a node-side daemon sending periodic
  heartbeat events to a monitor endpoint;
* :class:`HeartbeatDetector` — tracks last-seen times per node and
  classifies nodes as alive/suspect/dead by missed-heartbeat count
  (a timeout-based detector; the classic trade-off between detection
  latency and false suspicion is the ``suspect_after`` /
  ``dead_after`` knobs);
* :func:`detector_failover` — glue: a
  :class:`~repro.dist.replication.FailoverMonitor`-compatible health
  check built from the detector instead of network introspection.

A lost heartbeat is indistinguishable from a dead node — exactly the
ambiguity real failure detectors live with, reproduced here because the
network drops messages for both reasons.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional

from repro.concurrency.primitives import WaitQueue
from .message import Message
from .network import Network


class HeartbeatEmitter:
    """Sends ``heartbeat`` events from a node to a monitor endpoint.

    The emitter loop is fault-contained: *any* exception in one beat —
    not just a dead link — is counted, reported through ``on_error``,
    and the daemon keeps beating. A silently dead emitter would be
    indistinguishable from a dead node, which is exactly the false
    positive a failure detector must not manufacture itself.
    """

    def __init__(self, network: Network, node_id: str,
                 monitor_endpoint: str, interval: float = 0.05,
                 on_error: Optional[
                     Callable[[BaseException], None]] = None) -> None:
        self.network = network
        self.node_id = node_id
        self.monitor_endpoint = monitor_endpoint
        self.interval = interval
        self.on_error = on_error
        self.sent = 0
        self.errors = 0
        self._running = False
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HeartbeatEmitter":
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name=f"heartbeat-{self.node_id}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while self._running:
            try:
                self.network.send(Message(
                    source=self.node_id, dest=self.monitor_endpoint,
                    kind="event",
                    payload={"heartbeat": self.node_id,
                             "seq": self.sent},
                ))
                self.sent += 1
            except Exception as exc:  # noqa: BLE001 - loop must survive
                self._report(exc)
            time.sleep(self.interval)

    def _report(self, exc: BaseException) -> None:
        self.errors += 1
        if self.on_error is not None:
            try:
                self.on_error(exc)
            except Exception:  # noqa: BLE001 - hook must not kill the loop
                pass

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=1.0)


class HeartbeatDetector:
    """Classifies nodes by heartbeat recency.

    States per node: ``alive`` (heartbeat within ``suspect_after``),
    ``suspect`` (silent longer than ``suspect_after``), ``dead``
    (silent longer than ``dead_after``). A heartbeat from a suspect or
    dead node restores it to alive (nodes can recover).

    ``confirm_dead`` arms suspicion hysteresis: a raw dead verdict is
    reported as ``suspect`` until it has been observed that many times
    with no heartbeat in between. A single delayed heartbeat therefore
    cannot trigger a spurious failover — the supervisor keeps seeing
    ``suspect`` while the verdict is unconfirmed, and any heartbeat
    arriving meanwhile resets the count. The default (1) is the
    legacy no-hysteresis behaviour.
    """

    def __init__(self, network: Network, endpoint: str,
                 suspect_after: float = 0.15,
                 dead_after: float = 0.4,
                 confirm_dead: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_error: Optional[
                     Callable[[BaseException], None]] = None,
                 events: Optional[object] = None) -> None:
        if dead_after <= suspect_after:
            raise ValueError("dead_after must exceed suspect_after")
        if confirm_dead < 1:
            raise ValueError("confirm_dead is a count, at least 1")
        self.network = network
        self.endpoint = endpoint
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        self.confirm_dead = confirm_dead
        self.on_error = on_error
        #: optional protocol event bus (``repro.core.events.EventBus``):
        #: state transitions surface as ``node_state`` events on the
        #: same observability plane the moderation protocol reports to
        self.events = events
        self._state_cache: Dict[str, str] = {}
        #: node -> (last_seen the votes were cast against, vote count);
        #: a newer heartbeat invalidates the votes wholesale
        self._dead_votes: Dict[str, tuple] = {}
        #: serializes cache transition + event emission, so
        #: ``node_state`` events fire in transition order even when
        #: many threads poll ``state_of`` concurrently
        self._emit_lock = threading.Lock()
        self._clock = clock
        self.inbox = network.register(endpoint)
        self._lock = threading.Lock()
        self._last_seen: Dict[str, float] = {}
        self.heartbeats_received = 0
        self.errors = 0
        self._running = True
        self._thread = threading.Thread(
            target=self._drain, name=f"detector-{endpoint}", daemon=True,
        )
        self._thread.start()

    def _drain(self) -> None:
        # Contained like the emitter loop: a malformed heartbeat (or any
        # other surprise) is reported and skipped — a detector whose
        # drain thread died silently would degrade every watched node to
        # "dead" while appearing perfectly healthy itself.
        while self._running:
            try:
                message = self.inbox.get(timeout=0.1)
            except TimeoutError:
                continue
            except WaitQueue.Closed:
                return
            try:
                node_id = message.payload.get("heartbeat")
                if node_id:
                    with self._lock:
                        self._last_seen[node_id] = self._clock()
                        self.heartbeats_received += 1
            except Exception as exc:  # noqa: BLE001 - loop must survive
                self._report(exc)

    def _report(self, exc: BaseException) -> None:
        with self._lock:
            self.errors += 1
        if self.on_error is not None:
            try:
                self.on_error(exc)
            except Exception:  # noqa: BLE001 - hook must not kill the loop
                pass

    # ------------------------------------------------------------------
    def watch(self, node_id: str) -> None:
        """Track ``node_id`` before its first heartbeat arrives."""
        with self._lock:
            self._last_seen.setdefault(node_id, self._clock())

    def state_of(self, node_id: str) -> str:
        with self._lock:
            last = self._last_seen.get(node_id)
        if last is None:
            return "unknown"
        silence = self._clock() - last
        if silence >= self.dead_after:
            state = "dead"
        elif silence >= self.suspect_after:
            state = "suspect"
        else:
            state = "alive"
        if state == "dead" and self.confirm_dead > 1:
            with self._lock:
                voted_at, votes = self._dead_votes.get(node_id, (None, 0))
                if voted_at != last:
                    votes = 0  # a heartbeat arrived: verdict invalidated
                votes += 1
                self._dead_votes[node_id] = (last, votes)
            if votes < self.confirm_dead:
                state = "suspect"  # dead verdict pending confirmation
        events = self.events
        if events is not None:
            with self._emit_lock:
                with self._lock:
                    previous = self._state_cache.get(node_id)
                    changed = previous != state
                    if changed:
                        self._state_cache[node_id] = state
                if changed:
                    events.emit(
                        "node_state", method_id=node_id,
                        detail=f"{previous or 'unknown'} -> {state}",
                        duration=silence,
                    )
        return state

    def alive(self, node_id: str) -> bool:
        return self.state_of(node_id) == "alive"

    def snapshot(self) -> Dict[str, str]:
        with self._lock:
            nodes = list(self._last_seen)
        return {node_id: self.state_of(node_id) for node_id in nodes}

    def wait_for_state(self, node_id: str, state: str,
                       timeout: float = 5.0) -> bool:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.state_of(node_id) == state:
                return True
            time.sleep(0.02)
        return False

    def close(self) -> None:
        self._running = False
        self.network.unregister(self.endpoint)
        self._thread.join(timeout=1.0)


def detector_failover(detector: HeartbeatDetector,
                      candidates: List[str]) -> Callable[[], Optional[str]]:
    """Health-check closure: first *alive* candidate, else None.

    Usable wherever a promote-target chooser is needed; unlike
    ``Network.is_up`` it relies only on observed messages.
    """

    def choose() -> Optional[str]:
        for node_id in candidates:
            if detector.alive(node_id):
                return node_id
        return None

    return choose
