"""Resilience primitives for the distributed runtime.

The paper names fault tolerance a first-class interaction concern; the
RPC boundary is where it bites. This module supplies the four pieces
the resilient call path composes (see ``docs/resilience.md``):

* :class:`Deadline` — an absolute monotonic budget that rides requests
  as *remaining seconds* (gRPC-style budget propagation: monotonic
  clocks don't travel, budgets do). Servers reject expired requests
  with :class:`~repro.core.errors.DeadlineExceeded` instead of doing
  dead work, and cap moderator BLOCK waits at the remaining budget.
* :class:`IdempotencyCache` — a bounded LRU of idempotency key →
  cached reply, with in-flight tracking, giving mutating calls
  at-most-once *effects* under client retries: a replayed request
  returns the original reply instead of re-executing.
* :class:`DestinationBreakers` — per-destination circuit breakers for
  the client, reusing the :class:`~repro.aspects.circuit_breaker.
  CircuitBreakerAspect` state machine verbatim (one aspect instance
  per destination, driven through a lightweight join point).
* :class:`ShedInbox` — a bounded node inbox with a load-shedding
  policy (``"reject"`` answers :class:`~repro.core.errors.Overloaded`
  with a retry-after hint; ``"drop_oldest"`` evicts the stalest queued
  request), so overload degrades gracefully instead of growing queues
  without bound.

A thread-local *request context* (:func:`serving` / :func:`current_request`)
makes the in-flight request's idempotency key and deadline ambient on
the serving thread, the same way :mod:`repro.obs.propagation` makes the
trace context ambient — so :class:`~repro.dist.replication.
ReplicatedServant` can forward mutations under the *original* key and
the backup's dedup cache recognizes a post-failover client retry.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.aspects.circuit_breaker import BreakerState, CircuitBreakerAspect
from repro.core.errors import CircuitOpen
from repro.core.joinpoint import JoinPoint
from repro.core.results import AspectResult
from repro.concurrency.primitives import WaitQueue

__all__ = [
    "Deadline",
    "DedupEntry",
    "DestinationBreakers",
    "IdempotencyCache",
    "RequestContext",
    "RPC_TRANSIENT",
    "ShedInbox",
    "current_request",
    "serving",
]


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Deadline:
    """An absolute point on the monotonic clock a call must finish by.

    Construct with :meth:`after` (relative budget) or :meth:`coerce`
    (accepts a ``Deadline``, a float budget in seconds, or ``None``).
    The wire form is *remaining seconds at send time*: the receiver
    reconstructs an absolute deadline on its own clock, so the budget
    shrinks by (at least) the transit time at every hop — exactly the
    shrinking-budget semantics real deadline propagation has.
    """

    expires_at: float

    @classmethod
    def after(cls, budget: float,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        """A deadline ``budget`` seconds from now."""
        return cls(expires_at=clock() + budget)

    @classmethod
    def coerce(cls, value: "Deadline | float | None") -> "Optional[Deadline]":
        """Normalize a caller-supplied deadline (budget floats allowed)."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls.after(float(value))

    @classmethod
    def from_wire(cls, budget: Any,
                  anchor: Optional[float] = None) -> "Optional[Deadline]":
        """Rebuild a deadline from a wire payload's remaining budget.

        ``anchor`` is the monotonic instant the budget was measured at
        (the message's ``sent_at``). The simulated runtime shares one
        monotonic clock across "hosts", so anchoring at send time
        charges transit exactly; a real deployment, whose clocks don't
        compare, would anchor at receipt and lose the transit time —
        pass ``anchor=None`` for those semantics.
        """
        if budget is None:
            return None
        if anchor is None:
            return cls.after(float(budget))
        return cls(expires_at=float(anchor) + float(budget))

    def remaining(self, clock: Callable[[], float] = time.monotonic) -> float:
        """Seconds left before expiry (negative when already expired)."""
        return self.expires_at - clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def to_wire(self) -> float:
        """The remaining budget, for the request payload (floored at 0)."""
        return max(0.0, self.remaining())

    def cap(self, timeout: Optional[float]) -> float:
        """``timeout`` capped at the remaining budget (budget if None)."""
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)


# ----------------------------------------------------------------------
# ambient request context (serving side)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestContext:
    """The in-flight request's resilience envelope, ambient per thread."""

    idempotency_key: Optional[str]
    deadline: Optional[Deadline]
    caller: Any = None


_state = threading.local()


def current_request() -> Optional[RequestContext]:
    """The request context of the serving thread, if one is active."""
    return getattr(_state, "request", None)


@contextmanager
def serving(context: Optional[RequestContext]) -> Iterator[None]:
    """Make ``context`` the thread's request context for the body.

    ``None`` is accepted (and restores nothing) so call sites need no
    branch; nesting restores the previous context on exit.
    """
    if context is None:
        yield
        return
    previous = getattr(_state, "request", None)
    _state.request = context
    try:
        yield
    finally:
        _state.request = previous


# ----------------------------------------------------------------------
# exactly-once effects: the dedup cache
# ----------------------------------------------------------------------
class DedupEntry:
    """One logical call's slot in the :class:`IdempotencyCache`.

    Starts *pending* (the first delivery is executing); :meth:`finish`
    stores the reply and wakes duplicates parked in :meth:`wait`;
    abandoned entries (the attempt provably did not apply) are removed
    so a retry may re-execute.
    """

    __slots__ = ("_event", "kind", "payload")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.kind: Optional[str] = None
        self.payload: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def finish(self, kind: str, payload: Dict[str, Any]) -> None:
        self.kind = kind
        self.payload = payload
        self._event.set()

    def wait(self, timeout: Optional[float]) -> bool:
        """Block until the original attempt completes (False on timeout)."""
        return self._event.wait(timeout)


class IdempotencyCache:
    """Bounded LRU of idempotency key → cached reply, with in-flight slots.

    Keys are the client-generated per-logical-call idempotency keys
    (``"<caller endpoint>:<sequence>"`` — the caller identity is baked
    into the key, so one cache serves every caller without collisions).
    The LRU bound evicts only *completed* entries: an in-flight slot is
    never dropped, or a racing duplicate could re-execute the call.

    Thread safety: all state transitions run under one leaf lock;
    :meth:`DedupEntry.wait` blocks outside it.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, DedupEntry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def begin(self, key: str) -> Tuple[str, DedupEntry]:
        """Claim ``key`` for execution, or surface the duplicate.

        Returns ``("new", entry)`` when the caller owns the execution
        (it must later :meth:`finish` or :meth:`abandon` the entry),
        ``("done", entry)`` when the reply is already cached, or
        ``("pending", entry)`` when the original delivery is still
        executing — the caller should ``entry.wait(budget)`` and replay.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return ("done" if entry.done else "pending"), entry
            self.misses += 1
            entry = DedupEntry()
            self._entries[key] = entry
            self._evict_excess()
            return "new", entry

    def finish(self, key: str, kind: str, payload: Dict[str, Any]) -> None:
        """Record the executed call's reply; wakes parked duplicates."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is not None:
            entry.finish(kind, payload)

    def abandon(self, key: str) -> None:
        """Drop an in-flight slot whose attempt provably did not apply.

        The entry is completed *and* removed: duplicates parked on it
        wake (seeing no payload, they report the attempt failed), and a
        fresh retry re-executes under a new slot.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
        if entry is not None and not entry.done:
            entry._event.set()

    def export_completed(self) -> Dict[str, Dict[str, Any]]:
        """Wire-safe snapshot of every completed entry with a reply.

        The rebalancer ships this in a shard's captured state: seeded
        into the target's cache *before* the target starts serving, a
        retry of an already-applied call replays its original reply at
        the new home instead of re-executing — exactly-once effects
        survive the move. In-flight slots are not exported (their
        originals drain on the source before capture).
        """
        with self._lock:
            return {
                key: {"kind": entry.kind,
                      "payload": copy.deepcopy(entry.payload)}
                for key, entry in self._entries.items()
                if entry.done and entry.payload is not None
            }

    def seed(self, exported: Dict[str, Dict[str, Any]]) -> int:
        """Install entries exported from another cache; returns how many.

        Existing keys (including in-flight slots) are left untouched —
        local knowledge is at least as fresh as the handoff snapshot.
        """
        seeded = 0
        with self._lock:
            for key, record in exported.items():
                if key in self._entries:
                    continue
                entry = DedupEntry()
                entry.finish(record.get("kind") or "reply",
                             dict(record.get("payload") or {}))
                self._entries[key] = entry
                seeded += 1
            self._evict_excess()
        return seeded

    def _evict_excess(self) -> None:
        # under self._lock; evict oldest *completed* entries only
        if len(self._entries) <= self.capacity:
            return
        for key in list(self._entries):
            if len(self._entries) <= self.capacity:
                break
            entry = self._entries[key]
            if entry.done:
                del self._entries[key]
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: exception types an RPC retry policy should treat as transient: the
#: attempt failed without consuming the logical call (lost message,
#: refused connection, shed at admission). DeadlineExceeded and
#: CircuitOpen are deliberately absent — the first means the budget is
#: spent, the second that retrying would hammer a known-dead node.
def _transient_types() -> Tuple[type, ...]:
    from repro.core.errors import NodeUnreachable, Overloaded
    from .rpc import RequestTimeout

    return (RequestTimeout, NodeUnreachable, Overloaded)


def __getattr__(name: str) -> Any:  # lazy: avoids the rpc import cycle
    if name == "RPC_TRANSIENT":
        return _transient_types()
    raise AttributeError(name)


# ----------------------------------------------------------------------
# per-destination circuit breakers
# ----------------------------------------------------------------------
class DestinationBreakers:
    """Client-side circuit breakers, one per destination node.

    Reuses the :class:`CircuitBreakerAspect` state machine as-is: each
    destination lazily gets one aspect instance, driven through a
    lightweight join point whose ``method_id`` is the node id. A call
    is admitted via the aspect's ``precondition`` (ABORT →
    :class:`CircuitOpen`, fail fast) and its outcome reported through
    ``postaction`` — timeouts count as failures, any reply (even an
    error reply: the node answered, so it is alive) as success.
    """

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 half_open_probes: int = 1,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreakerAspect] = {}

    def breaker(self, node_id: str) -> CircuitBreakerAspect:
        with self._lock:
            breaker = self._breakers.get(node_id)
            if breaker is None:
                breaker = CircuitBreakerAspect(
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    half_open_probes=self.half_open_probes,
                    clock=self._clock,
                )
                self._breakers[node_id] = breaker
            return breaker

    def admit(self, node_id: str) -> Tuple[CircuitBreakerAspect, JoinPoint]:
        """Gate one attempt; raises :class:`CircuitOpen` when rejected.

        Returns the (breaker, joinpoint) token the caller must pass to
        :meth:`record` with the attempt's outcome — including on error
        paths, or half-open probe slots leak.
        """
        breaker = self.breaker(node_id)
        joinpoint = JoinPoint(method_id=node_id)
        if breaker.precondition(joinpoint) is AspectResult.ABORT:
            raise CircuitOpen(node_id)
        return breaker, joinpoint

    @staticmethod
    def record(token: Tuple[CircuitBreakerAspect, JoinPoint],
               failure: Optional[BaseException]) -> None:
        """Report one admitted attempt's outcome to its breaker."""
        breaker, joinpoint = token
        joinpoint.exception = failure
        breaker.postaction(joinpoint)

    def state(self, node_id: str) -> BreakerState:
        return self.breaker(node_id).state

    def states(self) -> Dict[str, str]:
        with self._lock:
            return {
                node_id: breaker.state.value
                for node_id, breaker in self._breakers.items()
            }


# ----------------------------------------------------------------------
# admission control: the bounded, shedding inbox
# ----------------------------------------------------------------------
class ShedInbox(WaitQueue):
    """A node inbox with bounded depth and an explicit shedding policy.

    Only ``"request"`` messages count against (and are shed by) the
    bound — replies and events always enqueue, so shedding can never
    deadlock a response path. Policies:

    * ``"reject"`` — a request arriving at a full inbox is not
      enqueued; ``on_shed`` is invoked with it (the node answers
      :class:`~repro.core.errors.Overloaded` with a retry-after hint).
    * ``"drop_oldest"`` — the stalest *queued* request is evicted to
      make room (its caller times out and retries); the arriving
      request enqueues. With nothing evictable the arrival is rejected.

    ``put`` never blocks: the dispatcher thread calling it must keep
    delivering to every other endpoint regardless of this node's load.
    """

    POLICIES = ("reject", "drop_oldest")

    def __init__(self, limit: int, policy: str = "reject",
                 on_shed: Optional[Callable[[Any, str], None]] = None) -> None:
        if limit < 1:
            raise ValueError("inbox limit must be positive")
        if policy not in self.POLICIES:
            raise ValueError(f"policy must be one of {self.POLICIES}")
        super().__init__()
        self.limit = limit
        self.policy = policy
        self.on_shed = on_shed
        self.shed = 0

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        shed_message = None
        with self._not_empty:
            if self._closed:
                raise WaitQueue.Closed("queue is closed")
            if getattr(item, "kind", None) == "request" \
                    and self._request_depth() >= self.limit:
                if self.policy == "drop_oldest":
                    evicted = self._evict_oldest_request()
                    if evicted is not None:
                        self.shed += 1
                        shed_message = (evicted, "drop_oldest")
                        self._items.append(item)
                        self._not_empty.notify()
                    else:
                        self.shed += 1
                        shed_message = (item, "reject")
                else:
                    self.shed += 1
                    shed_message = (item, "reject")
            else:
                self._items.append(item)
                self._not_empty.notify()
        if shed_message is not None and self.on_shed is not None:
            # outside the queue lock: the hook may send on the network
            message, action = shed_message
            self.on_shed(message, action)

    def _request_depth(self) -> int:
        # under the queue lock
        return sum(
            1 for queued in self._items
            if getattr(queued, "kind", None) == "request"
        )

    def _evict_oldest_request(self) -> Any:
        # under the queue lock
        for index, queued in enumerate(self._items):
            if getattr(queued, "kind", None) == "request":
                del self._items[index]
                return queued
        return None
