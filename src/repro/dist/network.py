"""Simulated network: latency, loss and partitions over thread inboxes.

Substitution note (see DESIGN.md §2): the paper targets components
"distributed across the network" but reports no networked experiments.
This module provides the closest synthetic equivalent — per-link latency
drawn from a seeded distribution, probabilistic loss, and explicit
partitions — so the distributed examples and benches exercise the same
code paths (marshalling, timeouts, retries, failover) a deployment
would.

Delivery runs on a single dispatcher thread draining a timed heap, which
keeps per-link FIFO ordering for equal latencies and makes delivered /
dropped counts deterministic for a fixed seed and send sequence.
"""

from __future__ import annotations

import heapq
import itertools
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.errors import NodeUnreachable
from repro.concurrency.primitives import WaitQueue
from .message import Message


class Network:
    """An in-process network connecting named endpoints.

    Args:
        latency: mean one-way delivery latency, seconds (0 = immediate).
        jitter: uniform +/- fraction applied to the latency.
        loss: probability a message is silently dropped.
        seed: RNG seed for jitter and loss decisions.
        on_error: callback invoked with any exception the dispatcher
            thread survives (it never dies silently; without a callback
            errors are only counted in ``dispatch_errors``).
    """

    def __init__(self, latency: float = 0.0, jitter: float = 0.0,
                 loss: float = 0.0, seed: int = 7,
                 on_error: Optional[
                     Callable[[BaseException], None]] = None) -> None:
        self.latency = latency
        self.jitter = jitter
        self.loss = loss
        self.on_error = on_error
        self.dispatch_errors = 0
        #: deterministic delivery-fault hook (``repro.faults``): consulted
        #: per send for drop/delay/raise at named delivery sites
        self.fault_injector: Optional[object] = None
        self._rng = random.Random(seed)
        self._lock = threading.RLock()
        self._inboxes: Dict[str, "WaitQueue[Message]"] = {}
        self._partitions: List[Set[str]] = []
        self._down: Set[str] = set()
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self._heap: List[Tuple[float, int, Message]] = []
        self._sequence = itertools.count()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="network-dispatch", daemon=True
        )
        self._dispatcher.start()

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------
    def register(self, endpoint: str,
                 inbox: "Optional[WaitQueue[Message]]" = None,
                 ) -> "WaitQueue[Message]":
        """Attach an endpoint; returns its inbox queue.

        ``inbox`` lets the endpoint supply its own queue — e.g. a
        bounded :class:`~repro.dist.resilience.ShedInbox` for admission
        control. The dispatcher only calls ``put`` (outside its own
        lock), so any ``WaitQueue`` subclass whose ``put`` does not
        block works here.
        """
        with self._lock:
            if endpoint in self._inboxes:
                raise ValueError(f"endpoint {endpoint!r} already registered")
            if inbox is None:
                inbox = WaitQueue()
            self._inboxes[endpoint] = inbox
            return inbox

    def unregister(self, endpoint: str) -> None:
        with self._lock:
            inbox = self._inboxes.pop(endpoint, None)
            if inbox is not None:
                inbox.close()

    def endpoints(self) -> List[str]:
        with self._lock:
            return list(self._inboxes)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def partition(self, *groups: Set[str]) -> None:
        """Split endpoints into isolated groups (others see everyone)."""
        with self._lock:
            self._partitions = [set(group) for group in groups]

    def heal(self) -> None:
        with self._lock:
            self._partitions = []

    def take_down(self, endpoint: str) -> None:
        """Crash an endpoint: messages to it are dropped."""
        with self._lock:
            self._down.add(endpoint)

    def bring_up(self, endpoint: str) -> None:
        with self._lock:
            self._down.discard(endpoint)

    def is_up(self, endpoint: str) -> bool:
        with self._lock:
            return endpoint in self._inboxes and endpoint not in self._down

    def _reachable(self, source: str, dest: str) -> bool:
        if dest in self._down or source in self._down:
            return False
        for group in self._partitions:
            source_in = source in group
            dest_in = dest in group
            if source_in != dest_in:
                return False
        return True

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> None:
        """Queue a message for delivery, applying faults and latency.

        Unknown destinations raise :class:`NodeUnreachable` immediately
        (the simulated analogue of a connection refusal); loss and
        partitions drop silently, as a real network would. An installed
        fault injector is consulted per send: its ``skip`` action drops
        the k-th delivery to an endpoint, ``delay`` widens its latency,
        ``raise`` surfaces :class:`~repro.faults.InjectedFault` to the
        sender.
        """
        extra_delay = 0.0
        injector = self.fault_injector
        if injector is not None:
            spec = injector.deliver(message.dest)
            if spec is not None:
                if spec.action == "raise":
                    from repro.faults.plan import InjectedFault
                    with self._lock:
                        self.sent += 1
                        self.dropped += 1
                    raise InjectedFault(spec)
                if spec.action == "skip":
                    with self._lock:
                        self.sent += 1
                        self.dropped += 1
                    return
                extra_delay = spec.arg
        with self._lock:
            self.sent += 1
            if message.dest not in self._inboxes:
                raise NodeUnreachable(message.dest)
            if not self._reachable(message.source, message.dest):
                self.dropped += 1
                return
            if self.loss > 0 and self._rng.random() < self.loss:
                self.dropped += 1
                return
            delay = self.latency
            if delay > 0 and self.jitter > 0:
                delay *= 1.0 + self.jitter * (2 * self._rng.random() - 1)
            deliver_at = time.monotonic() + max(0.0, delay) + extra_delay
            heapq.heappush(
                self._heap,
                (deliver_at, next(self._sequence), message),
            )
            self._wakeup.notify()

    def _dispatch_loop(self) -> None:
        # The dispatcher is the single point every delivery flows
        # through: if it died on one bad message the whole network would
        # silently stop. Each step is therefore contained — errors are
        # counted, reported through on_error, and the loop continues.
        while True:
            try:
                if self._dispatch_once():
                    return
            except Exception as exc:  # noqa: BLE001 - must survive
                self._report_error(exc)

    def _dispatch_once(self) -> bool:
        """One wait-or-deliver step; True when the network has shut down."""
        with self._wakeup:
            while not self._heap and not self._closed:
                self._wakeup.wait()
            if self._closed and not self._heap:
                return True
            deliver_at, _seq, message = self._heap[0]
            now = time.monotonic()
            if deliver_at > now:
                self._wakeup.wait(deliver_at - now)
                return False
            heapq.heappop(self._heap)
            # Re-check reachability at delivery time: a partition or
            # crash that happened in flight still loses the message.
            if message.dest in self._down \
                    or message.dest not in self._inboxes \
                    or not self._reachable(message.source, message.dest):
                self.dropped += 1
                return False
            inbox = self._inboxes[message.dest]
            self.delivered += 1
        try:
            inbox.put(message.copy_for_delivery())
        except WaitQueue.Closed:
            with self._lock:
                self.delivered -= 1
                self.dropped += 1
        except Exception:
            # A poisoned message (bad payload copy, broken inbox) is
            # dropped and reported; it must not take the dispatcher down.
            with self._lock:
                self.delivered -= 1
                self.dropped += 1
            raise
        return False

    def _report_error(self, exc: BaseException) -> None:
        with self._lock:
            self.dispatch_errors += 1
        callback = self.on_error
        if callback is not None:
            try:
                callback(exc)
            except Exception:  # noqa: BLE001 - error hook must not kill us
                pass

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "sent": self.sent,
                "delivered": self.delivered,
                "dropped": self.dropped,
                "in_flight": len(self._heap),
                "dispatch_errors": self.dispatch_errors,
            }

    def close(self) -> None:
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        for endpoint in list(self._inboxes):
            self.unregister(endpoint)
