"""Primary-backup replication: fault tolerance for exported services.

The paper names "fault tolerance" as a first-class interaction concern.
This module composes it from the pieces already built: a
:class:`ReplicatedService` exports the same servant on several nodes,
clients address one logical name, and a :class:`FailoverMonitor`
rebinds that name to a backup when the primary dies. State continuity
uses operation forwarding: mutating calls applied at the primary are
re-executed at the backups (deterministic servants assumed, which the
ticketing components are).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.errors import NetworkError
from repro.obs.metrics import MetricsRegistry
from .naming import NameService
from .network import Network
from .node import Node
from .resilience import current_request
from .rpc import Client, RequestTimeout


class ReplicatedServant:
    """Wraps a servant on the primary; forwards mutations to backups.

    Exported on the primary node in place of the bare servant. Calls are
    applied locally first; on success the same call is forwarded to each
    backup's replica service (best effort — a dead backup is skipped and
    reported in :attr:`forward_failures`).

    Retry safety (``docs/resilience.md``): a forward reuses the
    *original* request's idempotency key and deadline, read from the
    serving node's ambient request context. The backup's dedup cache
    therefore recognizes a post-failover client retry as the same
    logical call and replays the forwarded apply's reply instead of
    applying the mutation a second time — at most one apply per
    replica, even when the client retries across a failover. (Each
    node owns its dedup cache, so forwarding the same key to several
    backups never collides.)
    """

    def __init__(self, servant: Any, forwarder: Client,
                 replica_names: Sequence[str],
                 mutating: Optional[Sequence[str]] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self._servant = servant
        self._forwarder = forwarder
        self._replica_names = list(replica_names)
        self._mutating = set(mutating) if mutating is not None else None
        registry = registry if registry is not None else MetricsRegistry()
        self._counters = registry.counter_block(
            ("forwarded", "forward_failures"), prefix="repro_repl_"
        )
        self._lock = threading.Lock()

    # -- legacy counter facade (exact under the striped registry) ------
    @property
    def forwarded(self) -> int:
        return int(self._counters.value("forwarded"))

    @property
    def forward_failures(self) -> int:
        return int(self._counters.value("forward_failures"))

    def metrics(self) -> Dict[str, int]:
        return self._counters.as_dict()

    def _is_mutating(self, method: str) -> bool:
        if self._mutating is None:
            return True
        return method in self._mutating

    def __getattr__(self, method: str) -> Callable[..., Any]:
        if method.startswith("_"):
            raise AttributeError(method)
        target = getattr(self._servant, method)

        def replicated(*args: Any, **kwargs: Any) -> Any:
            result = target(*args, **kwargs)
            if self._is_mutating(method):
                request = current_request()
                key = request.idempotency_key if request is not None else None
                deadline = request.deadline if request is not None else None
                for name in self._replica_names:
                    # One counter bump per forward attempt, under a
                    # single lock acquisition — success and failure use
                    # the same accounting pattern, so `forwarded +
                    # forward_failures == attempts` always holds.
                    try:
                        self._forwarder.call_name(
                            name, method, *args,
                            idempotency_key=key, deadline=deadline,
                            **kwargs,
                        )
                    except (RequestTimeout, NetworkError):
                        self._counters.bump("forward_failures")
                    else:
                        self._counters.bump("forwarded")
            return result

        replicated.__name__ = method
        return replicated


class FailoverMonitor:
    """Watches the primary and rebinds the logical name to a backup.

    Health checks are explicit (:meth:`check_once`) or periodic
    (:meth:`start`, daemon thread). Failover promotes the first live
    backup, rebinds the public name, and records the event.
    """

    def __init__(self, names: NameService, network: Network,
                 public_name: str,
                 primary: Node, backups: Sequence[Node],
                 service: str,
                 interval: float = 0.1) -> None:
        self.names = names
        self.network = network
        self.public_name = public_name
        self.primary = primary
        self.backups = list(backups)
        self.service = service
        self.interval = interval
        self.failovers: List[str] = []
        self._running = False
        self._thread: Optional[threading.Thread] = None

    def check_once(self) -> bool:
        """One health check; returns True when a failover occurred."""
        current = self.names.resolve(self.public_name)
        if self.network.is_up(current.node_id):
            return False
        for backup in self.backups:
            if self.network.is_up(backup.node_id):
                self.names.rebind(
                    self.public_name, backup.node_id, self.service
                )
                self.failovers.append(backup.node_id)
                return True
        raise NetworkError(
            f"no live replica for {self.public_name!r}"
        )

    def start(self) -> "FailoverMonitor":
        if self._running:
            return self
        self._running = True
        self._thread = threading.Thread(
            target=self._loop, name=f"failover-{self.public_name}",
            daemon=True,
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        while self._running:
            try:
                self.check_once()
            except NetworkError:
                pass
            time.sleep(self.interval)

    def stop(self) -> None:
        self._running = False
        if self._thread is not None:
            self._thread.join(timeout=1.0)
